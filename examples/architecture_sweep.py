#!/usr/bin/env python
"""Figure-2 style sweep, driven through the declarative scenario layer.

Runs a reduced version of the paper's 450-configuration validation as the
registered ``figure2`` scenario: every workload is executed under the naive
(lws=1), fixed (lws=32) and hardware-aware mapping on a grid of machine
configurations, the per-kernel ratio statistics are printed in the same
format as the paper's Figure-2 data tables, and every completed grid point
streams to a JSONL sink -- interrupt the sweep and re-run this script, and
only the remaining points are simulated.

Environment knobs:
    REPRO_SWEEP   = smoke | bench | paper     (default: smoke, 8 configs)
    REPRO_SCALE   = smoke | bench | paper     (default: bench problem sizes)
    REPRO_KERNELS = comma-separated problem names (default: the math kernels)
    REPRO_SCENARIO_DIR = sink directory      (default: ./scenario-runs)

Run with:  python examples/architecture_sweep.py
"""

import os
import time

from repro.experiments.claims import evaluate_claims
from repro.scenarios import Planner, REGISTRY, ResultSink, ScenarioContext, default_sink_path
from repro.scenarios.library import figure2_result_from_run


def main() -> None:
    sweep_name = os.environ.get("REPRO_SWEEP", "smoke")
    scale = os.environ.get("REPRO_SCALE", "bench")
    kernels_env = os.environ.get("REPRO_KERNELS")
    problems = None
    if kernels_env:
        problems = tuple(name.strip() for name in kernels_env.split(",") if name.strip())

    scenario = REGISTRY.get("figure2")
    context = ScenarioContext(scale=scale, sweep=sweep_name, problems=problems)
    planner = Planner()
    plan = planner.plan(scenario, context)
    sink = ResultSink(default_sink_path("figure2-example", scale))

    print(f"scenario  : {scenario.name} -- {scenario.description}")
    print(f"sweep     : {sweep_name}, scale: {scale}")
    print(f"grid      : {len(plan)} points ({len(planner.unique_jobs(plan))} unique)")
    print(f"sink      : {sink.path} (delete it to start fresh)")
    print()

    started = time.perf_counter()

    def progress(done, total, outcome):
        if done % 25 == 0:
            print(f"  ... {done}/{total} fresh measurements "
                  f"({time.perf_counter() - started:.0f}s elapsed)")

    run = planner.run(scenario, context, sink=sink, progress=progress, plan=plan)
    print(f"{run.stats.render()}\n")

    print(run.report())
    print()
    print("Section-3 claims (paper value vs measured):")
    print(evaluate_claims(figure2_result_from_run(run)).render())


if __name__ == "__main__":
    main()
