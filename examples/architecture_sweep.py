#!/usr/bin/env python
"""Figure-2 style sweep: compare the three mappings across machine shapes.

Runs a reduced version of the paper's 450-configuration validation: every
workload is executed under the naive (lws=1), fixed (lws=32) and
hardware-aware mapping on a grid of machine configurations, and the per-kernel
ratio statistics (average / %-worse / worst) are printed in the same format as
the paper's Figure-2 data tables.

Environment knobs:
    REPRO_SWEEP   = smoke | bench | paper     (default: smoke, 8 configs)
    REPRO_SCALE   = smoke | bench | paper     (default: bench problem sizes)
    REPRO_KERNELS = comma-separated problem names (default: the math kernels)

Run with:  python examples/architecture_sweep.py
"""

import os
import time

from repro.experiments.claims import evaluate_claims
from repro.experiments.configs import sweep_by_name
from repro.experiments.figure2 import run_figure2
from repro.experiments.report import render_figure2_table, render_speedup_summary
from repro.workloads.problems import PAPER_PROBLEM_NAMES


def main() -> None:
    sweep_name = os.environ.get("REPRO_SWEEP", "smoke")
    scale = os.environ.get("REPRO_SCALE", "bench")
    kernels_env = os.environ.get("REPRO_KERNELS")
    if kernels_env:
        problems = [name.strip() for name in kernels_env.split(",") if name.strip()]
    else:
        problems = ["vecadd", "relu", "saxpy", "sgemm", "knn"]

    configs = sweep_by_name(sweep_name)
    print(f"sweep     : {sweep_name} ({len(configs)} configurations, "
          f"{configs[0].name} .. {configs[-1].name})")
    print(f"scale     : {scale}")
    print(f"workloads : {', '.join(problems)}")
    print()

    started = time.perf_counter()
    done = [0]
    total = len(problems) * len(configs) * 3

    def progress(problem, config, strategy, cycles):
        done[0] += 1
        if done[0] % 25 == 0:
            print(f"  ... {done[0]}/{total} measurements "
                  f"({time.perf_counter() - started:.0f}s elapsed)")

    result = run_figure2(problems, configs, scale=scale, progress=progress)
    elapsed = time.perf_counter() - started
    print(f"\ncompleted {total} measurements in {elapsed:.1f}s\n")

    print(render_figure2_table(result))
    print()
    print(render_speedup_summary(result))
    print()
    print("Section-3 claims (paper value vs measured):")
    print(evaluate_claims(result).render())


if __name__ == "__main__":
    main()
