#!/usr/bin/env python
"""Declaring a new experiment in a dozen lines.

The point of the scenario layer: adding an experiment to the repository is a
grid declaration plus an analysis function -- the planner, campaign engine
(dedup, cache, workers), JSONL sink resume and the ``repro scenario`` CLI
all come for free.  This example sweeps warp counts per core on ``sgemm``
and reports how cycles respond.

Run with:  python examples/custom_scenario.py
"""

from repro.scenarios import GridAxes, Planner, Scenario, ScenarioContext, register

# ---- the declaration: this is all a new experiment costs -------------------
from repro.sim.config import ArchConfig

warp_pressure = register(Scenario(
    name="warp-pressure",
    description="cycles vs warps per core (sgemm, 4 cores x 8 threads)",
    grid=GridAxes(
        problems=("sgemm",),
        configs=tuple(ArchConfig(cores=4, warps_per_core=w, threads_per_warp=8)
                      for w in (2, 4, 8, 16)),
        strategies=("ours",),
    ),
    analyze=lambda run: "\n".join(
        f"{r.meta['config']:>8}: {r.result.cycles:>7} cycles "
        f"(lws={r.result.local_size})"
        for r in run.records),
))
# ---------------------------------------------------------------------------


def main() -> None:
    run = Planner().run(warp_pressure, ScenarioContext(scale="smoke"))
    print(run.stats.render())
    print()
    print(run.report())
    print()
    print("The same scenario is also runnable (and resumable) from the CLI --")
    print("point REPRO_SCENARIO_MODULES at any module that registers it:")
    print("  PYTHONPATH=examples REPRO_SCENARIO_MODULES=custom_scenario \\")
    print("    python -m repro scenario run warp-pressure --scale smoke")


if __name__ == "__main__":
    main()
