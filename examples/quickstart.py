#!/usr/bin/env python
"""Quickstart: run a kernel with the runtime-chosen local work size.

This is the paper's pitch in ~30 lines: the host program never specifies a
``local_work_size``; the runtime reads the device's micro-architecture
parameters (cores x warps x threads) and applies Equation 1.  The same launch
is repeated with the two hardware-agnostic baselines so you can see what the
automatic choice buys.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # A Vortex-like GPU with 4 cores, 8 warps/core, 8 threads/warp (hp = 256).
    device = repro.Device("4c8w8t")
    print(device.describe())
    print()

    # Problem: 4096-element saxpy (one of the paper's math kernels).
    n = 4096
    rng = np.random.default_rng(0)
    x, y = rng.random(n), rng.random(n)
    arguments = {"x": x, "y": y.copy(), "a": 2.5}
    kernel = repro.get_kernel("saxpy")

    # 1) the paper's approach: no lws given -> Equation 1 picks it at runtime
    ours = device.launch(kernel, arguments, n)
    np.testing.assert_allclose(ours.outputs["y"], 2.5 * x + y)
    print(f"hardware-aware : {ours.summary()}")

    # 2) the naive baseline (lws = 1)
    naive = device.launch(kernel, arguments, n, local_size=1)
    print(f"naive lws=1    : {naive.summary()}")

    # 3) the fixed baseline (lws = 32)
    fixed = device.launch(kernel, arguments, n, local_size=32)
    print(f"fixed lws=32   : {fixed.summary()}")

    print()
    print(f"speed-up over lws=1 : {naive.cycles / ours.cycles:.2f}x")
    print(f"speed-up over lws=32: {fixed.cycles / ours.cycles:.2f}x")
    print(f"Eq. 1 chose lws = {ours.local_size} "
          f"(gws {n} / hp {device.hardware_parallelism})")


if __name__ == "__main__":
    main()
