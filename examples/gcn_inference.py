#!/usr/bin/env python
"""GCN layer inference with runtime mapping and a tuning report.

Reproduces the paper's ML-layer use case: a graph-convolution layer on a
Cora-shaped graph is executed through the OpenCL-style host API, first with a
programmer-chosen (hardware-agnostic) lws and then with the runtime-chosen
mapping.  The tuning advisor then explains the difference in terms of the
micro-architecture parameters -- the paper's "runtime micro-architecture
parameter analysis" as a user-facing report.

Run with:  python examples/gcn_inference.py
"""

import numpy as np

from repro.core.advisor import TuningAdvisor
from repro.runtime.api import Context
from repro.workloads.problems import make_problem


def main() -> None:
    # A mid-sized GPU: 8 cores x 8 warps x 8 threads (hp = 512).
    context = Context("8c8w8t")
    queue = context.queue()
    device = context.device

    # GCN layer on a synthetic Cora-like graph (bench scale keeps this quick;
    # use scale="paper" for the full 2708-node graph).
    problem = make_problem("gcn_layer", scale="bench")
    print(problem.summary())
    print(device.describe())
    print()

    # A conventional host program hard-codes lws=32 (warp-sized workgroups).
    fixed = queue.enqueue_nd_range(problem.kernel, problem.arguments,
                                   problem.global_size, local_size=32)
    print(f"fixed lws=32    : {fixed.cycles:>9d} cycles, {fixed.num_calls} call(s), "
          f"lane utilisation {fixed.dispatch.average_lane_utilization:.0%}")

    # The paper's approach: let the runtime derive lws from the device query.
    ours = queue.enqueue_nd_range(problem.kernel, problem.arguments,
                                  problem.global_size)
    print(f"hardware-aware  : {ours.cycles:>9d} cycles, {ours.num_calls} call(s), "
          f"lane utilisation {ours.dispatch.average_lane_utilization:.0%} "
          f"(lws={ours.local_size})")
    print(f"speed-up        : {fixed.cycles / ours.cycles:.2f}x")

    # Results are identical regardless of the mapping.
    np.testing.assert_allclose(fixed.outputs["out"], ours.outputs["out"])
    reference = problem.reference_outputs()["out"]
    np.testing.assert_allclose(ours.outputs["out"], reference, rtol=1e-9, atol=1e-9)
    print("outputs match the numpy reference for both mappings")
    print()

    # Explain the measurement with the advisor.
    advisor = TuningAdvisor(device.config)
    report = advisor.advise(problem.global_size, current_local_size=32,
                            counters=fixed.counters)
    print(report.render())


if __name__ == "__main__":
    main()
