#!/usr/bin/env python
"""Figure-1 reproduction: execution traces of vecadd under four lws values.

The paper's Figure 1 traces a 128-element vector addition on a 1-core,
2-warp, 4-thread machine for lws in {1, 16, 32, 64} and shows when each
tagged code section issues from each warp.  This example reruns the study
with tracing enabled and renders the same information as ASCII timelines.

Run with:  python examples/trace_visualization.py
"""

from repro.experiments.figure1 import run_figure1
from repro.trace.render import render_summary


def main() -> None:
    result = run_figure1(lws_values=(1, 16, 32, 64), length=128)

    print(f"vecadd, {result.global_size} elements on {result.config_name} "
          f"(hardware parallelism 8)\n")
    for lws in sorted(result.traces):
        trace = result.traces[lws]
        print("=" * 100)
        print(trace.summary())
        print("-" * 100)
        print(trace.waveform)
        print()
        print(trace.timeline)
        print()
        print(render_summary(trace.events))
        print()

    best = result.best_local_size()
    print("=" * 100)
    print(f"fastest mapping: lws={best} "
          f"(the Eq.-1 value gws/hp = {result.global_size}//8 = 16)")
    print("lws=1  pays a launch overhead for each of its 16 sequential kernel calls;")
    print("lws=32/64 load every workgroup at once but leave half / three quarters of")
    print("the machine's lanes idle -- exactly the three regimes of the paper.")


if __name__ == "__main__":
    main()
