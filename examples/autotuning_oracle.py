#!/usr/bin/env python
"""Validate Equation 1 against an exhaustive-search oracle.

The paper claims the runtime formula needs no search.  This example
brute-forces the lws space for one kernel on several machine shapes and shows
where the Eq.-1 choice lands in the ranking -- it should be the best value or
within a few percent of it, at zero search cost.

Run with:  python examples/autotuning_oracle.py
"""

from repro.core.autotuner import exhaustive_search
from repro.runtime.device import Device
from repro.workloads.problems import make_problem


def main() -> None:
    problem = make_problem("sgemm", scale="bench")
    print(problem.summary())
    print()

    for config_name in ("1c2w4t", "2c4w8t", "4c8w8t", "16c8w16t"):
        device = Device(config_name)
        result = exhaustive_search(device, problem.kernel, problem.arguments,
                                   problem.global_size)
        print(f"{config_name:>9s}  (hp={device.hardware_parallelism:5d})  "
              f"oracle lws={result.best_local_size:<5d} {result.best_cycles:>8d} cycles   "
              f"Eq.1 lws={result.eq1_local_size:<5d} {result.eq1_cycles:>8d} cycles   "
              f"gap {result.eq1_gap:.3f}x")
        ranked = result.ranked()
        worst_lws, worst_cycles = ranked[-1]
        print(f"            worst candidate: lws={worst_lws} "
              f"({worst_cycles / result.best_cycles:.1f}x slower than the oracle)")
    print()
    print("Eq. 1 lands on (or within a few percent of) the oracle without any search;")
    print("a fixed, hardware-agnostic choice can be many times slower on large machines.")


if __name__ == "__main__":
    main()
