#!/usr/bin/env python
"""Two-layer GCN inference as a multi-kernel pipeline on the device.

The paper's conclusion points at "the end-to-end execution of neural
networks" as the next step beyond single-kernel mapping.  This example runs a
small two-layer GCN (aggregate -> transform -> aggregate -> transform) as four
dependent kernel launches that keep their intermediate tensors on the device,
with every launch mapped by the runtime (Equation 1).  It reports per-layer
cycles and checks the whole pipeline against a numpy reference.

Run with:  python examples/gcn_two_layer_network.py
"""

import numpy as np

from repro.core.optimizer import optimal_local_size
from repro.runtime.device import Device
from repro.workloads.graphs import synthetic_graph
from repro.workloads.tensors import random_matrix
from repro.kernels.registry import get_kernel


def reference_layer(graph, features, weights):
    aggregated = np.zeros_like(features)
    for node in range(graph.num_nodes):
        neighbours = graph.neighbours(node)
        total = features[node].copy()
        for neighbour in neighbours:
            total += features[int(neighbour)]
        aggregated[node] = total / (len(neighbours) + 1)
    return np.maximum(aggregated @ weights, 0.0)


def main() -> None:
    device = Device("8c8w8t")
    print(device.describe())

    # A small citation-style graph and a 16 -> 8 -> 4 feature pipeline.
    graph = synthetic_graph(num_nodes=192, num_edges=768, seed=3)
    hidden = [16, 8, 4]
    features = random_matrix(graph.num_nodes, hidden[0], seed=1)
    weights = [random_matrix(hidden[i], hidden[i + 1], seed=10 + i) for i in range(2)]
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"layers: {hidden[0]} -> {hidden[1]} -> {hidden[2]}\n")

    gcn_layer = get_kernel("gcn_layer")
    total_cycles = 0
    current = features
    for layer, weight in enumerate(weights):
        gws = graph.num_nodes * weight.shape[1]
        lws = optimal_local_size(gws, device.config)
        result = device.launch(
            gcn_layer,
            {"row_ptr": graph.row_ptr.astype(float), "col_idx": graph.col_idx.astype(float),
             "x": current, "w": weight,
             "out": np.zeros((graph.num_nodes, weight.shape[1])),
             "hidden": weight.shape[0], "hidden_out": weight.shape[1]},
            gws,
        )
        total_cycles += result.cycles
        print(f"layer {layer}: gws={gws:5d}  lws={lws:3d} (runtime choice)  "
              f"{result.cycles:7d} cycles  "
              f"lane utilisation {result.dispatch.average_lane_utilization:.0%}")
        current = result.outputs["out"].reshape(graph.num_nodes, weight.shape[1])

    expected = reference_layer(graph, reference_layer(graph, features, weights[0]), weights[1])
    np.testing.assert_allclose(current, expected, rtol=1e-9, atol=1e-9)
    print(f"\ntotal: {total_cycles} cycles for the 2-layer network; "
          f"outputs match the numpy reference")


if __name__ == "__main__":
    main()
