"""Benchmark E2 (math kernels) -- Figure 2: mapping comparison across machines.

Sweeps the five stand-alone math kernels (vecadd, relu, saxpy, sgemm, kNN)
over the hardware grid under the three mappings of the paper and writes the
per-kernel violin statistics (average / %-worse / worst) to
``benchmarks/results/figure2_math.md``.

The default grid is the 36-configuration ``bench`` grid with ``bench``-scale
problem sizes; set ``REPRO_SWEEP=paper`` and ``REPRO_SCALE=paper`` to run the
full 450-configuration, paper-sized sweep.
"""

import pytest

from repro.experiments.figure2 import run_figure2
from repro.experiments.report import render_figure2_table, render_speedup_summary

from benchmarks.conftest import call_limit_from_env, scale_from_env, sweep_from_env, write_result

MATH_KERNELS = ("vecadd", "relu", "saxpy", "knn")
#: sgemm is separated out: its inner K-loop makes it the slowest math kernel
#: to simulate, and keeping it in its own benchmark entry keeps timings legible.
SGEMM = ("sgemm",)


def _run_sweep(problem_names):
    return run_figure2(
        problem_names,
        sweep_from_env(),
        scale=scale_from_env(),
        call_simulation_limit=call_limit_from_env(),
    )


@pytest.mark.benchmark(group="figure2-math")
def test_figure2_elementwise_math_kernels(benchmark):
    result = benchmark.pedantic(_run_sweep, args=(MATH_KERNELS,),
                                rounds=1, iterations=1, warmup_rounds=0)
    table = render_figure2_table(result)
    summary = render_speedup_summary(result)
    write_result("figure2_math.md", table + "\n\n" + summary)

    for problem in MATH_KERNELS:
        lws1 = result.stats(problem, "lws=1")
        lws32 = result.stats(problem, "lws=32")
        # Figure-2 shape: the hardware-aware mapping wins on average against
        # both baselines and is never catastrophically worse anywhere.
        assert lws1.average >= 1.0
        assert lws32.average >= 1.0
        assert lws1.worst >= 0.7
        assert lws32.worst >= 0.7
        benchmark.extra_info[problem] = {
            "lws1_avg": round(lws1.average, 2), "lws1_worst": round(lws1.worst, 2),
            "lws32_avg": round(lws32.average, 2), "lws32_worst": round(lws32.worst, 2),
        }


@pytest.mark.benchmark(group="figure2-math")
def test_figure2_sgemm(benchmark):
    result = benchmark.pedantic(_run_sweep, args=(SGEMM,),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_result("figure2_sgemm.md", render_figure2_table(result))
    stats1 = result.stats("sgemm", "lws=1")
    stats32 = result.stats("sgemm", "lws=32")
    assert stats1.average >= 1.0
    assert stats32.average >= 1.0
    benchmark.extra_info["lws1_avg"] = round(stats1.average, 2)
    benchmark.extra_info["lws32_avg"] = round(stats32.average, 2)
