"""Benchmark E1 -- Figure 1: vecadd traces under four lws values.

Regenerates the paper's Figure-1 study (vecadd, gws=128, 1c2w4t machine,
lws in {1, 16, 32, 64}) with full tracing enabled, times it, and writes the
rendered trace plots plus the per-lws cycle counts to
``benchmarks/results/figure1.txt``.
"""

import pytest

from repro.experiments.figure1 import FIGURE1_LWS_VALUES, run_figure1

from benchmarks.conftest import write_result


@pytest.mark.benchmark(group="figure1")
def test_figure1_vecadd_trace_study(benchmark):
    result = benchmark.pedantic(
        run_figure1,
        kwargs={"lws_values": FIGURE1_LWS_VALUES, "length": 128},
        rounds=1, iterations=1, warmup_rounds=0,
    )

    cycles = {lws: trace.cycles for lws, trace in result.traces.items()}
    calls = {lws: trace.num_calls for lws, trace in result.traces.items()}

    # The paper's qualitative result: lws = gws/hp = 16 is the fastest mapping,
    # lws=1 issues 16 sequential kernel calls, larger lws under-utilise the core.
    assert result.best_local_size() == 16
    assert calls[1] == 16 and calls[16] == 1
    assert cycles[1] > cycles[16]
    assert cycles[32] > cycles[16]
    assert cycles[64] > cycles[32]

    benchmark.extra_info["cycles_by_lws"] = cycles
    benchmark.extra_info["calls_by_lws"] = calls
    write_result("figure1.txt", result.render())


@pytest.mark.benchmark(group="figure1")
@pytest.mark.parametrize("lws", FIGURE1_LWS_VALUES)
def test_figure1_single_mapping(benchmark, lws):
    """Per-lws timing rows (one benchmark entry per traced mapping)."""
    result = benchmark.pedantic(
        run_figure1, kwargs={"lws_values": (lws,), "length": 128},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    trace = result.traces[min(result.traces)]
    benchmark.extra_info["simulated_cycles"] = trace.cycles
    benchmark.extra_info["kernel_calls"] = trace.num_calls
    benchmark.extra_info["lane_utilization"] = round(trace.lane_utilization, 3)
