"""Benchmark E6 -- the campaign engine: cache reuse and parallel scaling.

Two measurements on the Figure-2 grid (``REPRO_SWEEP``/``REPRO_SCALE``
reduced by default, like the other benchmarks):

* cold vs. warm cache: the first campaign simulates every grid point and
  persists the summaries; the second run of the identical grid must perform
  **zero** simulator invocations.  The benchmark reports both wall-clocks and
  their ratio -- the speedup every figure regeneration after the first enjoys.
* parallel speedup: the same cold grid executed with 1, 2 and 4 workers
  (no cache), checking that fan-out preserves bit-identical records.  The
  measured scaling is whatever the host grants -- on a single-core CI
  machine the interesting number is the (small) fan-out overhead, on a
  workstation the speedup.

Results land in ``benchmarks/results/campaign.md``.
"""

import time

import pytest

from repro.campaign import CampaignRunner, ResultCache
from repro.experiments.figure2 import run_figure2

from benchmarks.conftest import call_limit_from_env, scale_from_env, sweep_from_env, write_result

KERNELS = ("vecadd", "relu")


def _run(runner):
    return run_figure2(KERNELS, sweep_from_env(), scale=scale_from_env(),
                       call_simulation_limit=call_limit_from_env(),
                       seed=0, runner=runner)


@pytest.mark.benchmark(group="campaign")
def test_campaign_cold_vs_warm_cache(benchmark, tmp_path):
    cold_started = time.perf_counter()
    cold_runner = CampaignRunner(cache=ResultCache(tmp_path))
    cold = _run(cold_runner)
    cold_seconds = time.perf_counter() - cold_started

    # benchmark the warm path: every point must come out of the cache.
    warm_runner = CampaignRunner(cache=ResultCache(tmp_path))
    warm = benchmark.pedantic(_run, args=(warm_runner,),
                              rounds=1, iterations=1, warmup_rounds=0)
    assert warm_runner.cache.misses == 0, "warm run must be fully cache-served"
    assert [r.as_dict() for r in warm.records] == [r.as_dict() for r in cold.records]

    warm_seconds = benchmark.stats.stats.mean
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["warm_speedup"] = round(speedup, 1)
    write_result("campaign.md", "\n".join([
        "# Campaign engine: cold vs. warm cache (figure-2 grid)",
        "",
        f"jobs               : {len(cold.records)}",
        f"cold (simulated)   : {cold_seconds:.3f} s",
        f"warm (cache-served): {warm_seconds:.4f} s",
        f"speedup            : {speedup:.1f}x",
    ]))


@pytest.mark.benchmark(group="campaign")
def test_campaign_parallel_speedup(benchmark):
    timings = {}
    baseline = None
    for workers in (1, 2, 4):
        started = time.perf_counter()
        result = _run(CampaignRunner(workers=workers))
        timings[workers] = time.perf_counter() - started
        rows = [r.as_dict() for r in result.records]
        if baseline is None:
            baseline = rows
        else:
            assert rows == baseline, "parallel campaigns must match the serial records"

    # benchmark entry: the 4-worker run (re-executed for a clean measurement).
    benchmark.pedantic(_run, args=(CampaignRunner(workers=4),),
                       rounds=1, iterations=1, warmup_rounds=0)
    lines = ["# Campaign engine: parallel scaling (figure-2 grid, no cache)", ""]
    for workers, seconds in timings.items():
        speedup = timings[1] / seconds if seconds else float("inf")
        benchmark.extra_info[f"workers_{workers}_seconds"] = round(seconds, 3)
        lines.append(f"{workers} worker(s): {seconds:.3f} s  "
                     f"(speedup {speedup:.2f}x vs serial)")
    write_result("campaign_parallel.md", "\n".join(lines))
