"""Benchmark E5 -- the three lws regimes of Section 2.

For a fixed machine (the Figure-1 1c2w4t core scaled up to 2c4w8t) and a fixed
workload, sweeps lws through the three regimes the paper derives analytically
-- multiple sequential calls, balanced, under-utilised -- and checks that the
simulated cycle counts order the regimes the way the analysis predicts.
Results land in ``benchmarks/results/regimes.md``.
"""

import pytest

from repro.core.analysis import MappingAnalyzer
from repro.core.optimizer import optimal_local_size
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.experiments.report import render_table
from repro.workloads.problems import make_problem

from benchmarks.conftest import scale_from_env, write_result

CONFIG = ArchConfig.from_name("2c4w8t")          # hp = 64


def _run_regime_sweep():
    problem = make_problem("vecadd", scale=scale_from_env())
    device = Device(CONFIG)
    analyzer = MappingAnalyzer(CONFIG)
    optimal = optimal_local_size(problem.global_size, CONFIG)
    lws_values = sorted({1, max(2, optimal // 4), optimal, optimal * 4, optimal * 16})
    rows = []
    for lws in lws_values:
        analysis = analyzer.analyze(problem.global_size, lws)
        result = launch_kernel(device, problem.kernel, problem.arguments,
                               problem.global_size, local_size=lws,
                               call_simulation_limit=3)
        rows.append({
            "lws": result.local_size,
            "regime": analysis.regime,
            "calls": result.num_calls,
            "lane_utilization": analysis.lane_utilization,
            "cycles": result.cycles,
        })
    return rows, optimal


@pytest.mark.benchmark(group="regimes")
def test_regime_cycle_ordering(benchmark):
    rows, optimal = benchmark.pedantic(_run_regime_sweep, rounds=1, iterations=1,
                                       warmup_rounds=0)
    table = render_table(
        ["lws", "regime", "kernel calls", "lane util", "cycles"],
        [[str(r["lws"]), r["regime"], str(r["calls"]),
          f"{r['lane_utilization']:.0%}", str(r["cycles"])] for r in rows],
    )
    write_result("regimes.md", table)

    by_lws = {r["lws"]: r for r in rows}
    best = by_lws[optimal]
    assert best["regime"] == "balanced"
    assert best["calls"] == 1
    # the balanced mapping is the fastest of the sweep
    assert best["cycles"] == min(r["cycles"] for r in rows)
    # the multiple-call regime pays for its extra launches
    naive = by_lws[1]
    assert naive["regime"] == "multiple-calls"
    assert naive["cycles"] > best["cycles"]
    # the under-utilised regime is slower than balanced as well
    oversized = by_lws[max(by_lws)]
    assert oversized["regime"] == "under-utilised"
    assert oversized["cycles"] > best["cycles"]
    benchmark.extra_info["rows"] = rows
