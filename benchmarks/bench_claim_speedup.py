"""Benchmarks E3/E4 -- the Section-3 textual claims.

E3: "our technique shows an average 1.3x and 3.7x performance boost for the
math kernels over the lws=1 mapping and the lws=32 [mapping]".

E4: a hardware-agnostic lws can be "up to 20x slower" on some configuration,
and Eq. 1 degenerates to lws=1 whenever the machine is larger than the
problem.

The measured numbers (on the reduced default grid) are written to
``benchmarks/results/claims.txt`` together with the paper's values; absolute
agreement is not expected (different simulator, reduced sizes), the assertions
only pin the direction of every claim.
"""

import pytest

from repro.experiments.claims import evaluate_claims
from repro.experiments.figure2 import run_figure2
from repro.workloads.problems import make_problem

from benchmarks.conftest import call_limit_from_env, scale_from_env, sweep_from_env, write_result

MATH_KERNELS = ("vecadd", "relu", "saxpy", "knn", "sgemm")


def _sweep():
    return run_figure2(MATH_KERNELS, sweep_from_env(), scale=scale_from_env(),
                       call_simulation_limit=call_limit_from_env())


@pytest.mark.benchmark(group="claims")
def test_section3_claims(benchmark):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1, warmup_rounds=0)

    scale = scale_from_env()
    global_sizes = {name: make_problem(name, scale=scale).global_size for name in MATH_KERNELS}
    configs = sweep_from_env()
    claims = evaluate_claims(result, configs=configs, global_sizes=global_sizes)

    write_result("claims.txt", claims.render())
    for outcome in claims.outcomes:
        benchmark.extra_info[outcome.claim_id] = {
            "paper": outcome.paper_value,
            "measured": round(outcome.measured_value, 2),
            "holds": outcome.holds,
        }

    # C1: beating the naive mapping on average.
    assert claims.by_id("C1").measured_value >= 1.05
    # C2: beating the fixed mapping on average by a clearly larger margin than C1... or
    # at least substantially (the exact 3.7x depends on the full 450-config grid).
    assert claims.by_id("C2").measured_value >= 1.3
    # C3: somewhere in the sweep a hardware-agnostic mapping loses big.
    assert claims.by_id("C3").measured_value >= 3.0
    # C4: the degenerate case of Eq. 1 is exact.
    assert claims.by_id("C4").holds
