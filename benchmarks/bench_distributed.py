"""Benchmark E8 -- distributed campaigns: fleet scaling over loopback TCP.

The claim under test: adding a second worker process to a fleet cuts the
wall-clock of an uncached, compute-bound grid nearly in half.  Two fleets
are measured over localhost sockets -- one subprocess worker vs. two --
running the identical 24-job bench-scale grid, interleaved best-of-3 so
ambient load hits both fleets evenly.  The grid is sized so simulation
dominates transport (~60 ms/job vs. ~1 ms of framing), which is exactly the
regime the coordinator's guided chunking is designed for.

Gate: >= 1.8x speedup for 2 workers vs. 1.  The gate only arms on hosts
with >= 3 CPUs (coordinator + two workers); on smaller machines the numbers
are still measured and reported, but a single core cannot express fleet
parallelism and the assert would only measure the scheduler.

Results land in ``benchmarks/results/distributed.md`` and, for trajectory
tracking, ``BENCH_distributed.json`` at the repo root (uploaded by CI).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.campaign import Campaign, CampaignRunner, JobSpec
from repro.campaign.dist import DistributedExecutor
from repro.sim.config import ArchConfig

from benchmarks.conftest import write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
JOBS = 24
ROUNDS = 3
SPEEDUP_GATE = 1.8

CONFIGS = [ArchConfig.from_name(name) for name in ("2c4w8t", "4c8w8t")]


def _grid():
    """24 unique bench-scale sgemm points: compute-bound, ~60 ms each."""
    specs = []
    for seed in range(JOBS // (len(CONFIGS) * 2)):
        for config in CONFIGS:
            for lws in (4, 8):
                specs.append(JobSpec(problem="sgemm", scale="bench",
                                     seed=seed, config=config,
                                     local_size=lws))
    assert len(specs) == JOBS
    assert len({spec.content_hash() for spec in specs}) == JOBS
    return specs


def _fleet(workers: int) -> DistributedExecutor:
    executor = DistributedExecutor(heartbeat_interval=0.5, worker_wait=60.0)
    executor.spawn_local_workers(workers)
    executor.wait_for_workers(workers, timeout=60.0)
    return executor


def _run(executor: DistributedExecutor):
    # No cache anywhere: every timed run re-simulates the whole grid.
    outcome = CampaignRunner(executor=executor).run(
        Campaign("bench-distributed", specs=_grid()))
    assert outcome.stats.failed == 0
    assert outcome.stats.executed == JOBS
    return outcome


def _stripped(outcome):
    rows = [result.to_dict() for result in outcome.results]
    for row in rows:
        row.pop("elapsed_seconds", None)
    return rows


@pytest.mark.benchmark(group="distributed")
def test_two_worker_fleet_speedup(benchmark):
    cpus = os.cpu_count() or 1
    fleets = {1: _fleet(1), 2: _fleet(2)}
    timings = {1: [], 2: []}
    baseline = None
    try:
        # Warm-up: first contact pays worker import + JIT-warm caches; the
        # identity check on the warm-up runs doubles as the bit-equality gate.
        for workers, fleet in fleets.items():
            rows = _stripped(_run(fleet))
            if baseline is None:
                baseline = rows
            else:
                assert rows == baseline, "fleet sizes must not change results"
        # Interleaved best-of-N: alternate fleets inside each round so slow
        # ambient moments penalise both sides equally.
        for _ in range(ROUNDS):
            for workers, fleet in fleets.items():
                started = time.perf_counter()
                _run(fleet)
                timings[workers].append(time.perf_counter() - started)
        # One pytest-benchmark artifact entry: the 2-worker fleet.
        benchmark.pedantic(_run, args=(fleets[2],),
                           rounds=1, iterations=1, warmup_rounds=0)
    finally:
        for fleet in fleets.values():
            fleet.close()

    best = {workers: min(times) for workers, times in timings.items()}
    speedup = best[1] / best[2] if best[2] else float("inf")
    gated = cpus >= 3

    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["best_1_worker_s"] = round(best[1], 3)
    benchmark.extra_info["best_2_worker_s"] = round(best[2], 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["gate_armed"] = gated

    payload = {
        "benchmark": "distributed",
        "jobs": JOBS,
        "rounds": ROUNDS,
        "best_1_worker_s": round(best[1], 4),
        "best_2_worker_s": round(best[2], 4),
        "speedup": round(speedup, 3),
        "cpus": cpus,
        "gate": SPEEDUP_GATE,
        "gate_armed": gated,
    }
    (REPO_ROOT / "BENCH_distributed.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    write_result("distributed.md", "\n".join([
        "# Distributed campaigns: fleet scaling (uncached bench grid)",
        "",
        f"jobs              : {JOBS} (sgemm, bench scale)",
        f"1-worker fleet    : {best[1]:.3f} s (best of {ROUNDS})",
        f"2-worker fleet    : {best[2]:.3f} s (best of {ROUNDS})",
        f"speedup           : {speedup:.2f}x "
        f"(gate {SPEEDUP_GATE}x, {'armed' if gated else f'disarmed: {cpus} CPU(s)'})",
    ]))

    if gated:
        assert speedup >= SPEEDUP_GATE, (
            f"2-worker fleet speedup {speedup:.2f}x below the "
            f"{SPEEDUP_GATE}x gate (best 1w {best[1]:.3f}s, "
            f"best 2w {best[2]:.3f}s)")
