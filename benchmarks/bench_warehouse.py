"""Benchmark -- the results warehouse: SQL analytics vs. JSONL re-parsing.

The question the warehouse exists to answer: once campaign history grows to
~100k journal records, how much faster is a cross-campaign aggregate served
by the relational store than the only alternative the journals offer --
re-parsing the whole JSONL file?  Both sides compute the same answer (best
local size per kernel x machine, the ``best-lws`` canned query) and the
benchmark asserts they agree bit-for-bit before timing anything.

* baseline: stream the journal, keep the last-wins current-version view,
  aggregate in Python -- the cheapest credible journal-side implementation
  (no JobResult construction, just ``json.loads``).
* warehouse: one ``best-lws`` SQL query against the synced sqlite store.

Also measured: cold-sync ingest throughput (rows/second), reported in the
benchmark's ``extra_info`` -- the one-off price of building the projection.

``REPRO_WAREHOUSE_ROWS`` scales the synthetic journal (default 100_000).
Results land in ``benchmarks/results/warehouse.md``.
"""

import json
import os
import random
import time

import pytest

from repro.campaign.journal import is_current_record, iter_journal_entries
from repro.campaign.spec import CACHE_SCHEMA_VERSION, simulator_version
from repro.warehouse import KIND_CACHE, open_store, run_canned, sync

from benchmarks.conftest import write_result

PROBLEMS = ("vecadd", "relu", "sgemm", "conv1d", "dot", "saxpy")
CONFIGS = ("1c2w2t", "2c2w4t", "4c8w8t", "16c16w16t")

#: The acceptance gate: at the default row count the SQL aggregate must beat
#: the JSONL re-parse by at least this factor.  Tiny row counts (smoke CI)
#: are dominated by fixed costs, so the gate only applies at scale.
SPEEDUP_GATE = 10.0
GATE_MIN_ROWS = 50_000


def rows_from_env() -> int:
    return int(os.environ.get("REPRO_WAREHOUSE_ROWS", "100000"))


def synthesize_journal(path, rows: int) -> None:
    """Write ``rows`` realistic cache-journal records (fixed seed)."""
    rng = random.Random(0)
    simulator = simulator_version()
    with path.open("w") as journal:
        for i in range(rows):
            problem = PROBLEMS[i % len(PROBLEMS)]
            config = CONFIGS[(i // 7) % len(CONFIGS)]
            cycles = rng.randrange(1_000, 2_000_000)
            record = {
                "hash": f"h{i:07d}", "schema": CACHE_SCHEMA_VERSION,
                "simulator": simulator, "spec": {"problem": problem},
                "result": {
                    "job_hash": f"h{i:07d}", "problem": problem,
                    "category": "math", "config_name": config,
                    "hardware_parallelism": 64, "global_size": 65536,
                    "local_size": 1 << (i % 9), "num_workgroups": 512,
                    "num_calls": 1, "cycles": cycles, "sim_cycles": cycles,
                    "overhead_cycles": 0, "extrapolated": False,
                    "lane_utilization": 0.5,
                    "counters": {"cycles": float(cycles),
                                 "instructions_executed": 10.0 * i},
                    "elapsed_seconds": 0.01,
                },
            }
            journal.write(json.dumps(record, sort_keys=True) + "\n")


def jsonl_best_lws(path):
    """The journal-side answer: full re-parse, last-wins, Python aggregate."""
    view = {}
    for record, _ in iter_journal_entries(path, complete_only=True):
        if record is None or "hash" not in record:
            continue
        if not is_current_record(record):
            continue
        view[(record["hash"], record["simulator"], record["schema"])] = record
    best = {}
    for record in view.values():
        result = record["result"]
        key = (result["problem"], result["config_name"])
        slot = (result["cycles"], result["local_size"])
        if key not in best or slot < best[key]:
            best[key] = slot
    return {key: (lws, cycles) for key, (cycles, lws) in best.items()}


@pytest.mark.benchmark(group="warehouse")
def test_warehouse_aggregate_vs_jsonl_reload(benchmark, tmp_path):
    rows = rows_from_env()
    journal = tmp_path / "results.jsonl"
    synthesize_journal(journal, rows)

    # one-off projection build: cold sync, measured for rows/second
    store = open_store(tmp_path / "warehouse.sqlite")
    sync_started = time.perf_counter()
    report = sync(store, journals=[(journal, KIND_CACHE)])
    sync_seconds = time.perf_counter() - sync_started
    assert report.ingested == rows

    # the same aggregate both ways; answers must agree before timing counts
    jsonl_started = time.perf_counter()
    from_jsonl = jsonl_best_lws(journal)
    jsonl_seconds = time.perf_counter() - jsonl_started
    from_sql = {(problem, config): (lws, cycles) for problem, config, lws,
                cycles in run_canned(store, "best-lws").rows}
    assert from_sql == from_jsonl, "warehouse and journal must agree"

    benchmark.pedantic(run_canned, args=(store, "best-lws"),
                       rounds=3, iterations=1, warmup_rounds=0)
    sql_seconds = benchmark.stats.stats.mean
    speedup = jsonl_seconds / sql_seconds if sql_seconds else float("inf")
    sync_rate = rows / sync_seconds if sync_seconds else float("inf")
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["jsonl_reload_seconds"] = round(jsonl_seconds, 3)
    benchmark.extra_info["sql_seconds"] = round(sql_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["cold_sync_seconds"] = round(sync_seconds, 3)
    benchmark.extra_info["cold_sync_rows_per_sec"] = round(sync_rate)
    write_result("warehouse.md", "\n".join([
        "# Results warehouse: SQL aggregate vs. JSONL re-load",
        "",
        f"journal rows        : {rows}",
        f"jsonl re-load       : {jsonl_seconds:.3f} s",
        f"warehouse SQL       : {sql_seconds:.4f} s",
        f"speedup             : {speedup:.1f}x",
        f"cold sync           : {sync_seconds:.3f} s "
        f"({sync_rate:,.0f} rows/s)",
    ]))
    store.close()
    if rows >= GATE_MIN_ROWS:
        assert speedup >= SPEEDUP_GATE, (
            f"warehouse must be >= {SPEEDUP_GATE}x faster than a JSONL "
            f"re-load at {rows} rows, measured {speedup:.1f}x")
