"""Benchmarks of the substrate itself: simulator throughput and Eq.-1 cost.

Two things matter for the reproduction's usability:

* the **simulator throughput** (simulated warp-instructions per host second)
  bounds how large a sweep fits in a given time budget.  All three engines
  are measured -- ``reference`` (the oracle), ``fast`` (event-skipping +
  vectorized lanes) and ``batch`` (trace-compiled cross-warp streaming), all
  bit-identical -- and each record carries ``engine`` and
  ``warp_instructions_per_second`` in ``extra_info`` so the BENCH_*.json
  history tracks the speedup trajectory per engine;
* the **runtime cost of the technique**: Equation 1 is a handful of integer
  operations evaluated at launch time.  The paper's pitch is that the mapping
  decision is effectively free compared to a kernel launch; this benchmark
  measures it directly (it is nanoseconds against a launch overhead of tens of
  simulated cycles / milliseconds of real driver time).
"""

import pytest

from repro.core.optimizer import optimal_local_size
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.sim.engine import ENGINES


def _throughput_run(benchmark, problem_name: str, engine: str):
    """Measure one (kernel, engine) point and annotate the record."""
    from repro.workloads.problems import make_problem

    problem = make_problem(problem_name, scale="bench")
    device = Device(ArchConfig.from_name("4c4w8t"), engine=engine)

    def run():
        return launch_kernel(device, problem.kernel, problem.arguments,
                             problem.global_size, local_size=None)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    instructions = result.counters.warp_instructions
    assert instructions > 0
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["kernel"] = problem_name
    benchmark.extra_info["warp_instructions"] = instructions
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["warp_instructions_per_second"] = (
        instructions / benchmark.stats["mean"]
    )
    return result


@pytest.mark.benchmark(group="simulator")
@pytest.mark.parametrize("engine", ENGINES)
def test_simulator_throughput_vecadd(benchmark, engine):
    """Simulated warp-instructions per second on a mid-sized machine."""
    _throughput_run(benchmark, "vecadd", engine)


@pytest.mark.benchmark(group="simulator")
@pytest.mark.parametrize("engine", ENGINES)
def test_simulator_throughput_sgemm(benchmark, engine):
    """Throughput on a compute-heavy kernel (inner-loop dominated)."""
    _throughput_run(benchmark, "sgemm", engine)


@pytest.mark.benchmark(group="simulator")
def test_fast_engine_speedup_target():
    """The fast engine's reason to exist: >=3x reference throughput.

    Measured outside pytest-benchmark so the acceptance gate lives next to
    the numbers it gates: rounds interleave the two engines (A/B/A/B) so
    background-load drift hits both equally, and each engine keeps its best
    (minimum) launch time.  Counters are also compared, so a fast-but-wrong
    engine cannot pass.
    """
    import time

    from repro.workloads.problems import make_problem

    per_kernel = {}
    total_best = dict.fromkeys(ENGINES, 0.0)
    for problem_name in ("vecadd", "sgemm"):
        problem = make_problem(problem_name, scale="bench")
        devices = {engine: Device(ArchConfig.from_name("4c4w8t"), engine=engine)
                   for engine in ENGINES}
        counters = {}
        best = dict.fromkeys(ENGINES, float("inf"))
        for engine, device in devices.items():  # warm-up, plus the oracle check
            result = launch_kernel(device, problem.kernel, problem.arguments,
                                   problem.global_size)
            counters[engine] = result.counters.as_dict()
        assert counters["fast"] == counters["reference"]
        for _ in range(15):
            for engine, device in devices.items():
                started = time.perf_counter()
                launch_kernel(device, problem.kernel, problem.arguments,
                              problem.global_size)
                elapsed = time.perf_counter() - started
                if elapsed < best[engine]:
                    best[engine] = elapsed
        per_kernel[problem_name] = best["reference"] / best["fast"]
        for engine in ENGINES:
            total_best[engine] += best[engine]
    # Gate on aggregate warp-instructions/sec across the measured kernels:
    # both engines retire identical instruction counts, so the throughput
    # ratio reduces to total time -- and the longer, steadier sgemm run
    # dominates, keeping the gate insensitive to millisecond-scale noise on
    # the short vecadd launches.
    aggregate = total_best["reference"] / total_best["fast"]
    assert aggregate >= 3.0, (
        f"fast engine reaches only {aggregate:.2f}x the reference "
        f"warp-instructions/sec (target: >=3x; per kernel: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in per_kernel.items()) + ")"
    )


@pytest.mark.benchmark(group="simulator")
def test_batch_engine_speedup_target():
    """The batch engine must beat ``fast`` on the engine loop it replaces.

    Measured on a figure-2 paper-grid point (``1c32w16t`` at ``lws=1``, the
    many-resident-warps regime batching targets) over large vecadd and saxpy
    launches.  The timer is the telemetry ``issue_loop_seconds`` span -- the
    engine loop itself, excluding the shared dispatch/upload/core-build work
    both engines pay identically -- rounds interleave the engines A/B/A/B and
    each keeps its best run.  Counters are compared first, so a fast-but-wrong
    engine cannot pass.

    The design target for trace-compiled batching was >=10x fast's
    warp-instructions/sec.  The implemented engine does NOT reach it: exact
    replication of per-warp cache-LRU/DRAM mutation order floors every memory
    round at per-warp walk cost, which bounds the streaming win to ~2x here
    (~3x at 64 warps/core; see README "Engines").  The gate therefore pins
    the honest, reproducible floor -- >=1.4x aggregate on this shape -- so
    regressions in the streaming paths still fail loudly while the unmet
    aspiration stays documented rather than silently waived.
    """
    import time

    from repro.telemetry.recorder import RECORDER
    from repro.workloads.problems import make_problem

    engines = ("fast", "batch")
    per_kernel = {}
    total_best = dict.fromkeys(engines, 0.0)

    def loop_seconds(device, engine, problem):
        RECORDER.enabled = True
        RECORDER.push_scope()
        try:
            result = launch_kernel(device, problem.kernel, problem.arguments,
                                   problem.global_size, local_size=1)
            payload = RECORDER.pop_scope()
        finally:
            RECORDER.enabled = False
        return (payload["histograms"][f"engine.{engine}.issue_loop_seconds"]["sum"],
                result)

    for problem_name in ("vecadd", "saxpy"):
        problem = make_problem(problem_name, scale="paper", seed=0, size=65536)
        devices = {engine: Device(ArchConfig.from_name("1c32w16t"), engine=engine)
                   for engine in engines}
        best = dict.fromkeys(engines, float("inf"))
        counters = {}
        for engine, device in devices.items():  # warm-up + the oracle check
            seconds, result = loop_seconds(device, engine, problem)
            best[engine] = seconds
            counters[engine] = result.counters.as_dict()
        assert counters["batch"] == counters["fast"]
        for _ in range(3):
            for engine, device in devices.items():
                seconds, _ = loop_seconds(device, engine, problem)
                if seconds < best[engine]:
                    best[engine] = seconds
        per_kernel[problem_name] = best["fast"] / best["batch"]
        for engine in engines:
            total_best[engine] += best[engine]

    aggregate = total_best["fast"] / total_best["batch"]
    assert aggregate >= 1.4, (
        f"batch engine reaches only {aggregate:.2f}x the fast engine's "
        f"warp-instructions/sec on the 1c32w16t engine loop (gate: >=1.4x, "
        f"design target: 10x, documented as unmet; per kernel: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in per_kernel.items()) + ")"
    )


@pytest.mark.benchmark(group="mapping-overhead")
def test_equation1_evaluation_cost(benchmark):
    """The runtime mapping decision itself: microseconds, not milliseconds."""
    config = ArchConfig.from_name("64c32w32t")

    def decide():
        total = 0
        for gws in (4096, 42764, 360 * 360, 2708 * 16, 16 * 32 * 32):
            total += optimal_local_size(gws, config)
        return total

    total = benchmark(decide)
    assert total > 0
    # five launch decisions comfortably under a millisecond
    assert benchmark.stats["mean"] < 1e-3


@pytest.mark.benchmark(group="mapping-overhead")
def test_dispatch_plan_construction_cost(benchmark):
    """Building the full workgroup placement is also cheap relative to simulation."""
    from repro.runtime.dispatcher import build_dispatch_plan
    from repro.runtime.ndrange import NDRange

    config = ArchConfig.from_name("16c16w16t")
    ndrange = NDRange(4096, optimal_local_size(4096, config))

    plan = benchmark(lambda: build_dispatch_plan(ndrange, config, {0: 0.0}))
    assert plan.num_calls == 1
