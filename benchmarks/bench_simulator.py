"""Benchmarks of the substrate itself: simulator throughput and Eq.-1 cost.

Two things matter for the reproduction's usability:

* the **simulator throughput** (simulated warp-instructions per host second)
  bounds how large a sweep fits in a given time budget -- tracked here so
  regressions in the core model show up;
* the **runtime cost of the technique**: Equation 1 is a handful of integer
  operations evaluated at launch time.  The paper's pitch is that the mapping
  decision is effectively free compared to a kernel launch; this benchmark
  measures it directly (it is nanoseconds against a launch overhead of tens of
  simulated cycles / milliseconds of real driver time).
"""

import pytest

from repro.core.optimizer import optimal_local_size
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.workloads.problems import make_problem


@pytest.mark.benchmark(group="simulator")
def test_simulator_throughput_vecadd(benchmark):
    """Simulated warp-instructions per second on a mid-sized machine."""
    problem = make_problem("vecadd", scale="bench")
    device = Device(ArchConfig.from_name("4c4w8t"))

    def run():
        return launch_kernel(device, problem.kernel, problem.arguments,
                             problem.global_size, local_size=None)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    instructions = result.counters.warp_instructions
    benchmark.extra_info["warp_instructions"] = instructions
    benchmark.extra_info["simulated_cycles"] = result.cycles
    assert instructions > 0


@pytest.mark.benchmark(group="simulator")
def test_simulator_throughput_sgemm(benchmark):
    """Throughput on a compute-heavy kernel (inner-loop dominated)."""
    problem = make_problem("sgemm", scale="bench")
    device = Device(ArchConfig.from_name("4c4w8t"))

    def run():
        return launch_kernel(device, problem.kernel, problem.arguments,
                             problem.global_size, local_size=None)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["warp_instructions"] = result.counters.warp_instructions


@pytest.mark.benchmark(group="mapping-overhead")
def test_equation1_evaluation_cost(benchmark):
    """The runtime mapping decision itself: microseconds, not milliseconds."""
    config = ArchConfig.from_name("64c32w32t")

    def decide():
        total = 0
        for gws in (4096, 42764, 360 * 360, 2708 * 16, 16 * 32 * 32):
            total += optimal_local_size(gws, config)
        return total

    total = benchmark(decide)
    assert total > 0
    # five launch decisions comfortably under a millisecond
    assert benchmark.stats["mean"] < 1e-3


@pytest.mark.benchmark(group="mapping-overhead")
def test_dispatch_plan_construction_cost(benchmark):
    """Building the full workgroup placement is also cheap relative to simulation."""
    from repro.runtime.dispatcher import build_dispatch_plan
    from repro.runtime.ndrange import NDRange

    config = ArchConfig.from_name("16c16w16t")
    ndrange = NDRange(4096, optimal_local_size(4096, config))

    plan = benchmark(lambda: build_dispatch_plan(ndrange, config, {0: 0.0}))
    assert plan.num_calls == 1
