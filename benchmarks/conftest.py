"""Shared configuration for the benchmark harness.

Every figure/claim of the paper has a benchmark module here.  Because the
simulator is pure Python, the default grids and problem sizes are reduced
(see DESIGN.md, substitutions table); the environment variables below scale
the harness up to the full paper setup when time allows:

* ``REPRO_SWEEP``  -- ``smoke`` | ``bench`` | ``paper``: hardware grid used by
  the Figure-2 benchmarks (default ``bench`` = 36 configurations for the math
  kernels, a 10-configuration grid for the ML layers).
* ``REPRO_SCALE``  -- ``smoke`` | ``bench`` | ``paper``: problem sizes
  (default ``bench``).
* ``REPRO_EXACT_CALLS`` -- set to ``1`` to simulate every sequential kernel
  call instead of extrapolating long lws=1 launches.

Rendered result tables are written to ``benchmarks/results/`` so they can be
compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.configs import bench_sweep, paper_sweep, smoke_sweep
from repro.sim.config import ArchConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Reduced grid used by default for the expensive ML-layer sweeps: the smoke
#: grid plus the two largest machines, so the under-utilisation regime of
#: fixed lws values is still exercised.
ML_DEFAULT_GRID = smoke_sweep() + [
    ArchConfig.from_name("16c16w16t"),
    ArchConfig.from_name("64c32w32t"),
]


def sweep_from_env(default: str = "bench"):
    """Hardware grid selected by ``REPRO_SWEEP``."""
    name = os.environ.get("REPRO_SWEEP", default)
    return {"smoke": smoke_sweep, "bench": bench_sweep, "paper": paper_sweep}[name]()


def ml_sweep_from_env():
    """Hardware grid for the ML-layer benchmarks (reduced by default)."""
    name = os.environ.get("REPRO_SWEEP")
    if name is None:
        return list(ML_DEFAULT_GRID)
    return {"smoke": smoke_sweep, "bench": bench_sweep, "paper": paper_sweep}[name]()


def scale_from_env(default: str = "bench") -> str:
    """Problem scale selected by ``REPRO_SCALE``."""
    return os.environ.get("REPRO_SCALE", default)


def call_limit_from_env():
    """Kernel-call extrapolation limit (None = exact simulation)."""
    return None if os.environ.get("REPRO_EXACT_CALLS") == "1" else 3


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table/report under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
