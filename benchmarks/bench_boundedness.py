"""Benchmark A2 -- memory-bound vs compute-bound workload classification.

The paper annotates its Figure 2 with a compute-bound / memory-bound split of
the workloads and notes that memory-bound kernels benefit less from extra
parallelism.  This benchmark classifies every workload from its performance
counters on a reference machine and writes the table to
``benchmarks/results/boundedness.md``.
"""

import pytest

from repro.experiments.ablation import boundedness_study
from repro.experiments.report import render_table
from repro.sim.config import ArchConfig
from repro.workloads.problems import PAPER_PROBLEM_NAMES

from benchmarks.conftest import scale_from_env, write_result

REFERENCE = ArchConfig.from_name("2c4w8t")


@pytest.mark.benchmark(group="ablation")
def test_boundedness_classification(benchmark):
    records = benchmark.pedantic(
        boundedness_study,
        kwargs={"problem_names": PAPER_PROBLEM_NAMES, "scale": scale_from_env(),
                "config": REFERENCE},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    table = render_table(
        ["workload", "category", "classification", "memory instr share", "L1 hit rate"],
        [[r.problem, r.category, r.boundedness, f"{r.memory_intensity:.2f}",
          f"{r.l1_hit_rate:.2f}"] for r in records],
    )
    write_result("boundedness.md", table)

    by_name = {r.problem: r for r in records}
    # The element-wise streaming kernels are memory bound; the convolution
    # layer amortises every load over many MACs and is compute bound.  (The
    # remaining kernels sit close to the boundary and their label depends on
    # the problem scale, so they are reported but not asserted.)
    for name in ("vecadd", "relu", "saxpy"):
        assert by_name[name].boundedness == "memory-bound"
    assert by_name["conv2d"].boundedness == "compute-bound"
    benchmark.extra_info["classification"] = {r.problem: r.boundedness for r in records}
