"""Benchmark E2 (ML layers) -- Figure 2: GCN and CNN workloads.

Sweeps the Gaussian filter and the ML layers of the paper (GCN aggregation,
GCN layer, ResNet20 conv layer) over a reduced hardware grid (the smoke grid
plus the two largest machines -- see ``benchmarks/conftest.py``) and writes
the Figure-2 statistics to ``benchmarks/results/figure2_ml.md``.

These are the kernels the paper singles out as showing "atypical trends"
(Gaussian blur, nearest-neighbour search and GCN aggregation), so unlike the
math kernels only weak shape assertions are made: the hardware-aware mapping
must not lose on average, but individual configurations may favour a baseline.
"""

import pytest

from repro.experiments.figure2 import run_figure2
from repro.experiments.report import render_figure2_table, render_speedup_summary

from benchmarks.conftest import call_limit_from_env, ml_sweep_from_env, scale_from_env, write_result

STENCIL_KERNELS = ("gaussian", "gcn_aggregate")
LAYER_KERNELS = ("conv2d", "gcn_layer")


def _run_sweep(problem_names):
    return run_figure2(
        problem_names,
        ml_sweep_from_env(),
        scale=scale_from_env(),
        call_simulation_limit=call_limit_from_env(),
    )


@pytest.mark.benchmark(group="figure2-ml")
def test_figure2_gaussian_and_gcn_aggregate(benchmark):
    result = benchmark.pedantic(_run_sweep, args=(STENCIL_KERNELS,),
                                rounds=1, iterations=1, warmup_rounds=0)
    write_result("figure2_stencil.md", render_figure2_table(result))
    for problem in STENCIL_KERNELS:
        for baseline in ("lws=1", "lws=32"):
            stats = result.stats(problem, baseline)
            assert stats.average >= 0.95
            benchmark.extra_info[f"{problem}/{baseline}"] = round(stats.average, 2)


@pytest.mark.benchmark(group="figure2-ml")
def test_figure2_conv2d_and_gcn_layer(benchmark):
    result = benchmark.pedantic(_run_sweep, args=(LAYER_KERNELS,),
                                rounds=1, iterations=1, warmup_rounds=0)
    table = render_figure2_table(result)
    write_result("figure2_ml.md", table + "\n\n" + render_speedup_summary(result))
    for problem in LAYER_KERNELS:
        for baseline in ("lws=1", "lws=32"):
            stats = result.stats(problem, baseline)
            assert stats.average >= 0.95
            benchmark.extra_info[f"{problem}/{baseline}"] = round(stats.average, 2)
