"""Benchmark E7 -- the scenario layer: planning overhead and sink resume.

Two measurements on the declarative layer itself (the simulated work is the
same campaign engine the other benchmarks already time):

* planning throughput: expanding the ``figure2`` grid (problems x configs x
  strategies) into content-addressed :class:`JobSpec` objects, including the
  strategy->lws resolution against real problem sizes.  This is the fixed
  cost every ``repro scenario run`` pays before any simulation starts.
* resume overhead: a completed ``scaling`` run re-executed against its JSONL
  sink.  Every job is served from the sink, so the measured time is pure
  planner + sink bookkeeping -- the price of crash-safety on the happy path.

Results land in ``benchmarks/results/scenarios.md``.
"""

import time

import pytest

from repro.scenarios import Planner, REGISTRY, ResultSink, ScenarioContext

from benchmarks.conftest import scale_from_env, write_result

CONTEXT = ScenarioContext(scale="smoke", sweep="smoke")


@pytest.mark.benchmark(group="scenarios")
def test_scenario_planning_throughput(benchmark):
    planner = Planner()
    scenario = REGISTRY.get("figure2")

    plan = benchmark(planner.plan, scenario, CONTEXT)

    unique = planner.unique_jobs(plan)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["grid_points"] = len(plan)
    benchmark.extra_info["unique_jobs"] = len(unique)
    benchmark.extra_info["points_per_second"] = round(len(plan) / seconds, 1)
    write_result("scenarios.md", "\n".join([
        "# Scenario layer: planning + resume overhead",
        "",
        f"figure2 grid points  : {len(plan)} ({len(unique)} unique)",
        f"planning time        : {seconds * 1000:.1f} ms "
        f"({len(plan) / seconds:.0f} points/s)",
        "",
    ]))


@pytest.mark.benchmark(group="scenarios")
def test_scenario_resume_is_simulation_free(benchmark, tmp_path):
    planner = Planner()
    scenario = REGISTRY.get("scaling")
    sink = ResultSink(tmp_path / "scaling.jsonl")

    cold_started = time.perf_counter()
    cold = planner.run(scenario, CONTEXT, sink=sink)
    cold_seconds = time.perf_counter() - cold_started

    resumed = benchmark(planner.run, scenario, CONTEXT, sink=sink)

    assert resumed.stats.executed == 0, "resume must not re-simulate"
    assert resumed.stats.resumed == cold.stats.unique
    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = cold.stats.unique
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["resume_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["scale"] = scale_from_env()
