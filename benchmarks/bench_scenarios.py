"""Benchmark E7 -- the scenario layer: planning overhead and sink resume.

Two measurements on the declarative layer itself (the simulated work is the
same campaign engine the other benchmarks already time):

* planning throughput: expanding the ``figure2`` grid (problems x configs x
  strategies) into content-addressed :class:`JobSpec` objects, including the
  strategy->lws resolution against real problem sizes.  This is the fixed
  cost every ``repro scenario run`` pays before any simulation starts.
* resume overhead: a completed ``scaling`` run re-executed against its JSONL
  sink.  Every job is served from the sink, so the measured time is pure
  planner + sink bookkeeping -- the price of crash-safety on the happy path.
* shard pool reuse: the planner submits one campaign per engine-grouped
  shard; since the executor refactor the runner keeps one warm
  ``ProcessPoolExecutor`` across all of them instead of forking a fresh
  pool per shard.  Before the refactor each shard paid the full pool
  spin-up (~70 ms on this container); after, only the first does -- the
  benchmark measures exactly that delta by comparing a shared runner
  against deliberately-fresh runners over the same shard sequence.

Results land in ``benchmarks/results/scenarios.md``.
"""

import time

import pytest

from repro.campaign import Campaign, CampaignRunner, JobSpec
from repro.scenarios import Planner, REGISTRY, ResultSink, ScenarioContext
from repro.sim.config import ArchConfig

from benchmarks.conftest import scale_from_env, write_result

CONTEXT = ScenarioContext(scale="smoke", sweep="smoke")


@pytest.mark.benchmark(group="scenarios")
def test_scenario_planning_throughput(benchmark):
    planner = Planner()
    scenario = REGISTRY.get("figure2")

    plan = benchmark(planner.plan, scenario, CONTEXT)

    unique = planner.unique_jobs(plan)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["grid_points"] = len(plan)
    benchmark.extra_info["unique_jobs"] = len(unique)
    benchmark.extra_info["points_per_second"] = round(len(plan) / seconds, 1)
    write_result("scenarios.md", "\n".join([
        "# Scenario layer: planning + resume overhead",
        "",
        f"figure2 grid points  : {len(plan)} ({len(unique)} unique)",
        f"planning time        : {seconds * 1000:.1f} ms "
        f"({len(plan) / seconds:.0f} points/s)",
        "",
    ]))


@pytest.mark.benchmark(group="scenarios")
def test_scenario_resume_is_simulation_free(benchmark, tmp_path):
    planner = Planner()
    scenario = REGISTRY.get("scaling")
    sink = ResultSink(tmp_path / "scaling.jsonl")

    cold_started = time.perf_counter()
    cold = planner.run(scenario, CONTEXT, sink=sink)
    cold_seconds = time.perf_counter() - cold_started

    resumed = benchmark(planner.run, scenario, CONTEXT, sink=sink)

    assert resumed.stats.executed == 0, "resume must not re-simulate"
    assert resumed.stats.resumed == cold.stats.unique
    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = cold.stats.unique
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["resume_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["scale"] = scale_from_env()


SHARD_ENGINES = ("reference", "fast", "batch", "reference", "fast", "batch")


def _shard_campaign(index):
    config = ArchConfig.from_name("2c2w4t")
    return Campaign(f"shard-{index}", specs=[
        JobSpec(problem="vecadd", scale="smoke", seed=index * 10 + offset,
                config=config, local_size=4)
        for offset in range(2)
    ])


@pytest.mark.benchmark(group="scenarios")
def test_shard_pool_reuse_beats_fresh_pools(benchmark):
    """One warm pool across engine-grouped shards vs. a pool per shard.

    The "fresh" side is what every planner submission paid before the
    executor refactor: a new ``ProcessPoolExecutor`` forked, used, and torn
    down per shard.  The "shared" side is what it pays now.  The simulated
    work is identical and tiny, so the measured gap is almost purely pool
    spin-up -- multiplied by the number of engine shards a scenario emits.
    """
    def fresh_pools():
        for index, engine in enumerate(SHARD_ENGINES):
            with CampaignRunner(workers=2) as runner:
                runner.run(_shard_campaign(index), engine=engine)

    def shared_pool(runner):
        for index, engine in enumerate(SHARD_ENGINES):
            runner.run(_shard_campaign(index), engine=engine)

    fresh_started = time.perf_counter()
    fresh_pools()
    fresh_seconds = time.perf_counter() - fresh_started

    with CampaignRunner(workers=2) as runner:
        shared_pool(runner)                      # warm the pool once
        shared = benchmark.pedantic(shared_pool, args=(runner,),
                                    rounds=1, iterations=1, warmup_rounds=0)
        assert shared is None
        assert runner.executor._pool is not None, "pool must stay warm"

    shared_seconds = benchmark.stats.stats.mean
    saving = fresh_seconds - shared_seconds
    benchmark.extra_info["shards"] = len(SHARD_ENGINES)
    benchmark.extra_info["fresh_pool_seconds"] = round(fresh_seconds, 3)
    benchmark.extra_info["shared_pool_seconds"] = round(shared_seconds, 3)
    benchmark.extra_info["seconds_saved"] = round(saving, 3)
    write_result("scenarios_pool_reuse.md", "\n".join([
        "# Scenario shards: per-shard pools (before) vs. one warm pool (after)",
        "",
        f"engine shards          : {len(SHARD_ENGINES)}",
        f"pool per shard (before): {fresh_seconds:.3f} s",
        f"one warm pool (after)  : {shared_seconds:.3f} s",
        f"saved                  : {saving:.3f} s "
        f"({fresh_seconds / shared_seconds:.2f}x)" if shared_seconds else "",
    ]))
