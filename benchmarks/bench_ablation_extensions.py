"""Benchmark A3 -- ablations of the second-order effects the paper defers.

The paper notes that beyond the lws choice, "other factors still impact the
runtime kernel execution in Vortex" and that in a few configurations spawning
fewer warps can help through better memory-bandwidth utilisation.  Two
ablations quantify those statements on the simulator:

* **warp-scheduler policy** -- round-robin (Vortex default) vs
  greedy-then-oldest, same mapping, same kernels;
* **bandwidth-aware mapping extension** -- Eq. 1 vs the profile-guided
  :class:`~repro.core.extensions.BandwidthAwareMapping` on a memory-bound
  kernel with scarce DRAM bandwidth.

Results land in ``benchmarks/results/ablation_extensions.md``.
"""

from dataclasses import replace

import pytest

from repro.core.extensions import BandwidthAwareMapping
from repro.experiments.report import render_table
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.workloads.problems import make_problem

from benchmarks.conftest import scale_from_env, write_result

BASE_CONFIG = ArchConfig.from_name("4c8w8t")


def _run(problem, config, lws):
    device = Device(config)
    return launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                         local_size=lws, call_simulation_limit=3)


def _scheduler_ablation():
    rows = []
    for name in ("vecadd", "sgemm"):
        problem = make_problem(name, scale=scale_from_env())
        cycles = {}
        for policy in ("rr", "gto"):
            config = replace(BASE_CONFIG, warp_scheduler=policy)
            cycles[policy] = _run(problem, config, None).cycles
        rows.append((name, cycles["rr"], cycles["gto"], cycles["rr"] / cycles["gto"]))
    return rows


def _bandwidth_ablation():
    problem = make_problem("vecadd", scale=scale_from_env())
    config = replace(ArchConfig.from_name("8c8w8t"), dram_lines_per_cycle=0.5)
    baseline = _run(problem, config, None)
    strategy = BandwidthAwareMapping.from_profile_run(baseline.counters, problem.global_size)
    tuned_lws = strategy.select_local_size(problem.global_size, config)
    tuned = _run(problem, config, tuned_lws)
    return baseline, tuned, tuned_lws


@pytest.mark.benchmark(group="ablation")
def test_scheduler_policy_ablation(benchmark):
    rows = benchmark.pedantic(_scheduler_ablation, rounds=1, iterations=1, warmup_rounds=0)
    table = render_table(
        ["kernel", "round-robin cycles", "greedy-then-oldest cycles", "rr / gto"],
        [[name, str(rr), str(gto), f"{ratio:.2f}"] for name, rr, gto, ratio in rows],
    )
    write_result("ablation_scheduler.md", table)
    for name, rr, gto, ratio in rows:
        # the scheduler is a second-order effect: it shifts cycles by far less
        # than the mapping regimes do (paper Figure 2 spans 1x-20x)
        assert 0.6 < ratio < 1.7, f"scheduler effect on {name} unexpectedly large"
        benchmark.extra_info[name] = {"rr": rr, "gto": gto}


@pytest.mark.benchmark(group="ablation")
def test_bandwidth_aware_mapping_ablation(benchmark):
    baseline, tuned, tuned_lws = benchmark.pedantic(_bandwidth_ablation, rounds=1,
                                                    iterations=1, warmup_rounds=0)
    table = render_table(
        ["mapping", "lws", "warps spawned", "cycles"],
        [["Eq. 1", str(baseline.local_size), str(baseline.counters.warps_launched),
          str(baseline.cycles)],
         ["bandwidth-aware", str(tuned_lws), str(tuned.counters.warps_launched),
          str(tuned.cycles)]],
    )
    write_result("ablation_bandwidth.md", table + "\n\n"
                 "(memory-bound kernel, DRAM limited to 0.5 lines/cycle)")
    # the extension never spawns more warps and never costs more than a small margin
    assert tuned.counters.warps_launched <= baseline.counters.warps_launched
    assert tuned.cycles <= baseline.cycles * 1.15
    benchmark.extra_info["eq1_cycles"] = baseline.cycles
    benchmark.extra_info["bandwidth_aware_cycles"] = tuned.cycles
