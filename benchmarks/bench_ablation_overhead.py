"""Benchmark A1 -- launch-overhead sensitivity ablation.

The penalty of the naive lws=1 mapping is driven by the per-call launch
overhead, a micro-architecture/runtime parameter of the simulated platform
(DESIGN.md calls this out as the main calibration knob of the reproduction).
This ablation sweeps the overhead from 0 to 1024 cycles and records the
lws=1-vs-ours ratio at each point; the ratio must grow monotonically with the
overhead and stay at (or above) 1.0 even for a free launch.
Results land in ``benchmarks/results/ablation_overhead.md``.
"""

import pytest

from repro.experiments.ablation import overhead_sensitivity
from repro.experiments.report import render_table
from repro.sim.config import ArchConfig

from benchmarks.conftest import scale_from_env, write_result

OVERHEADS = (0, 16, 32, 64, 256, 1024)
CONFIG = ArchConfig.from_name("4c4w8t")


@pytest.mark.benchmark(group="ablation")
def test_launch_overhead_sensitivity(benchmark):
    records = benchmark.pedantic(
        overhead_sensitivity,
        kwargs={"problem_name": "vecadd", "scale": scale_from_env(), "config": CONFIG,
                "overheads": OVERHEADS},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    table = render_table(
        ["launch overhead (cycles)", "lws=1 cycles", "ours cycles", "lws=1 / ours"],
        [[str(r.launch_overhead), str(r.naive_cycles), str(r.ours_cycles),
          f"{r.ratio:.2f}"] for r in records],
    )
    write_result("ablation_overhead.md", table)

    ratios = [r.ratio for r in records]
    assert all(later >= earlier - 1e-9 for earlier, later in zip(ratios, ratios[1:])), \
        "the lws=1 penalty must grow with the launch overhead"
    assert ratios[0] >= 0.95          # even a free launch does not make lws=1 win
    assert ratios[-1] > ratios[0] * 1.5
    benchmark.extra_info["ratios"] = {r.launch_overhead: round(r.ratio, 2) for r in records}
