"""Benchmark E7 -- the telemetry overhead gate.

The telemetry layer promises a near-zero-cost disabled path: every recorder
entry point returns immediately when ``$REPRO_TELEMETRY`` is unset, so an
uninstrumented user pays (almost) nothing for the instrumentation baked into
the engines, the campaign runner and the sink.  This benchmark turns that
promise into a gate:

* a figure-2 campaign is timed with the recorder disabled (the default),
* the same campaign is re-run with every recorder entry point wrapped by a
  call counter, giving the exact number of disabled-path calls it makes,
* a microbenchmark prices one disabled call (span enter/exit, counter bump,
  histogram observation -- loop overhead included, so the price is an
  overestimate),
* the product ``calls x price`` must stay under ``OVERHEAD_BUDGET`` (2%) of
  the disabled wall-clock.

The enabled path is also timed for the report, but not gated -- recording
real spans and metrics is allowed to cost what it costs.

Results land in ``benchmarks/results/telemetry.md``.
"""

import os
import time

import pytest

from repro.campaign import CampaignRunner
from repro.experiments.figure2 import run_figure2
from repro.telemetry.recorder import RECORDER, TELEMETRY_ENV

from benchmarks.conftest import call_limit_from_env, scale_from_env, sweep_from_env, write_result

KERNELS = ("vecadd", "relu")

#: Disabled-path instrumentation may cost at most this fraction of the run.
OVERHEAD_BUDGET = 0.02

#: Recorder entry points reachable from instrumented code.
ENTRY_POINTS = ("span", "record_span", "count", "gauge", "observe")


def _run():
    return run_figure2(KERNELS, sweep_from_env(), scale=scale_from_env(),
                       call_simulation_limit=call_limit_from_env(),
                       seed=0, runner=CampaignRunner())


def _count_disabled_calls():
    """Run the campaign once counting every recorder entry-point call.

    The recorder stays disabled, so guarded sites (``if RECORDER.enabled:``)
    skip their calls exactly as they would in production -- the count is the
    true number of no-op calls the disabled path executes.
    """
    calls = [0]
    originals = {name: getattr(RECORDER, name) for name in ENTRY_POINTS}

    def _wrap(original):
        def wrapped(*args, **kwargs):
            calls[0] += 1
            return original(*args, **kwargs)
        return wrapped

    for name, original in originals.items():
        setattr(RECORDER, name, _wrap(original))
    try:
        _run()
    finally:
        for name, original in originals.items():
            setattr(RECORDER, name, original)
    return calls[0]


def _disabled_call_price(iterations=200_000):
    """Seconds per disabled recorder call (loop overhead included)."""
    span, count, observe = RECORDER.span, RECORDER.count, RECORDER.observe
    started = time.perf_counter()
    for _ in range(iterations):
        with span("bench.noop"):
            pass
        count("bench.noop")
        observe("bench.noop", 0.0)
    return (time.perf_counter() - started) / (3 * iterations)


@pytest.mark.benchmark(group="telemetry")
def test_telemetry_disabled_overhead_gate(benchmark):
    assert not RECORDER.enabled, "benchmark requires the default (disabled) recorder"

    # benchmark entry: the disabled run -- the number every non-telemetry
    # user experiences.
    disabled = benchmark.pedantic(_run, rounds=1, iterations=1, warmup_rounds=0)
    disabled_seconds = benchmark.stats.stats.mean

    calls = _count_disabled_calls()
    price = _disabled_call_price()
    overhead_seconds = calls * price
    overhead = overhead_seconds / disabled_seconds if disabled_seconds else 0.0

    # the enabled path, for the report only.
    os.environ[TELEMETRY_ENV] = "1"
    RECORDER.configure_from_env()
    RECORDER.reset()
    try:
        started = time.perf_counter()
        enabled = _run()
        enabled_seconds = time.perf_counter() - started
    finally:
        os.environ.pop(TELEMETRY_ENV, None)
        RECORDER.configure_from_env()
        RECORDER.reset()
    assert ([r.as_dict() for r in enabled.records]
            == [r.as_dict() for r in disabled.records]), \
        "telemetry must not change campaign records"

    benchmark.extra_info["disabled_seconds"] = round(disabled_seconds, 3)
    benchmark.extra_info["enabled_seconds"] = round(enabled_seconds, 3)
    benchmark.extra_info["recorder_calls"] = calls
    benchmark.extra_info["call_price_ns"] = round(price * 1e9, 1)
    benchmark.extra_info["disabled_overhead_pct"] = round(overhead * 100, 4)

    write_result("telemetry.md", "\n".join([
        "# Telemetry: disabled-path overhead gate (figure-2 grid)",
        "",
        f"jobs                    : {len(disabled.records)}",
        f"disabled run            : {disabled_seconds:.3f} s",
        f"enabled run             : {enabled_seconds:.3f} s",
        f"recorder calls (no-op)  : {calls}",
        f"price per disabled call : {price * 1e9:.0f} ns",
        f"estimated overhead      : {overhead * 100:.4f} % "
        f"(budget {OVERHEAD_BUDGET * 100:.0f} %)",
    ]))
    assert overhead <= OVERHEAD_BUDGET, (
        f"disabled telemetry path costs {overhead:.2%} of the run "
        f"(budget {OVERHEAD_BUDGET:.0%})")
