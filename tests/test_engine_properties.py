"""Property-based tests for scheduler and Eq.-1 invariants plus issue order.

Three families of invariants backing the fast engine's correctness argument:

* **Eq. 1** (the runtime mapping): the chosen lws fills the machine in a
  single kernel call (the workgroup count never exceeds hardware capacity),
  collapses to an exact divisor of ``gws`` whenever ``hp`` divides ``gws``,
  and the launch geometry clamp keeps ``lws <= gws``.
* **Schedulers**: every policy's priority order is a permutation of the warp
  slots, round-robin rotates one past the issuer, and the fast engine's
  pre-filtered rotation tables reproduce ``RoundRobinScheduler`` exactly.
* **Issue order under event-skipping**: for random launch geometries the fast
  engine issues the same instructions, in the same order, at the same cycles
  as the reference engine (checked through full traces).
"""

import dataclasses
import math

from hypothesis import given, settings, strategies as st

from repro.core.optimizer import (hardware_parallelism, kernel_calls_for,
                                  optimal_local_size, workgroups_for)
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.runtime.ndrange import NDRange
from repro.sim.config import ArchConfig
from repro.sim.scheduler import (GreedyThenOldestScheduler, RoundRobinScheduler,
                                 make_scheduler)
from repro.trace.tracer import Tracer
from repro.workloads.problems import make_problem

machine_shapes = st.tuples(
    st.integers(min_value=1, max_value=16),   # cores
    st.integers(min_value=1, max_value=16),   # warps per core
    st.integers(min_value=1, max_value=32),   # threads per warp
)


# ----------------------------------------------------------------------
# Eq. 1 invariants
# ----------------------------------------------------------------------
@settings(max_examples=200)
@given(gws=st.integers(min_value=1, max_value=10**7), shape=machine_shapes)
def test_eq1_lws_fills_machine_in_one_call(gws, shape):
    cores, warps, threads = shape
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    hp = hardware_parallelism(config)
    lws = optimal_local_size(gws, config)

    assert lws >= 1
    # Never exceeds machine capacity: the workgroups fit the hardware lanes
    # of a single kernel call.
    assert workgroups_for(gws, lws) <= hp
    assert kernel_calls_for(gws, lws, config) == 1


@settings(max_examples=200)
@given(multiple=st.integers(min_value=1, max_value=4096), shape=machine_shapes)
def test_eq1_divides_gws_exactly_when_hp_divides_gws(multiple, shape):
    cores, warps, threads = shape
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    hp = hardware_parallelism(config)
    gws = multiple * hp
    lws = optimal_local_size(gws, config)
    assert lws == multiple
    assert gws % lws == 0                      # lws divides gws
    assert workgroups_for(gws, lws) == hp      # exactly one group per lane


@settings(max_examples=200)
@given(gws=st.integers(min_value=1, max_value=10**6), shape=machine_shapes)
def test_eq1_lws_never_exceeds_problem_after_clamp(gws, shape):
    cores, warps, threads = shape
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    ndrange = NDRange(gws, optimal_local_size(gws, config))
    assert 1 <= ndrange.local_size <= gws
    assert ndrange.num_workgroups == math.ceil(gws / ndrange.local_size)


# ----------------------------------------------------------------------
# scheduler invariants
# ----------------------------------------------------------------------
@settings(max_examples=100)
@given(num_warps=st.integers(min_value=1, max_value=32),
       issues=st.lists(st.integers(min_value=0, max_value=63), max_size=50),
       policy=st.sampled_from(["rr", "gto"]))
def test_priority_order_is_always_a_permutation(num_warps, issues, policy):
    scheduler = make_scheduler(policy, num_warps)
    for raw in issues:
        order = scheduler.priority_order()
        assert sorted(order) == list(range(num_warps))
        scheduler.issued(raw % num_warps)
    assert sorted(scheduler.priority_order()) == list(range(num_warps))


@settings(max_examples=100)
@given(num_warps=st.integers(min_value=1, max_value=32),
       issuer=st.integers(min_value=0, max_value=63))
def test_round_robin_rotates_one_past_the_issuer(num_warps, issuer):
    scheduler = RoundRobinScheduler(num_warps)
    scheduler.issued(issuer % num_warps)
    order = scheduler.priority_order()
    assert order[0] == (issuer + 1) % num_warps
    assert order == [(order[0] + offset) % num_warps for offset in range(num_warps)]


@settings(max_examples=100)
@given(num_warps=st.integers(min_value=2, max_value=32),
       first=st.integers(min_value=0, max_value=63),
       second=st.integers(min_value=0, max_value=63))
def test_gto_prioritizes_current_then_oldest(num_warps, first, second):
    scheduler = GreedyThenOldestScheduler(num_warps)
    scheduler.issued(first % num_warps)
    scheduler.issued(second % num_warps)
    order = scheduler.priority_order()
    assert order[0] == second % num_warps          # greedy: stay on the issuer
    if first % num_warps != second % num_warps:
        assert order[-1] == first % num_warps      # most recently displaced is last


@settings(max_examples=60)
@given(num_warps=st.integers(min_value=1, max_value=16),
       attached=st.integers(min_value=1, max_value=16),
       start=st.integers(min_value=0, max_value=15))
def test_fast_engine_rotation_tables_match_round_robin(num_warps, attached, start):
    """The pre-filtered rotation tables are RoundRobinScheduler minus the
    out-of-range indices -- exactly what the reference scan skips."""
    attached = min(attached, num_warps)
    start = start % num_warps
    scheduler = RoundRobinScheduler(num_warps)
    scheduler._next = start
    expected = [i for i in scheduler.priority_order() if i < attached]
    table = [index for offset in range(num_warps)
             if (index := (start + offset) % num_warps) < attached]
    assert table == expected


# ----------------------------------------------------------------------
# event-skipping never reorders warp issue (random geometries)
# ----------------------------------------------------------------------
@settings(max_examples=12)
@given(shape=st.tuples(st.integers(min_value=1, max_value=3),
                       st.integers(min_value=1, max_value=4),
                       st.integers(min_value=2, max_value=8)),
       lws=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
       problem_name=st.sampled_from(["vecadd", "saxpy", "relu"]))
def test_event_skipping_issue_order_matches_reference(shape, lws, problem_name):
    cores, warps, threads = shape
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    problem = make_problem(problem_name, scale="smoke", seed=0)
    traces = {}
    for engine in ("reference", "fast", "batch"):
        tracer = Tracer(max_events=500_000)
        device = Device(config, tracer=tracer, engine=engine)
        result = launch_kernel(device, problem.kernel, problem.arguments,
                               problem.global_size, local_size=lws)
        assert not tracer.truncated
        traces[engine] = ([dataclasses.astuple(event) for event in tracer.events],
                          result.cycles)
    assert traces["fast"] == traces["reference"]
    assert traces["batch"] == traces["reference"]
