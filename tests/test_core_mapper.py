"""Tests for the mapping strategies (repro.core.mapper)."""

import pytest

from repro.core.mapper import (
    FixedMapping,
    HardwareAwareMapping,
    NaiveMapping,
    PAPER_STRATEGIES,
    strategy_by_name,
)
from repro.sim.config import ArchConfig

SMALL = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)      # hp = 8
LARGE = ArchConfig(cores=64, warps_per_core=32, threads_per_warp=32)   # hp = 65536


def test_naive_mapping_always_returns_one():
    naive = NaiveMapping()
    assert naive.select_local_size(1, SMALL) == 1
    assert naive.select_local_size(10_000, LARGE) == 1
    assert naive.name == "naive-lws1"
    assert "lws = 1" in naive.describe()


def test_fixed_mapping_is_hardware_agnostic_but_clamped_to_gws():
    fixed = FixedMapping(32)
    assert fixed.select_local_size(4096, SMALL) == 32
    assert fixed.select_local_size(4096, LARGE) == 32
    assert fixed.select_local_size(10, SMALL) == 10     # OpenCL: lws <= gws
    assert fixed.name == "fixed-lws32"


def test_fixed_mapping_validates_its_size():
    with pytest.raises(ValueError):
        FixedMapping(0)


def test_hardware_aware_mapping_follows_eq1():
    ours = HardwareAwareMapping()
    assert ours.select_local_size(128, SMALL) == 16
    assert ours.select_local_size(4096, LARGE) == 1
    assert ours.select_local_size(4096, ArchConfig(cores=4, warps_per_core=8,
                                                   threads_per_warp=8)) == 16


def test_paper_strategies_dictionary_has_the_three_mappings():
    assert set(PAPER_STRATEGIES) == {"lws=1", "lws=32", "ours"}
    assert isinstance(PAPER_STRATEGIES["lws=1"], NaiveMapping)
    assert isinstance(PAPER_STRATEGIES["lws=32"], FixedMapping)
    assert isinstance(PAPER_STRATEGIES["ours"], HardwareAwareMapping)


def test_strategy_by_name_accepts_labels_and_names():
    assert strategy_by_name("ours") is PAPER_STRATEGIES["ours"]
    assert strategy_by_name("hardware-aware") is PAPER_STRATEGIES["ours"]
    assert strategy_by_name("lws=1") is PAPER_STRATEGIES["lws=1"]
    assert strategy_by_name("fixed-lws64").local_size == 64
    assert strategy_by_name("lws=128").local_size == 128
    with pytest.raises(KeyError):
        strategy_by_name("nonsense")


def test_strategies_have_informative_reprs():
    assert "Eq. 1" in HardwareAwareMapping().describe()
    assert "NaiveMapping" in repr(NaiveMapping())
