"""Tests for the experiment sweeps and violin statistics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.configs import (
    PAPER_SWEEP_SIZE,
    bench_sweep,
    grid_sweep,
    paper_sweep,
    smoke_sweep,
    sweep_by_name,
)
from repro.experiments.stats import RatioStats, ratio_stats


# ----------------------------------------------------------------------
# configuration sweeps
# ----------------------------------------------------------------------
class TestSweeps:
    def test_paper_sweep_has_450_unique_configurations(self):
        configs = paper_sweep()
        assert len(configs) == PAPER_SWEEP_SIZE == 450
        assert len({c.name for c in configs}) == 450

    def test_paper_sweep_spans_the_published_corners(self):
        names = {c.name for c in paper_sweep()}
        assert "1c2w2t" in names
        assert "64c32w32t" in names

    def test_reduced_sweeps_preserve_the_corners(self):
        for sweep in (bench_sweep(), smoke_sweep()):
            names = {c.name for c in sweep}
            assert "1c2w2t" in names
            assert "64c32w32t" in names or len(sweep) <= 8
        assert len(bench_sweep()) == 36
        assert len(smoke_sweep()) == 8

    def test_sweep_by_name(self):
        assert len(sweep_by_name("paper")) == 450
        assert len(sweep_by_name("bench")) == 36
        assert len(sweep_by_name("smoke")) == 8
        with pytest.raises(KeyError):
            sweep_by_name("enormous")

    def test_overrides_propagate_to_every_configuration(self):
        configs = smoke_sweep(dram_latency=321)
        assert all(c.dram_latency == 321 for c in configs)

    def test_grid_sweep_is_a_cartesian_product(self):
        configs = grid_sweep([1, 2], [2], [2, 4])
        assert [c.name for c in configs] == ["1c2w2t", "1c2w4t", "2c2w2t", "2c2w4t"]


# ----------------------------------------------------------------------
# violin statistics
# ----------------------------------------------------------------------
class TestRatioStats:
    def test_basic_statistics(self):
        stats = ratio_stats([2.0, 1.0, 0.5, 4.0])
        assert stats.count == 4
        assert stats.average == pytest.approx((2 + 1 + 0.5 + 4) / 4)
        assert stats.worst == 0.5
        assert stats.best == 4.0
        assert stats.median == pytest.approx(1.5)
        assert stats.fraction_below_one == pytest.approx(0.25)
        assert stats.percent_below_one == pytest.approx(25.0)
        assert stats.geometric_mean == pytest.approx((2 * 1 * 0.5 * 4) ** 0.25)

    def test_single_value(self):
        stats = ratio_stats([1.3])
        assert stats.average == stats.worst == stats.best == stats.median == 1.3
        assert stats.quartile_low == stats.quartile_high == 1.3

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            ratio_stats([])
        with pytest.raises(ValueError):
            ratio_stats([1.0, 0.0])
        with pytest.raises(ValueError):
            ratio_stats([-1.0])

    def test_paper_row_rendering(self):
        stats = ratio_stats([1.42, 1.0, 0.94])
        row = stats.paper_row()
        assert "avg:" in row and "worse:" in row and "worst:" in row
        assert "0.94" in row

    def test_as_dict_round_trip_fields(self):
        data = ratio_stats([2.0, 3.0]).as_dict()
        assert data["count"] == 2
        assert set(data) >= {"average", "worst", "best", "median", "percent_below_one"}

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=50))
    def test_invariants_hold_for_arbitrary_ratio_lists(self, ratios):
        stats = ratio_stats(ratios)
        eps = 1e-9 * max(ratios)
        assert stats.worst <= stats.median <= stats.best
        assert stats.worst - eps <= stats.average <= stats.best + eps
        assert stats.quartile_low <= stats.median <= stats.quartile_high
        assert 0.0 <= stats.fraction_below_one <= 1.0
        assert stats.geometric_mean <= stats.average + eps + 1e-9   # AM-GM
        assert stats.count == len(ratios)
