"""Tests for ArchConfig (repro.sim.config)."""

import pytest

from repro.sim.config import ArchConfig, ConfigError, FIGURE1_CONFIG, LARGEST_CONFIG, SMALLEST_CONFIG


def test_hardware_parallelism_is_the_product_of_the_triple():
    config = ArchConfig(cores=4, warps_per_core=8, threads_per_warp=16)
    assert config.hardware_parallelism == 4 * 8 * 16


def test_name_uses_the_paper_scheme():
    assert ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4).name == "1c2w4t"
    assert ArchConfig(cores=64, warps_per_core=32, threads_per_warp=32).name == "64c32w32t"


def test_from_name_round_trips():
    for name in ("1c2w2t", "4c8w8t", "64c32w32t", "12c4w16t"):
        assert ArchConfig.from_name(name).name == name


def test_from_name_accepts_overrides():
    config = ArchConfig.from_name("2c2w2t", dram_latency=500)
    assert config.dram_latency == 500
    assert config.cores == 2


def test_from_name_rejects_garbage():
    for bad in ("2c2w", "banana", "0c2w2t-ish", "c2w2t"):
        with pytest.raises(ConfigError):
            ArchConfig.from_name(bad)


def test_invalid_shapes_rejected():
    with pytest.raises(ConfigError):
        ArchConfig(cores=0)
    with pytest.raises(ConfigError):
        ArchConfig(warps_per_core=-1)
    with pytest.raises(ConfigError):
        ArchConfig(threads_per_warp=0)


def test_invalid_memory_geometry_rejected():
    with pytest.raises(ConfigError):
        ArchConfig(l1_size_words=100, l1_line_words=16, l1_ways=4)   # not a multiple
    with pytest.raises(ConfigError):
        ArchConfig(dram_lines_per_cycle=0)


def test_negative_overheads_rejected():
    with pytest.raises(ConfigError):
        ArchConfig(kernel_launch_overhead=-1)


def test_with_shape_preserves_other_parameters():
    base = ArchConfig(dram_latency=321)
    derived = base.with_shape(8, 4, 2)
    assert derived.cores == 8 and derived.warps_per_core == 4 and derived.threads_per_warp == 2
    assert derived.dram_latency == 321
    assert base.cores == 1           # original untouched (frozen)


def test_scaled_memory_keeps_line_alignment():
    config = ArchConfig().scaled_memory(0.5)
    assert config.l1_size_words % (config.l1_line_words * config.l1_ways) == 0
    assert config.l2_size_words % (config.l2_line_words * config.l2_ways) == 0
    assert config.l1_size_words <= ArchConfig().l1_size_words


def test_describe_mentions_the_key_parameters():
    text = ArchConfig(cores=2, warps_per_core=4, threads_per_warp=8).describe()
    assert "2c4w8t" in text
    assert "hp = 64" in text
    assert "DRAM" in text


def test_paper_reference_configs():
    assert FIGURE1_CONFIG.name == "1c2w4t"
    assert SMALLEST_CONFIG.name == "1c2w2t"
    assert LARGEST_CONFIG.name == "64c32w32t"
    assert LARGEST_CONFIG.hardware_parallelism == 65536


def test_config_is_hashable_and_frozen():
    config = ArchConfig()
    with pytest.raises(Exception):
        config.cores = 2          # type: ignore[misc]
    assert isinstance(hash(config.name), int)
