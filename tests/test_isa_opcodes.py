"""Tests for the opcode tables (repro.isa.opcodes)."""

import pytest

from repro.isa.opcodes import (
    CONTROL_OPS,
    MEMORY_OPS,
    OP_CLASS,
    OpClass,
    Opcode,
    WRITEBACK_OPS,
    is_control,
    is_memory,
    op_class,
    writes_register,
)


def test_every_opcode_has_a_class():
    for opcode in Opcode:
        assert opcode in OP_CLASS
        assert isinstance(op_class(opcode), OpClass)


def test_memory_ops_are_exactly_load_and_store():
    assert MEMORY_OPS == {Opcode.LOAD, Opcode.STORE}
    assert is_memory(Opcode.LOAD)
    assert is_memory(Opcode.STORE)
    assert not is_memory(Opcode.ADD)


def test_control_ops_include_branching_instructions():
    for opcode in (Opcode.JMP, Opcode.SPLIT, Opcode.JOIN, Opcode.LOOP_END, Opcode.HALT):
        assert opcode in CONTROL_OPS
        assert is_control(opcode)
    assert not is_control(Opcode.FMA)


def test_writeback_classification():
    assert writes_register(Opcode.ADD)
    assert writes_register(Opcode.LOAD)
    assert writes_register(Opcode.CSRR)
    assert writes_register(Opcode.FMA)
    assert not writes_register(Opcode.STORE)
    assert not writes_register(Opcode.JMP)
    assert not writes_register(Opcode.BAR)
    assert not writes_register(Opcode.HALT)


def test_alu_and_float_opcodes_classified_correctly():
    assert op_class(Opcode.ADD) is OpClass.INT_ALU
    assert op_class(Opcode.MUL) is OpClass.INT_MUL
    assert op_class(Opcode.FADD) is OpClass.FLOAT
    assert op_class(Opcode.FDIV) is OpClass.SFU
    assert op_class(Opcode.FSQRT) is OpClass.SFU
    assert op_class(Opcode.LOAD) is OpClass.MEMORY
    assert op_class(Opcode.CSRR) is OpClass.SIMT
    assert op_class(Opcode.NOP) is OpClass.PSEUDO


def test_writeback_ops_subset_consistency():
    # Every op that writes a register must be an ALU/FPU/SFU op, a load or a CSR read.
    for opcode in WRITEBACK_OPS:
        assert op_class(opcode) in (
            OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FLOAT, OpClass.SFU,
            OpClass.MEMORY, OpClass.SIMT,
        )


def test_opcode_values_are_unique():
    values = [opcode.value for opcode in Opcode]
    assert len(values) == len(set(values))
