"""Distributed campaigns: executor conformance, fleet fault tolerance,
the network-served cache, and the wire protocol.

The conformance suite runs the *same* assertions against every executor --
in-process, process pool, and a distributed fleet over loopback TCP -- to
pin the protocol's contract: one completion per task, submission-order
folding and dedup when driven through the runner, failure isolation, and
results bit-identical to the serial in-process path (modulo
``elapsed_seconds``, which is wall-clock and differs between *any* two
runs; true bit-identity including wall-clock fields is proven through the
shared cache, exactly like the service layer's bit-for-bit test).

The fleet tests use ``run_worker(..., max_tasks=N)`` -- a worker that
silently drops its socket after N jobs, indistinguishable from SIGKILL on
the coordinator side -- to prove the re-queue/retry path loses nothing and
duplicates nothing.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    JobFailure,
    JobResult,
    JobSpec,
    LocalExecutor,
    ResultCache,
)
from repro.campaign.dist import (
    CacheClient,
    CacheServer,
    Connection,
    DistributedExecutor,
    ProtocolError,
    connect,
    parse_address,
    run_worker,
)
from repro.campaign.executor import ExecutorTask
from repro.campaign.worker import execute_job
from repro.sim.config import ArchConfig
from repro.sim.engine import ENGINE_ENV, EngineError

CONFIG = ArchConfig.from_name("2c2w4t")


def spec(seed: int = 0, lws: int = 4, problem: str = "vecadd",
         **overrides) -> JobSpec:
    return JobSpec(problem=problem, scale="smoke", seed=seed, config=CONFIG,
                   local_size=lws, **overrides)


def stripped(outcome) -> dict:
    """``to_dict()`` minus the one nondeterministic (wall-clock) field."""
    payload = outcome.to_dict()
    payload.pop("elapsed_seconds", None)
    return payload


def make_fleet(workers: int = 2, cache=None, worker_args=None,
               **overrides) -> DistributedExecutor:
    """A coordinator plus ``workers`` loopback worker threads, ready to go."""
    options = dict(heartbeat_interval=0.2, heartbeat_timeout=3.0,
                   worker_wait=20.0)
    options.update(overrides)
    executor = DistributedExecutor(cache=cache, **options)
    worker_args = worker_args if worker_args is not None else [{}] * workers
    for kwargs in worker_args:
        threading.Thread(target=run_worker, args=(executor.address,),
                         kwargs=kwargs, daemon=True).start()
    executor.wait_for_workers(len(worker_args), timeout=20.0)
    return executor


# ----------------------------------------------------------------------
# executor-protocol conformance: every executor, same contract
# ----------------------------------------------------------------------
@pytest.fixture(params=["local-serial", "local-pool", "dist"])
def any_executor(request):
    if request.param == "local-serial":
        executor = LocalExecutor(workers=1)
    elif request.param == "local-pool":
        executor = LocalExecutor(workers=2)
    else:
        executor = make_fleet(workers=2)
    yield executor
    executor.close()


class TestExecutorConformance:
    def test_one_completion_per_task(self, any_executor):
        tasks = [ExecutorTask(index=i, spec=spec(seed=i)) for i in range(5)]
        completions = list(any_executor.execute(tasks))
        assert sorted(c.index for c in completions) == list(range(5))
        reference = {i: execute_job(spec(seed=i)) for i in range(5)}
        for completion in completions:
            assert isinstance(completion.outcome, JobResult)
            assert (stripped(completion.outcome)
                    == stripped(reference[completion.index]))

    def test_runner_submission_order_and_dedup(self, any_executor):
        specs = [spec(seed=0), spec(seed=1), spec(seed=0), spec(seed=2),
                 spec(seed=1)]
        runner = CampaignRunner(executor=any_executor)
        outcome = runner.run(Campaign("conformance", specs=list(specs)))
        assert outcome.stats.total == 5
        assert outcome.stats.executed == 3
        assert outcome.stats.deduplicated == 2
        assert outcome.stats.failed == 0
        # submission-order folding: slot i answers spec i, and duplicate
        # submissions receive the *same* outcome object's payload
        serial = CampaignRunner().run(Campaign("serial", specs=list(specs)))
        for ours, reference in zip(outcome.results, serial.results):
            assert stripped(ours) == stripped(reference)
        assert outcome.results[0].to_dict() == outcome.results[2].to_dict()

    def test_failures_are_isolated(self, any_executor):
        specs = [spec(seed=0), spec(problem="no_such_kernel"), spec(seed=1)]
        outcome = CampaignRunner(executor=any_executor).run(
            Campaign("isolation", specs=specs))
        assert outcome.stats.failed == 1
        assert isinstance(outcome.results[0], JobResult)
        assert isinstance(outcome.results[1], JobFailure)
        assert "no_such_kernel" in outcome.results[1].error
        assert isinstance(outcome.results[2], JobResult)


# ----------------------------------------------------------------------
# fleet fault tolerance: kill a worker mid-campaign, lose nothing
# ----------------------------------------------------------------------
class TestFleetFaultTolerance:
    def test_killed_worker_mid_campaign_loses_nothing(self):
        # Worker 0 silently drops its socket after 2 jobs (a SIGKILL, as the
        # coordinator sees it); worker 1 must absorb the re-queued work and
        # the campaign must complete with zero lost or duplicated results.
        executor = make_fleet(worker_args=[{"max_tasks": 2}, {}],
                              max_retries=2)
        try:
            specs = [spec(seed=seed) for seed in range(10)]
            outcome = CampaignRunner(executor=executor).run(
                Campaign("chaos", specs=list(specs)))
            assert outcome.stats.total == 10
            assert outcome.stats.failed == 0
            assert len(outcome.results) == 10
            serial = CampaignRunner().run(Campaign("serial", specs=list(specs)))
            for ours, reference in zip(outcome.results, serial.results):
                assert stripped(ours) == stripped(reference)
        finally:
            executor.close()

    def test_retries_exhausted_carry_host_and_heartbeat(self):
        # A fleet whose only worker dies before finishing anything: the
        # tasks it held fail with the dead worker's identity; the tasks
        # still queued fail once the fleet has been empty for worker_wait.
        executor = make_fleet(worker_args=[{"max_tasks": 0}],
                              max_retries=0, worker_wait=1.0)
        try:
            outcome = CampaignRunner(executor=executor).run(
                Campaign("doomed", specs=[spec(seed=s) for s in range(4)]))
            assert outcome.stats.failed == 4
            died_holding = [f for f in outcome.results if f.host]
            assert died_holding, "some failure must name the dead worker"
            for failure in died_holding:
                assert isinstance(failure, JobFailure)
                assert "/pid" in failure.host
                assert failure.last_heartbeat is not None
                assert failure.last_heartbeat <= time.time()
        finally:
            executor.close()

    def test_fleet_arriving_late_still_serves(self):
        # Workers may join after execute() started: tasks wait (up to
        # worker_wait) instead of failing fast.
        executor = DistributedExecutor(heartbeat_interval=0.2,
                                       worker_wait=20.0)
        try:
            def late_worker():
                time.sleep(0.6)
                run_worker(executor.address)
            threading.Thread(target=late_worker, daemon=True).start()
            outcome = CampaignRunner(executor=executor).run(
                Campaign("late", specs=[spec(seed=0)]))
            assert outcome.stats.failed == 0
        finally:
            executor.close()


# ----------------------------------------------------------------------
# worker-death error parity (both executors)
# ----------------------------------------------------------------------
def _die(job_spec, engine=None):  # pragma: no cover - runs in a pool worker
    os._exit(13)


class TestWorkerDeathParity:
    def test_broken_pool_failures_carry_host_and_heartbeat(self, monkeypatch):
        import repro.campaign.executor as executor_module

        monkeypatch.setattr(executor_module, "execute_job", _die)
        executor = LocalExecutor(workers=2)
        try:
            tasks = [ExecutorTask(index=i, spec=spec(seed=i)) for i in range(2)]
            completions = list(executor.execute(tasks))
            assert len(completions) == 2
            for completion in completions:
                failure = completion.outcome
                assert isinstance(failure, JobFailure)
                assert "BrokenProcessPool" in failure.error
                assert "Traceback" in failure.traceback
                assert failure.host, "pool breakage must say where it ran"
                assert failure.last_heartbeat is not None
        finally:
            executor.close()

    def test_broken_pool_is_replaced_on_the_next_call(self, monkeypatch):
        import repro.campaign.executor as executor_module

        executor = LocalExecutor(workers=2)
        try:
            monkeypatch.setattr(executor_module, "execute_job", _die)
            broken = list(executor.execute(
                [ExecutorTask(index=i, spec=spec(seed=i)) for i in range(2)]))
            assert all(isinstance(c.outcome, JobFailure) for c in broken)
            monkeypatch.undo()
            healed = list(executor.execute(
                [ExecutorTask(index=i, spec=spec(seed=i)) for i in range(2)]))
            assert all(isinstance(c.outcome, JobResult) for c in healed)
        finally:
            executor.close()


# ----------------------------------------------------------------------
# the shared cache over the wire
# ----------------------------------------------------------------------
class TestCacheServer:
    @pytest.fixture
    def served_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(cache=cache).run(
            Campaign("seed", specs=[spec(seed=s) for s in range(3)]))
        server = CacheServer(cache)
        client = CacheClient(server.address)
        yield cache, client
        client.close()
        server.close()

    def test_get_many_bit_equal_to_direct_cache(self, served_cache):
        cache, client = served_cache
        probes = [spec(seed=0), spec(seed=99), spec(seed=2)]
        over_wire = client.get_many(probes)
        direct = cache.get_many(probes)
        assert over_wire[1] is None and direct[1] is None
        for ours, reference in zip(over_wire, direct):
            if reference is None:
                continue
            assert ours.to_dict() == reference.to_dict()   # incl. wall-clock
            assert ours.from_cache and reference.from_cache

    def test_single_get_matches_too(self, served_cache):
        cache, client = served_cache
        assert client.get(spec(seed=1)).to_dict() == cache.get(spec(seed=1)).to_dict()
        assert client.get(spec(seed=99)) is None

    def test_put_writes_through_to_the_journal(self, served_cache, tmp_path):
        cache, client = served_cache
        fresh_spec = spec(seed=7)
        result = execute_job(fresh_spec)
        assert isinstance(result, JobResult)
        client.put(fresh_spec, result)
        assert cache.get(fresh_spec).to_dict() == result.to_dict()
        # write-through: a brand-new instance over the same directory sees it
        reloaded = ResultCache(tmp_path / "cache")
        assert reloaded.get(fresh_spec).to_dict() == result.to_dict()

    def test_bad_requests_get_error_replies_not_disconnects(self, served_cache):
        cache, client = served_cache
        connection = connect(CacheServer(cache).address)
        connection.send({"type": "bogus"})
        assert connection.recv()["type"] == "error"
        connection.send({"type": "get", "spec": {"not": "a spec"}})
        assert connection.recv()["type"] == "error"
        # the connection survived both
        connection.send({"type": "stats"})
        assert connection.recv()["type"] == "stats"
        connection.close()


class TestSharedCacheAcrossTheFleet:
    def test_fleet_results_are_cache_served_bit_identically(self, tmp_path):
        # The service-layer bit-for-bit pattern, distributed: a fleet run
        # seeds the shared cache; a *local* runner over the same cache must
        # be served the identical records -- wall-clock fields included --
        # and the journal's last-wins view must hold exactly one record per
        # point, whichever worker computed it.
        cache = ResultCache(tmp_path / "cache")
        executor = make_fleet(workers=2, cache=cache)
        specs = [spec(seed=s) for s in range(6)]
        try:
            fleet = CampaignRunner(cache=cache, executor=executor).run(
                Campaign("fleet", specs=list(specs)))
            assert fleet.stats.failed == 0
            assert fleet.stats.executed == 6
        finally:
            executor.close()
        local = CampaignRunner(cache=ResultCache(tmp_path / "cache")).run(
            Campaign("local", specs=list(specs)))
        assert local.stats.cache_hits == 6
        assert local.stats.executed == 0
        for served, computed in zip(local.results, fleet.results):
            assert served.to_dict() == computed.to_dict()
        # exactly-once in the journal's last-wins view
        last_wins = {}
        for record, _ in ResultCache(tmp_path / "cache").iter_entries():
            last_wins[record["hash"]] = record["result"]
        assert len(last_wins) == 6
        for computed in fleet.results:
            assert last_wins[computed.job_hash] == computed.to_dict()

    def test_fleet_is_served_from_a_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [spec(seed=s) for s in range(4)]
        CampaignRunner(cache=cache).run(Campaign("warm", specs=list(specs)))
        executor = make_fleet(workers=1, cache=cache)
        try:
            # The runner's own cache-first resolve would answer everything
            # before the fleet sees it; run cache-less through the runner so
            # the *workers* must resolve against the cache server.
            outcome = CampaignRunner(executor=executor).run(
                Campaign("served", specs=list(specs)))
            assert outcome.stats.failed == 0
            reference = CampaignRunner(cache=cache).run(
                Campaign("ref", specs=list(specs)))
            for ours, served in zip(outcome.results, reference.results):
                # cache-served over the wire == cache-served locally,
                # wall-clock fields included
                assert ours.to_dict() == served.to_dict()
        finally:
            executor.close()


# ----------------------------------------------------------------------
# fleet-vs-local on a 3-engine grid
# ----------------------------------------------------------------------
class TestThreeEngineGrid:
    def test_fleet_matches_local_on_every_engine(self):
        specs = [spec(seed=0, lws=2), spec(seed=1, lws=4),
                 spec(seed=0, problem="saxpy")]
        executor = make_fleet(workers=2)
        try:
            by_engine = {}
            for engine in ("reference", "fast", "batch"):
                fleet = CampaignRunner(executor=executor).run(
                    Campaign(f"fleet-{engine}", specs=list(specs)),
                    engine=engine)
                local = CampaignRunner().run(
                    Campaign(f"local-{engine}", specs=list(specs)),
                    engine=engine)
                assert fleet.stats.failed == 0
                by_engine[engine] = [stripped(r) for r in fleet.results]
                assert by_engine[engine] == [stripped(r) for r in local.results]
            # and the engines agree with each other, distributed or not
            assert by_engine["reference"] == by_engine["fast"]
            assert by_engine["reference"] == by_engine["batch"]
        finally:
            executor.close()

    def test_unknown_engine_is_rejected_before_dispatch(self):
        with pytest.raises(EngineError, match="no_such_engine"):
            CampaignRunner().run(Campaign("bad", specs=[spec()]),
                                 engine="no_such_engine")


# ----------------------------------------------------------------------
# ResultCache.get_many (the batched cache-first resolve)
# ----------------------------------------------------------------------
class TestGetMany:
    def test_matches_sequential_gets(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(cache=cache).run(
            Campaign("seed", specs=[spec(seed=0), spec(seed=1)]))
        batched_cache = ResultCache(tmp_path / "cache")
        sequential_cache = ResultCache(tmp_path / "cache")
        probes = [spec(seed=0), spec(seed=5), spec(seed=1), spec(seed=0)]
        batched = batched_cache.get_many(probes)
        sequential = [sequential_cache.get(probe) for probe in probes]
        for ours, reference in zip(batched, sequential):
            if reference is None:
                assert ours is None
            else:
                assert ours.to_dict() == reference.to_dict()
                assert ours.from_cache
        assert batched_cache.hits == sequential_cache.hits == 3
        assert batched_cache.misses == sequential_cache.misses == 1

    def test_empty_batch(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get_many([]) == []
        assert cache.hits == 0 and cache.misses == 0

    def test_runner_resolves_through_one_batch(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        specs = [spec(seed=s) for s in range(3)]
        CampaignRunner(cache=cache).run(Campaign("seed", specs=list(specs)))
        calls = []
        original = ResultCache.get_many

        def counting_get_many(self, batch):
            calls.append(len(batch))
            return original(self, batch)
        monkeypatch.setattr(ResultCache, "get_many", counting_get_many)
        warm = CampaignRunner(cache=cache).run(
            Campaign("warm", specs=list(specs)))
        assert warm.stats.cache_hits == 3
        assert calls == [3], "one get_many pass for the whole campaign"


# ----------------------------------------------------------------------
# the wire protocol itself
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip_over_a_socketpair(self):
        left, right = socket.socketpair()
        a, b = Connection(left), Connection(right)
        message = {"type": "chunk", "tasks": [{"task": 1, "pi": 3.141592653589793}]}
        a.send(message)
        assert b.recv() == message
        assert a.bytes_sent == b.bytes_received > 0
        a.close()
        assert b.recv() is None          # clean EOF between frames
        b.close()

    def test_floats_survive_the_wire_exactly(self):
        left, right = socket.socketpair()
        a, b = Connection(left), Connection(right)
        values = [0.1, 1e-300, 2**53 - 1.0, 0.30000000000000004]
        a.send({"values": values})
        assert b.recv()["values"] == values
        a.close()
        b.close()

    def test_eof_mid_frame_is_a_protocol_error(self):
        left, right = socket.socketpair()
        left.sendall(b"\x00\x00\x01\x00partial")   # promises 256 bytes
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            Connection(right).recv()

    def test_oversized_frame_is_rejected(self):
        left, right = socket.socketpair()
        left.sendall(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError, match="ceiling"):
            Connection(right).recv()
        left.close()
        right.close()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:8321") == ("127.0.0.1", 8321)
        assert parse_address(("h", 1)) == ("h", 1)
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestJobFailureWire:
    def test_round_trip(self):
        failure = JobFailure(job_hash="h", label="l", error="e",
                             traceback="tb", host="vm/pid7",
                             last_heartbeat=123.5)
        assert JobFailure.from_dict(failure.to_dict()) == failure
        bare = JobFailure(job_hash="h", label="l", error="e")
        assert JobFailure.from_dict(bare.to_dict()) == bare
        assert "on vm/pid7" in failure.summary()


# ----------------------------------------------------------------------
# persistent local pool (satellite: no pool spin-up per shard)
# ----------------------------------------------------------------------
class TestPersistentLocalPool:
    def test_pool_survives_across_execute_calls(self):
        executor = LocalExecutor(workers=2)
        try:
            list(executor.execute(
                [ExecutorTask(index=i, spec=spec(seed=i)) for i in range(2)]))
            first_pool = executor._pool
            assert first_pool is not None
            list(executor.execute(
                [ExecutorTask(index=i, spec=spec(seed=i + 2)) for i in range(2)]))
            assert executor._pool is first_pool
        finally:
            executor.close()
        assert executor._pool is None

    def test_runner_shares_one_pool_across_engine_shards(self):
        # The planner submits one campaign per engine group; the runner's
        # executor must keep one warm pool across them.
        with CampaignRunner(workers=2) as runner:
            for engine in ("reference", "fast"):
                outcome = runner.run(
                    Campaign(engine, specs=[spec(seed=0), spec(seed=1)]),
                    engine=engine)
                assert outcome.stats.failed == 0
            pool = runner.executor._pool
            assert pool is not None
            runner.run(Campaign("again", specs=[spec(seed=2), spec(seed=3)]),
                       engine="batch")
            assert runner.executor._pool is pool

    def test_engine_pin_restores_the_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "reference")
        outcome = execute_job(spec(seed=0), engine="fast")
        assert isinstance(outcome, JobResult)
        assert os.environ[ENGINE_ENV] == "reference"
        monkeypatch.delenv(ENGINE_ENV)
        outcome = execute_job(spec(seed=0), engine="batch")
        assert isinstance(outcome, JobResult)
        assert ENGINE_ENV not in os.environ

    def test_without_cache_borrows_the_executor(self, tmp_path):
        runner = CampaignRunner(workers=2, cache=ResultCache(tmp_path / "c"))
        clone = runner.without_cache()
        assert clone.executor is runner.executor
        clone.close()                     # must NOT shut the shared executor
        outcome = runner.run(Campaign("alive", specs=[spec(seed=0)]))
        assert outcome.stats.failed == 0
        runner.close()


# ----------------------------------------------------------------------
# the service's distributed backend
# ----------------------------------------------------------------------
class TestServiceDistBackend:
    def test_api_job_drains_through_the_fleet(self, tmp_path):
        from repro.service.queue import JobQueue
        from repro.service.schemas import validate_request
        from repro.service.worker import EventBook, WorkerPool

        cache = ResultCache(tmp_path / "cache")
        executor = make_fleet(workers=1, cache=cache)
        try:
            queue = JobQueue(tmp_path / "service" / "jobs.jsonl")
            pool = WorkerPool(queue, EventBook(), cache=cache,
                              executor=executor)
            request = validate_request({"problems": ["vecadd"],
                                        "configs": ["2c2w4t"],
                                        "scale": "smoke", "lws": [4]})
            job = queue.submit(request, client="test")
            payload = pool._execute_sync(job)
            assert payload["stats"]["failed"] == 0
            served = payload["results"][0]["result"]
            # the fleet seeded the shared cache: a direct run is bit-for-bit
            direct = CampaignRunner(cache=cache).run(request.specs())
            assert direct.stats.cache_hits == 1
            assert served == direct.results[0].to_dict()
        finally:
            executor.close()
