"""Differential test layer: the ``fast`` engine against the reference oracle.

The fast engine (:mod:`repro.sim.fastcore` + the event-skipping loop in
:meth:`repro.sim.gpu.Gpu._run_fast`) promises **bit-identical** results to the
reference engine -- not statistically close, not within a tolerance:
identical.  This suite holds it to that across every library kernel:

* every workload x several machine shapes: identical cycles, identical
  output buffers (``np.array_equal``, so NaNs and signed zeros would fail),
  and every single :class:`~repro.sim.stats.PerfCounters` field;
* identical *issue traces*: the event-skipping loop may jump the clock, but
  it must never reorder or retime a single instruction issue;
* identical campaign content hashes: the engine is a presentation/performance
  concern, so a result cached under one engine must be served under the other.
"""

import dataclasses

import numpy as np
import pytest

from repro.campaign.spec import JobSpec
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.sim.engine import DEFAULT_ENGINE, ENGINES, EngineError, resolve_engine
from repro.trace.tracer import Tracer
from repro.workloads.problems import available_problems, make_problem

#: Machine shapes the differential grid runs on: the paper's Figure-1 machine,
#: a multi-core mid-size shape, and a wide-warp shape (16 lanes exercises
#: partial warps and divergent selections differently than 4 or 8).
CONFIG_NAMES = ("1c2w4t", "4c4w8t", "2c8w16t")

ALL_PROBLEMS = tuple(available_problems())


def run_problem(problem_name, config_name, engine, tracer=None, local_size=None):
    """One smoke-scale launch of ``problem_name`` under ``engine``."""
    problem = make_problem(problem_name, scale="smoke", seed=0)
    device = Device(ArchConfig.from_name(config_name), tracer=tracer, engine=engine)
    return launch_kernel(device, problem.kernel, problem.arguments,
                         problem.global_size, local_size=local_size)


# ----------------------------------------------------------------------
# the 9-kernel x 3-config grid
# ----------------------------------------------------------------------
def test_grid_covers_all_library_kernels():
    """The differential grid below runs every library workload (9 of them)."""
    assert len(ALL_PROBLEMS) == 9


@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("problem_name", ALL_PROBLEMS)
def test_engines_bit_identical(problem_name, config_name):
    reference = run_problem(problem_name, config_name, "reference")
    fast = run_problem(problem_name, config_name, "fast")

    assert fast.cycles == reference.cycles
    assert fast.sim_cycles == reference.sim_cycles
    assert fast.overhead_cycles == reference.overhead_cycles
    assert fast.call_cycles == reference.call_cycles
    assert fast.local_size == reference.local_size
    assert fast.num_calls == reference.num_calls

    ref_counters = reference.counters.as_dict()
    fast_counters = fast.counters.as_dict()
    for field, ref_value in ref_counters.items():
        assert fast_counters[field] == ref_value, (
            f"{problem_name}/{config_name}: counter {field!r} diverged "
            f"(reference={ref_value}, fast={fast_counters[field]})"
        )

    assert set(fast.outputs) == set(reference.outputs)
    for name, ref_array in reference.outputs.items():
        assert np.array_equal(fast.outputs[name], ref_array), (
            f"{problem_name}/{config_name}: output buffer {name!r} diverged"
        )


@pytest.mark.parametrize("problem_name", ["vecadd", "sgemm", "gaussian"])
def test_event_skipping_preserves_issue_order(problem_name):
    """The fast loop may jump the clock but must not reorder a single issue.

    Compared as full event tuples: cycle, core, warp, pc, opcode, mask and
    call index of every instruction issue, in issue order.
    """
    traces = {}
    for engine in ENGINES:
        tracer = Tracer(max_events=500_000)
        run_problem(problem_name, "4c4w8t", engine, tracer=tracer)
        assert not tracer.truncated
        traces[engine] = [dataclasses.astuple(event) for event in tracer.events]
    assert traces["fast"] == traces["reference"]


@pytest.mark.parametrize("local_size", [1, 3, 8, 64])
def test_engines_agree_on_forced_local_sizes(local_size):
    """Partial warps and many sequential calls (lws=1, lws=3) are covered too."""
    reference = run_problem("vecadd", "1c2w4t", "reference", local_size=local_size)
    fast = run_problem("vecadd", "1c2w4t", "fast", local_size=local_size)
    assert fast.cycles == reference.cycles
    assert fast.counters.as_dict() == reference.counters.as_dict()
    assert np.array_equal(fast.outputs["c"], reference.outputs["c"])


@pytest.mark.parametrize("problem_name", ["vecadd", "sgemm", "gaussian"])
def test_engines_agree_under_gto_scheduler(problem_name):
    """The non-round-robin issue path (priority order rebuilt per attempt)
    must be equivalent too, not just the pre-filtered rr rotation tables."""
    config = ArchConfig(cores=2, warps_per_core=4, threads_per_warp=8,
                        warp_scheduler="gto")
    problem = make_problem(problem_name, scale="smoke", seed=0)
    results = {}
    for engine in ENGINES:
        device = Device(config, engine=engine)
        results[engine] = launch_kernel(device, problem.kernel, problem.arguments,
                                        problem.global_size)
    reference, fast = results["reference"], results["fast"]
    assert fast.cycles == reference.cycles
    assert fast.counters.as_dict() == reference.counters.as_dict()
    for name, ref_array in reference.outputs.items():
        assert np.array_equal(fast.outputs[name], ref_array)


def test_integer_ops_keep_exact_python_semantics():
    """SHL/AND/F2I route through Python ints in BOTH engines: large shifts
    must not wrap to int64 and non-finite F2I inputs must raise, identically.

    Executed through the compiled fast-engine handlers directly (no library
    kernel reaches these ranges, which is exactly why they are pinned here).
    """
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import Opcode
    from repro.isa.registers import CsrFile
    from repro.sim.fastcore import _compile
    from repro.sim.warp import FastWarp

    config = ArchConfig(cores=1, warps_per_core=1, threads_per_warp=4)
    csr = CsrFile(num_threads=4, num_warps=1, num_cores=1)

    def fresh_warp():
        return FastWarp(warp_id=0, lane_count=4, num_registers=8, csr=csr)

    # SHL by 62: float(2 << 62) is exact; an int64 left shift would wrap
    # negative.  The reference engine computes float(int(a) << int(b)).
    warp = fresh_warp()
    warp.regs[0][:] = 2.0
    warp.regs[1][:] = 62.0
    shl = _compile(Instruction(opcode=Opcode.SHL, dst=2, srcs=(0, 1)), config)
    shl(None, warp, 0)
    assert warp.regs[2][0] == float(2 << 62) > 0

    # Negative shift counts raise (Python semantics), never silently zero.
    warp = fresh_warp()
    warp.regs[1][:] = -1.0
    with pytest.raises(ValueError):
        shl(None, warp, 0)

    # F2I of NaN raises exactly like the reference's int(float('nan')).
    warp = fresh_warp()
    warp.regs[0][:] = float("nan")
    f2i = _compile(Instruction(opcode=Opcode.F2I, dst=2, srcs=(0,)), config)
    with pytest.raises(ValueError):
        f2i(None, warp, 0)

    # Integer DIV of inf raises (math.trunc semantics) instead of silently
    # writing inf the way np.trunc would.
    warp = fresh_warp()
    warp.regs[0][:] = float("inf")
    warp.regs[1][:] = 2.0
    div = _compile(Instruction(opcode=Opcode.DIV, dst=2, srcs=(0, 1)), config)
    with pytest.raises(OverflowError):
        div(None, warp, 0)


def test_repeated_fast_launches_are_stable():
    """The fast engine's decode cache must not leak state across launches."""
    first = run_problem("saxpy", "4c4w8t", "fast")
    second = run_problem("saxpy", "4c4w8t", "fast")
    assert first.cycles == second.cycles
    assert first.counters.as_dict() == second.counters.as_dict()


# ----------------------------------------------------------------------
# engine selection plumbing
# ----------------------------------------------------------------------
def test_device_exposes_engine_name(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert Device(ArchConfig.from_name("1c2w4t")).engine == DEFAULT_ENGINE
    assert Device(ArchConfig.from_name("1c2w4t"), engine="fast").engine == "fast"
    # An explicit engine always beats the environment.
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    assert Device(ArchConfig.from_name("1c2w4t"), engine="reference").engine == "reference"


def test_unknown_engine_rejected():
    with pytest.raises(EngineError):
        Device(ArchConfig.from_name("1c2w4t"), engine="warp-drive")


def test_engine_environment_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    assert resolve_engine(None) == "fast"
    assert Device(ArchConfig.from_name("1c2w4t")).engine == "fast"
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    with pytest.raises(EngineError):
        resolve_engine(None)


# ----------------------------------------------------------------------
# campaign cache: the engine never enters the content hash
# ----------------------------------------------------------------------
def test_engine_absent_from_campaign_hash_payload():
    """Results are engine-independent, so the engine must not shard the cache."""
    spec = JobSpec(problem="vecadd", config=ArchConfig.from_name("4c4w8t"))
    payload = spec.hash_payload()
    flattened = str(payload)
    assert "engine" not in payload
    assert "engine" not in flattened
    for engine in ENGINES:
        assert engine not in flattened.replace("reproduce", "")


def test_campaign_hash_and_results_identical_across_engines(monkeypatch):
    """A worker running under either engine produces the same hash -> record."""
    from repro.campaign.worker import run_spec

    spec = JobSpec(problem="vecadd", config=ArchConfig.from_name("1c2w4t"),
                   scale="smoke", seed=0)
    records = {}
    for engine in ENGINES:
        monkeypatch.setenv("REPRO_ENGINE", engine)
        records[engine] = run_spec(spec)
    reference, fast = records["reference"], records["fast"]
    assert fast.job_hash == reference.job_hash
    assert fast.cycles == reference.cycles
    assert fast.counters == reference.counters
