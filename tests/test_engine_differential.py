"""Differential test layer: ``fast`` and ``batch`` against the reference oracle.

The accelerated engines (:mod:`repro.sim.fastcore` with the event-skipping
loop, and :mod:`repro.sim.batchcore` with cross-warp streaming on top of it)
promise **bit-identical** results to the reference engine -- not
statistically close, not within a tolerance: identical.  This suite holds
every engine in :data:`repro.sim.engine.ENGINES` to that across every
library kernel:

* every workload x several machine shapes x every engine: identical cycles,
  identical output buffers (``np.array_equal``, so NaNs and signed zeros
  would fail), and every single :class:`~repro.sim.stats.PerfCounters` field;
* identical *issue traces*: event skipping may jump the clock and batch
  streaming may commit whole uniform rounds at once, but neither may reorder
  or retime a single instruction issue;
* the divergence-stress fixtures (``tests/engine_fixtures.py``) run the same
  grid, hammering the batch engine's fallback transitions;
* identical campaign content hashes: the engine is a presentation/performance
  concern, so a result cached under one engine must be served under the other.

Random-program coverage on top of this fixed grid lives in
``tests/test_engine_fuzz.py``.
"""

import dataclasses

import numpy as np
import pytest

from engine_fixtures import (assert_engines_identical, make_branch_storm_kernel,
                             make_strided_gather_kernel, run_engines,
                             stress_arguments)
from repro.campaign.spec import JobSpec
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.sim.engine import DEFAULT_ENGINE, ENGINES, EngineError, resolve_engine
from repro.trace.tracer import Tracer
from repro.workloads.problems import available_problems, make_problem

#: Machine shapes the differential grid runs on: the paper's Figure-1 machine,
#: a multi-core mid-size shape, and a wide-warp shape (16 lanes exercises
#: partial warps and divergent selections differently than 4 or 8).
CONFIG_NAMES = ("1c2w4t", "4c4w8t", "2c8w16t")

ALL_PROBLEMS = tuple(available_problems())


def run_problem(problem_name, config_name, engine, tracer=None, local_size=None):
    """One smoke-scale launch of ``problem_name`` under ``engine``."""
    problem = make_problem(problem_name, scale="smoke", seed=0)
    device = Device(ArchConfig.from_name(config_name), tracer=tracer, engine=engine)
    return launch_kernel(device, problem.kernel, problem.arguments,
                         problem.global_size, local_size=local_size)


# ----------------------------------------------------------------------
# the 9-kernel x 3-config grid
# ----------------------------------------------------------------------
def test_grid_covers_all_library_kernels():
    """The differential grid below runs every library workload (9 of them)."""
    assert len(ALL_PROBLEMS) == 9


@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("problem_name", ALL_PROBLEMS)
def test_engines_bit_identical(problem_name, config_name):
    """The full 9-kernel x 3-shape x 3-engine matrix."""
    results = {engine: run_problem(problem_name, config_name, engine)
               for engine in ENGINES}
    reference = results["reference"]
    ref_counters = reference.counters.as_dict()
    for engine in ENGINES:
        if engine == "reference":
            continue
        result = results[engine]
        assert result.cycles == reference.cycles
        assert result.sim_cycles == reference.sim_cycles
        assert result.overhead_cycles == reference.overhead_cycles
        assert result.call_cycles == reference.call_cycles
        assert result.local_size == reference.local_size
        assert result.num_calls == reference.num_calls

        counters = result.counters.as_dict()
        for field, ref_value in ref_counters.items():
            assert counters[field] == ref_value, (
                f"{problem_name}/{config_name}: counter {field!r} diverged "
                f"(reference={ref_value}, {engine}={counters[field]})"
            )

        assert set(result.outputs) == set(reference.outputs)
        for name, ref_array in reference.outputs.items():
            assert np.array_equal(result.outputs[name], ref_array), (
                f"{problem_name}/{config_name}: output buffer {name!r} "
                f"diverged under {engine}"
            )


@pytest.mark.parametrize("problem_name", ["vecadd", "sgemm", "gaussian"])
def test_event_skipping_preserves_issue_order(problem_name):
    """Neither the fast loop's clock jumps nor the batch engine's streamed
    rounds may reorder a single issue.

    Compared as full event tuples: cycle, core, warp, pc, opcode, mask and
    call index of every instruction issue, in issue order.
    """
    traces = {}
    for engine in ENGINES:
        tracer = Tracer(max_events=500_000)
        run_problem(problem_name, "4c4w8t", engine, tracer=tracer)
        assert not tracer.truncated
        traces[engine] = [dataclasses.astuple(event) for event in tracer.events]
    for engine in ENGINES:
        assert traces[engine] == traces["reference"], (
            f"{problem_name}: {engine} issue trace diverged")


@pytest.mark.parametrize("local_size", [1, 3, 8, 64])
def test_engines_agree_on_forced_local_sizes(local_size):
    """Partial warps and many sequential calls (lws=1, lws=3) are covered too."""
    results = {engine: run_problem("vecadd", "1c2w4t", engine,
                                   local_size=local_size)
               for engine in ENGINES}
    reference = results["reference"]
    for engine in ENGINES:
        result = results[engine]
        assert result.cycles == reference.cycles, engine
        assert result.counters.as_dict() == reference.counters.as_dict(), engine
        assert np.array_equal(result.outputs["c"], reference.outputs["c"]), engine


@pytest.mark.parametrize("problem_name", ["vecadd", "sgemm", "gaussian"])
def test_engines_agree_under_gto_scheduler(problem_name):
    """The non-round-robin issue path (priority order rebuilt per attempt)
    must be equivalent too, not just the pre-filtered rr rotation tables."""
    config = ArchConfig(cores=2, warps_per_core=4, threads_per_warp=8,
                        warp_scheduler="gto")
    problem = make_problem(problem_name, scale="smoke", seed=0)
    results = {}
    for engine in ENGINES:
        device = Device(config, engine=engine)
        results[engine] = launch_kernel(device, problem.kernel, problem.arguments,
                                        problem.global_size)
    reference = results["reference"]
    for engine in ENGINES:
        result = results[engine]
        assert result.cycles == reference.cycles, engine
        assert result.counters.as_dict() == reference.counters.as_dict(), engine
        for name, ref_array in reference.outputs.items():
            assert np.array_equal(result.outputs[name], ref_array), engine


def test_integer_ops_keep_exact_python_semantics():
    """SHL/AND/F2I route through Python ints in BOTH engines: large shifts
    must not wrap to int64 and non-finite F2I inputs must raise, identically.

    Executed through the compiled fast-engine handlers directly (no library
    kernel reaches these ranges, which is exactly why they are pinned here).
    """
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import Opcode
    from repro.isa.registers import CsrFile
    from repro.sim.fastcore import _compile
    from repro.sim.warp import FastWarp

    config = ArchConfig(cores=1, warps_per_core=1, threads_per_warp=4)
    csr = CsrFile(num_threads=4, num_warps=1, num_cores=1)

    def fresh_warp():
        return FastWarp(warp_id=0, lane_count=4, num_registers=8, csr=csr)

    # SHL by 62: float(2 << 62) is exact; an int64 left shift would wrap
    # negative.  The reference engine computes float(int(a) << int(b)).
    warp = fresh_warp()
    warp.regs[0][:] = 2.0
    warp.regs[1][:] = 62.0
    shl = _compile(Instruction(opcode=Opcode.SHL, dst=2, srcs=(0, 1)), config)
    shl(None, warp, 0)
    assert warp.regs[2][0] == float(2 << 62) > 0

    # Negative shift counts raise (Python semantics), never silently zero.
    warp = fresh_warp()
    warp.regs[1][:] = -1.0
    with pytest.raises(ValueError):
        shl(None, warp, 0)

    # F2I of NaN raises exactly like the reference's int(float('nan')).
    warp = fresh_warp()
    warp.regs[0][:] = float("nan")
    f2i = _compile(Instruction(opcode=Opcode.F2I, dst=2, srcs=(0,)), config)
    with pytest.raises(ValueError):
        f2i(None, warp, 0)

    # Integer DIV of inf raises (math.trunc semantics) instead of silently
    # writing inf the way np.trunc would.
    warp = fresh_warp()
    warp.regs[0][:] = float("inf")
    warp.regs[1][:] = 2.0
    div = _compile(Instruction(opcode=Opcode.DIV, dst=2, srcs=(0, 1)), config)
    with pytest.raises(OverflowError):
        div(None, warp, 0)


@pytest.mark.parametrize("engine", ["fast", "batch"])
def test_repeated_launches_are_stable(engine):
    """Neither the fast decode cache nor the batch compile cache may leak
    state across launches."""
    first = run_problem("saxpy", "4c4w8t", engine)
    second = run_problem("saxpy", "4c4w8t", engine)
    assert first.cycles == second.cycles
    assert first.counters.as_dict() == second.counters.as_dict()


# ----------------------------------------------------------------------
# divergence-stress fixtures (unregistered kernels, see engine_fixtures)
# ----------------------------------------------------------------------
_STRESS_SIZE = 64


@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("make_kernel", [
    make_branch_storm_kernel,
    lambda: make_strided_gather_kernel(_STRESS_SIZE),
], ids=["branch_storm", "strided_gather"])
def test_divergence_stress_fixtures_bit_identical(make_kernel, config_name):
    """Irregular branching and strided gathers keep warps off uniform PCs,
    forcing the batch engine through its stream/fallback transitions."""
    kernel = make_kernel()
    results = run_engines(kernel, stress_arguments(_STRESS_SIZE),
                          ArchConfig.from_name(config_name), _STRESS_SIZE)
    assert_engines_identical(results, f"{kernel.name}/{config_name}")


@pytest.mark.parametrize("local_size", [1, 3, 7])
def test_divergence_stress_fixtures_forced_lws(local_size):
    """Stress fixtures under forced tiny lws: partial warps on top of
    divergence, across many sequential kernel calls."""
    kernel = make_branch_storm_kernel()
    results = run_engines(kernel, stress_arguments(_STRESS_SIZE),
                          ArchConfig.from_name("1c2w4t"), _STRESS_SIZE,
                          local_size=local_size)
    assert_engines_identical(results, f"{kernel.name}/lws={local_size}")


# ----------------------------------------------------------------------
# engine selection plumbing
# ----------------------------------------------------------------------
def test_device_exposes_engine_name(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert Device(ArchConfig.from_name("1c2w4t")).engine == DEFAULT_ENGINE
    assert Device(ArchConfig.from_name("1c2w4t"), engine="fast").engine == "fast"
    # An explicit engine always beats the environment.
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    assert Device(ArchConfig.from_name("1c2w4t"), engine="reference").engine == "reference"


def test_unknown_engine_rejected():
    with pytest.raises(EngineError):
        Device(ArchConfig.from_name("1c2w4t"), engine="warp-drive")


def test_engine_environment_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    assert resolve_engine(None) == "fast"
    assert Device(ArchConfig.from_name("1c2w4t")).engine == "fast"
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    with pytest.raises(EngineError):
        resolve_engine(None)


# ----------------------------------------------------------------------
# campaign cache: the engine never enters the content hash
# ----------------------------------------------------------------------
def test_engine_absent_from_campaign_hash_payload():
    """Results are engine-independent, so the engine must not shard the cache."""
    spec = JobSpec(problem="vecadd", config=ArchConfig.from_name("4c4w8t"))
    payload = spec.hash_payload()
    flattened = str(payload)
    assert "engine" not in payload
    assert "engine" not in flattened
    for engine in ENGINES:
        assert engine not in flattened.replace("reproduce", "")


def test_campaign_hash_and_results_identical_across_engines(monkeypatch):
    """A worker running under either engine produces the same hash -> record."""
    from repro.campaign.worker import run_spec

    spec = JobSpec(problem="vecadd", config=ArchConfig.from_name("1c2w4t"),
                   scale="smoke", seed=0)
    records = {}
    for engine in ENGINES:
        monkeypatch.setenv("REPRO_ENGINE", engine)
        records[engine] = run_spec(spec)
    reference = records["reference"]
    for engine in ENGINES:
        record = records[engine]
        assert record.job_hash == reference.job_hash, engine
        assert record.cycles == reference.cycles, engine
        assert record.counters == reference.counters, engine
