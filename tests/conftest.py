"""Shared fixtures for the test suite.

Simulation-backed tests always use ``smoke``-scale problems and small machine
configurations so the whole suite stays fast; the benchmark harness (not the
tests) exercises the larger scales.
"""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.sim.config import ArchConfig
from repro.runtime.device import Device
from repro.workloads.problems import make_problem

# Simulation-backed hypothesis tests routinely blow the default 200ms
# per-example deadline on slow CI runners (the first example of a process
# pays numpy warm-up, and a launch at an unlucky random geometry is legal
# but slow).  Deadline flakiness is not a property violation, so the whole
# suite runs under a no-deadline profile; shrinking and verbosity behave
# exactly as before.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the tests/golden/*.json performance-counter "
             "snapshots instead of comparing against them (commit the "
             "resulting diff together with the simulator change that "
             "moved the counters)",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should rewrite the golden fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def tiny_config() -> ArchConfig:
    """The paper's Figure-1 machine: 1 core, 2 warps, 4 threads."""
    return ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)


@pytest.fixture
def small_config() -> ArchConfig:
    """A slightly larger machine exercising multiple cores."""
    return ArchConfig(cores=2, warps_per_core=4, threads_per_warp=4)


@pytest.fixture
def tiny_device(tiny_config) -> Device:
    """Device wrapping :func:`tiny_config`."""
    return Device(tiny_config)


@pytest.fixture
def small_device(small_config) -> Device:
    """Device wrapping :func:`small_config`."""
    return Device(small_config)


@pytest.fixture
def vecadd_problem():
    """The vecadd workload at smoke scale (64 elements)."""
    return make_problem("vecadd", scale="smoke")


@pytest.fixture
def sgemm_problem():
    """The sgemm workload at smoke scale."""
    return make_problem("sgemm", scale="smoke")
