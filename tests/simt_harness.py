"""Small execution harness shared by DSL and core tests.

Runs a linked program on one warp of a single simulated core and exposes the
final per-lane register file, the device memory and the cycle count, so tests
can assert on the functional results of hand-built programs without going
through the full runtime layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.isa.program import Program
from repro.isa.registers import CsrFile
from repro.sim.config import ArchConfig
from repro.sim.core import SimtCore, SimulationError
from repro.sim.memory.hierarchy import MemoryHierarchy
from repro.sim.memory.mainmem import MainMemory
from repro.sim.stats import PerfCounters
from repro.sim.warp import Warp


def make_csr(lanes: int, config: ArchConfig, args: Optional[Dict[int, float]] = None,
             workgroup_ids: Optional[Sequence[float]] = None,
             local_counts: Optional[Sequence[float]] = None,
             local_size: int = 1, global_size: int = 1) -> CsrFile:
    """A CSR file for one warp with sensible defaults."""
    return CsrFile(
        num_threads=config.threads_per_warp,
        num_warps=config.warps_per_core,
        num_cores=config.cores,
        warp_id=0,
        core_id=0,
        workgroup_ids=list(workgroup_ids or [float(i) for i in range(lanes)]),
        local_counts=list(local_counts or [1.0] * lanes),
        local_size=local_size,
        global_size=global_size,
        num_groups=max(1, global_size // max(1, local_size)),
        call_index=0,
        args=dict(args or {}),
    )


class ProgramRun:
    """Result of executing a program on the harness."""

    def __init__(self, memory: MainMemory, cycles: int, warp: Warp, counters: PerfCounters):
        self.memory = memory
        self.cycles = cycles
        self.warp = warp
        self.regs = warp.regs          # regs[lane][register]
        self.counters = counters

    def reg(self, register: int, lane: int = 0) -> float:
        """Value of ``register`` in ``lane`` after the run."""
        return self.regs[lane][register]

    def lane_values(self, register: int) -> List[float]:
        """Value of ``register`` across all lanes."""
        return [lane_regs[register] for lane_regs in self.regs]

    def mem(self, address: int) -> float:
        """Word at ``address`` in device memory after the run."""
        return self.memory.read(address)


def run_program(program: Program, lanes: int = 4, config: Optional[ArchConfig] = None,
                memory: Optional[Dict[int, float]] = None,
                args: Optional[Dict[int, float]] = None,
                csr: Optional[CsrFile] = None,
                tracer=None,
                max_cycles: int = 200_000) -> ProgramRun:
    """Execute ``program`` on one warp with ``lanes`` active lanes and return the state."""
    config = config or ArchConfig(cores=1, warps_per_core=2, threads_per_warp=max(lanes, 2))
    mainmem = MainMemory(1 << 16)
    if memory:
        for address, value in memory.items():
            mainmem.write(address, value)
    hierarchy = MemoryHierarchy(config)
    counters = PerfCounters()
    core = SimtCore(0, config, program, hierarchy, mainmem, counters, tracer=tracer)
    warp = Warp(0, config.threads_per_warp, program.num_registers,
                csr or make_csr(lanes, config, args=args), active_lanes=lanes)
    core.add_warp(warp)

    cycle = 0
    while core.busy:
        if cycle > max_cycles:
            raise SimulationError(f"harness exceeded {max_cycles} cycles")
        core.try_issue(cycle)
        cycle += 1
    counters.cycles = cycle
    return ProgramRun(mainmem, cycle, warp, counters)
