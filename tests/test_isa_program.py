"""Tests for program linking and validation (repro.isa.program)."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, ProgramError


def _simple_instructions():
    return [
        Instruction(Opcode.LI, dst=0, imm=1, section="init"),
        Instruction(Opcode.LI, dst=1, imm=2, section="init"),
        Instruction(Opcode.ADD, dst=2, srcs=(0, 1), section="body"),
        Instruction(Opcode.HALT, section="exit"),
    ]


def test_link_simple_program():
    program = Program.link("simple", _simple_instructions(), labels={}, num_registers=3)
    assert len(program) == 4
    assert program[2].opcode is Opcode.ADD
    assert program.num_registers == 3


def test_link_resolves_labels_to_pcs():
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=0),
        Instruction(Opcode.JMP, target="end"),
        Instruction(Opcode.LI, dst=0, imm=99),
        Instruction(Opcode.HALT),
    ]
    program = Program.link("jump", instructions, labels={"end": 3}, num_registers=1)
    assert program[1].target == 3


def test_unknown_label_raises():
    instructions = [Instruction(Opcode.JMP, target="nowhere"), Instruction(Opcode.HALT)]
    with pytest.raises(ProgramError, match="unknown label"):
        Program.link("bad", instructions, labels={}, num_registers=0)


def test_empty_program_raises():
    with pytest.raises(ProgramError, match="empty"):
        Program.link("empty", [], labels={}, num_registers=0)


def test_program_without_halt_raises():
    instructions = [Instruction(Opcode.LI, dst=0, imm=1)]
    with pytest.raises(ProgramError, match="HALT"):
        Program.link("nohalt", instructions, labels={}, num_registers=1)


def test_register_out_of_range_raises():
    instructions = [Instruction(Opcode.ADD, dst=9, srcs=(0, 1)), Instruction(Opcode.HALT)]
    with pytest.raises(ProgramError, match="out of range"):
        Program.link("regs", instructions, labels={}, num_registers=2)


def test_branch_target_out_of_range_raises():
    instructions = [Instruction(Opcode.JMP, target=17), Instruction(Opcode.HALT)]
    with pytest.raises(ProgramError, match="target"):
        Program.link("far", instructions, labels={}, num_registers=0)


def test_split_requires_both_targets():
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=1),
        Instruction(Opcode.SPLIT, srcs=(0,), target=2),
        Instruction(Opcode.HALT),
    ]
    with pytest.raises(ProgramError, match="SPLIT"):
        Program.link("split", instructions, labels={}, num_registers=1)


def test_section_ranges_are_contiguous():
    program = Program.link("sections", _simple_instructions(), labels={}, num_registers=3)
    ranges = program.section_ranges()
    assert ranges["init"] == [(0, 2)]
    assert ranges["body"] == [(2, 3)]
    assert ranges["exit"] == [(3, 4)]


def test_sections_property_matches_instructions():
    program = Program.link("sections", _simple_instructions(), labels={}, num_registers=3)
    assert program.sections == ("init", "init", "body", "exit")


def test_count_by_opcode():
    program = Program.link("counts", _simple_instructions(), labels={}, num_registers=3)
    counts = program.count_by_opcode()
    assert counts[Opcode.LI] == 2
    assert counts[Opcode.ADD] == 1
    assert counts[Opcode.HALT] == 1


def test_disassemble_lists_every_instruction_and_labels():
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=0),
        Instruction(Opcode.JMP, target="end"),
        Instruction(Opcode.HALT),
    ]
    program = Program.link("disasm", instructions, labels={"end": 2}, num_registers=1)
    text = program.disassemble()
    assert "end:" in text
    assert text.count("\n") >= 3
    assert "jmp" in text


def test_program_iteration_and_indexing():
    program = Program.link("iter", _simple_instructions(), labels={}, num_registers=3)
    opcodes = [instr.opcode for instr in program]
    assert opcodes[-1] is Opcode.HALT
    assert program[0].opcode is Opcode.LI
