"""Tests for the exhaustive-search oracle (repro.core.autotuner)."""

import pytest

from repro.core.autotuner import (
    ExhaustiveSearchResult,
    candidate_set,
    default_candidates,
    exhaustive_search,
)
from repro.core.optimizer import optimal_local_size
from repro.runtime.device import Device
from repro.sim.config import ArchConfig
from repro.workloads.problems import make_problem

CONFIG = ArchConfig(cores=2, warps_per_core=2, threads_per_warp=4)   # hp = 16


def test_default_candidates_cover_extremes_and_eq1():
    candidates = default_candidates(128, CONFIG)
    assert 1 in candidates
    assert 128 in candidates
    assert optimal_local_size(128, CONFIG) in candidates
    assert candidates == sorted(candidates)
    assert all(1 <= c <= 128 for c in candidates)


def test_default_candidates_respect_the_cap():
    candidates = default_candidates(1 << 20, CONFIG, max_candidates=10)
    assert len(candidates) <= 12          # cap plus the guaranteed Eq.-1 value
    assert optimal_local_size(1 << 20, CONFIG) in candidates


def test_candidate_set_is_explicit_about_truncation():
    full = candidate_set(128, CONFIG)
    assert not full.truncated
    assert full.dropped == ()

    capped = candidate_set(1 << 20, CONFIG, max_candidates=10)
    assert capped.truncated
    assert capped.dropped                      # names exactly what was skipped
    assert optimal_local_size(1 << 20, CONFIG) in capped.candidates
    # nothing is silently lost: candidates + dropped == the uncapped set
    uncapped = candidate_set(1 << 20, CONFIG, max_candidates=10_000)
    assert sorted(capped.candidates + capped.dropped) == list(uncapped.candidates)


def test_exhaustive_search_records_truncation_state():
    problem = make_problem("vecadd", scale="smoke")
    device = Device(CONFIG)
    result = exhaustive_search(device, problem.kernel, problem.arguments,
                               problem.global_size)
    assert not result.truncated                # 64 elements fit under the cap
    assert result.dropped_candidates == ()
    assert result.search_coverage == 1.0

    explicit = exhaustive_search(device, problem.kernel, problem.arguments,
                                 problem.global_size, candidates=[1, 64])
    assert not explicit.truncated              # caller-chosen sets are exact


def test_search_coverage_reflects_dropped_candidates():
    result = ExhaustiveSearchResult(
        config_name="2c2w4t", global_size=1 << 20,
        cycles_by_lws={1: 100, 64: 50}, best_local_size=64, best_cycles=50,
        eq1_local_size=64, eq1_cycles=50,
        truncated=True, dropped_candidates=(2, 4, 8, 16, 32, 128))
    assert result.truncated
    assert result.search_coverage == pytest.approx(2 / 8)


def test_exhaustive_search_finds_eq1_competitive(vecadd_problem=None):
    problem = make_problem("vecadd", scale="smoke")
    device = Device(CONFIG)
    result = exhaustive_search(device, problem.kernel, problem.arguments,
                               problem.global_size, candidates=[1, 2, 4, 8, 16, 32, 64])
    assert result.eq1_local_size == optimal_local_size(problem.global_size, CONFIG)
    assert result.best_cycles <= result.eq1_cycles
    # The paper's point: Eq. 1 is within a small factor of the oracle.
    assert result.eq1_gap <= 1.25
    assert result.cycles_by_lws[1] >= result.best_cycles
    ranked = result.ranked()
    assert ranked[0][1] == result.best_cycles
    assert ranked[-1][1] == max(result.cycles_by_lws.values())


def test_exhaustive_search_always_includes_eq1_value():
    problem = make_problem("relu", scale="smoke")
    device = Device(CONFIG)
    result = exhaustive_search(device, problem.kernel, problem.arguments,
                               problem.global_size, candidates=[1, 64])
    assert optimal_local_size(problem.global_size, CONFIG) in result.cycles_by_lws
