"""Random-program fuzzing across all three engines.

Every generated program is launched under ``reference``, ``fast`` and
``batch`` on the same machine shape and must produce bit-identical cycles,
every PerfCounters field and every output buffer (see
``tests/engine_fixtures.py`` for the generator and the oracle).

Three layers:

* a hypothesis sweep drawing specs at random (a quick always-on pass plus a
  ``slow``-marked deep pass; together they clear well over 200 distinct
  programs per run);
* a fixed corpus of 20 specs under ``tests/fuzz_corpus/`` replayed
  deterministically -- these are the CI smoke set and regression anchors
  (a spec that ever found a divergence gets frozen here);
* generator self-checks (same spec => same instruction stream) so corpus
  replays actually pin the program, not just the seed.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from engine_fixtures import make_fuzz_kernel, run_fuzz_case

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CORPUS_FILES = tuple(sorted(CORPUS_DIR.glob("*.json")))

#: The spec space: small machines and launches keep the reference engine
#: (the slow oracle) affordable while still covering multi-core dispatch,
#: partial warps, forced tiny lws (many sequential calls) and both warp
#: schedulers.
spec_strategy = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "cores": st.integers(min_value=1, max_value=2),
    "warps": st.integers(min_value=1, max_value=4),
    "threads": st.sampled_from([2, 4, 8]),
    "gws": st.integers(min_value=4, max_value=64),
    "lws": st.sampled_from([None, 1, 2, 3, 5]),
    "scheduler": st.sampled_from(["rr", "gto"]),
    "depth": st.integers(min_value=2, max_value=8),
})


# ----------------------------------------------------------------------
# hypothesis sweeps
# ----------------------------------------------------------------------
@settings(max_examples=60)
@given(spec=spec_strategy)
def test_fuzzed_programs_bit_identical(spec):
    """Always-on sweep: 60 random programs through all three engines."""
    run_fuzz_case(spec)


@pytest.mark.slow
@settings(max_examples=200)
@given(spec=spec_strategy)
def test_fuzzed_programs_bit_identical_deep(spec):
    """Deep sweep (>=200 programs); deselect with ``-m "not slow"``."""
    run_fuzz_case(spec)


# ----------------------------------------------------------------------
# deterministic corpus replay (the CI smoke set)
# ----------------------------------------------------------------------
def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 20, (
        "tests/fuzz_corpus/ must hold at least 20 frozen specs"
    )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_case_bit_identical(path):
    spec = json.loads(path.read_text())
    run_fuzz_case(spec)


# ----------------------------------------------------------------------
# generator determinism: the corpus pins programs, not just seeds
# ----------------------------------------------------------------------
def test_same_spec_builds_identical_program():
    spec = {"seed": 1234, "cores": 1, "warps": 2, "threads": 4,
            "gws": 32, "lws": None, "scheduler": "rr", "depth": 8}
    from repro.kernels.wrapper import build_workgroup_program

    first = build_workgroup_program(make_fuzz_kernel(spec))
    second = build_workgroup_program(make_fuzz_kernel(spec))
    assert len(first.instructions) == len(second.instructions)
    for a, b in zip(first.instructions, second.instructions):
        assert (a.opcode, a.dst, a.srcs, a.imm, a.target, a.target2) == \
               (b.opcode, b.dst, b.srcs, b.imm, b.target, b.target2)


def test_different_seeds_build_different_programs():
    base = {"cores": 1, "warps": 2, "threads": 4, "gws": 32,
            "lws": None, "scheduler": "rr", "depth": 8}
    from repro.kernels.wrapper import build_workgroup_program

    programs = {}
    for seed in (1, 2, 3, 4):
        program = build_workgroup_program(make_fuzz_kernel({**base, "seed": seed}))
        signature = tuple((i.opcode, i.dst, i.srcs, i.imm)
                          for i in program.instructions)
        programs[seed] = signature
    # Not all four random programs should collapse to one shape.
    assert len(set(programs.values())) > 1
