"""Tests for the workgroup wrapper (repro.kernels.wrapper).

The wrapper is the POCL-style loop around the per-work-item body: its
structure (sections, CSR reads, loop) is what the lws parameter acts on.
"""

import pytest

from repro.isa.opcodes import Opcode
from repro.isa.registers import Csr
from repro.kernels.library import VECADD
from repro.kernels.wrapper import (
    SECTION_BODY,
    SECTION_EXIT,
    SECTION_INIT,
    SECTION_LOOP,
    build_workgroup_program,
    clear_wrapper_cache,
)
from repro.sim.config import ArchConfig

from tests.simt_harness import make_csr, run_program


def setup_function(_fn):
    clear_wrapper_cache()


def test_wrapper_contains_all_standard_sections():
    program = build_workgroup_program(VECADD, use_cache=False)
    sections = set(program.sections)
    for expected in (SECTION_INIT, SECTION_LOOP, SECTION_EXIT):
        assert expected in sections
    # the kernel body introduces its own tags (load/compute/store for vecadd)
    assert {"load", "compute", "store"} <= sections


def test_wrapper_reads_workgroup_csrs_in_init():
    program = build_workgroup_program(VECADD, use_cache=False)
    init_csrs = {int(i.imm) for i in program if i.opcode is Opcode.CSRR
                 and i.section == SECTION_INIT}
    assert int(Csr.WORKGROUP_ID) in init_csrs
    assert int(Csr.LOCAL_COUNT) in init_csrs
    assert int(Csr.LOCAL_SIZE) in init_csrs


def test_wrapper_has_loop_and_halt():
    program = build_workgroup_program(VECADD, use_cache=False)
    opcodes = [i.opcode for i in program]
    assert Opcode.LOOP_BEGIN in opcodes
    assert Opcode.LOOP_END in opcodes
    assert Opcode.HALT in opcodes


def test_wrapper_is_cached_per_kernel():
    first = build_workgroup_program(VECADD)
    second = build_workgroup_program(VECADD)
    assert first is second
    clear_wrapper_cache()
    third = build_workgroup_program(VECADD)
    assert third is not first


def test_wrapper_metadata_names_the_kernel():
    program = build_workgroup_program(VECADD, use_cache=False)
    assert program.metadata["kernel"] == "vecadd"


def test_wrapper_executes_the_whole_workgroup_per_lane():
    """Each lane must iterate over its assigned workgroup (lws items)."""
    program = build_workgroup_program(VECADD, use_cache=False)
    config = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)
    lws, lanes = 3, 4
    # buffers: a at 0, b at 100, c at 200; arguments via CSR slots 0..2
    memory = {}
    for i in range(lws * lanes):
        memory[0 + i] = float(i)
        memory[100 + i] = 10.0 * i
    csr = make_csr(
        lanes, config, args={0: 0.0, 1: 100.0, 2: 200.0},
        workgroup_ids=[0.0, 1.0, 2.0, 3.0],
        local_counts=[lws] * lanes,
        local_size=lws, global_size=lws * lanes,
    )
    run = run_program(program, lanes=lanes, config=config, memory=memory, csr=csr)
    for i in range(lws * lanes):
        assert run.mem(200 + i) == pytest.approx(11.0 * i)


def test_wrapper_respects_per_lane_local_counts():
    """A partial workgroup (smaller local count) must not write extra elements."""
    program = build_workgroup_program(VECADD, use_cache=False)
    config = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)
    lws = 4
    memory = {i: 1.0 for i in range(32)}
    memory.update({100 + i: 2.0 for i in range(32)})
    csr = make_csr(
        2, config, args={0: 0.0, 1: 100.0, 2: 200.0},
        workgroup_ids=[0.0, 1.0],
        local_counts=[4.0, 2.0],             # second group is partial
        local_size=lws, global_size=6,
    )
    run = run_program(program, lanes=2, config=config, memory=memory, csr=csr)
    for i in range(6):
        assert run.mem(200 + i) == pytest.approx(3.0)
    # elements beyond the partial group were never written
    assert run.mem(206) == 0.0
    assert run.mem(207) == 0.0
