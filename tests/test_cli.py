"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_lists_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("info", "run", "figure1", "sweep", "report", "campaign",
                    "scenario"):
        assert command in text


def test_grid_flags_are_shared_across_sweep_campaign_and_scenario(capsys):
    """One parent parser feeds sweep, campaign run and scenario run."""
    for argv in (["sweep", "--help"],
                 ["campaign", "run", "--help"],
                 ["scenario", "run", "--help"]):
        with pytest.raises(SystemExit):
            main(argv)
        text = capsys.readouterr().out
        for flag in ("--kernels", "--sweep", "--scale", "--seed", "--exact-calls"):
            assert flag in text, f"{flag} missing from {' '.join(argv)}"


def test_missing_subcommand_exits_with_error():
    with pytest.raises(SystemExit):
        main([])


def test_info_command_reports_machine_and_eq1(capsys):
    assert main(["info", "--config", "4c8w8t", "--gws", "4096"]) == 0
    out = capsys.readouterr().out
    assert "4c8w8t" in out
    assert "hp = 256" in out
    assert "lws = ceil(4096 / 256) = 16" in out


def test_info_without_gws_only_describes_the_machine(capsys):
    assert main(["info", "--config", "1c2w4t"]) == 0
    out = capsys.readouterr().out
    assert "1c2w4t" in out
    assert "Eq. 1" not in out


def test_run_command_executes_a_problem(capsys):
    assert main(["run", "vecadd", "--config", "2c2w4t", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "vecadd" in out
    assert "lane utilisation" in out
    assert "cycles" in out


def test_run_command_with_explicit_lws_trace_and_advice(capsys):
    assert main(["run", "relu", "--config", "1c2w4t", "--scale", "smoke",
                 "--lws", "1", "--trace", "--advise"]) == 0
    out = capsys.readouterr().out
    assert "lws=1" in out
    assert "core 0 warp 0" in out                 # trace timeline
    assert "Tuning report" in out                 # advisor output
    assert "recommended lws" in out


def test_run_command_rejects_unknown_problem():
    with pytest.raises(SystemExit):
        main(["run", "not_a_kernel"])


def test_figure1_command(capsys):
    assert main(["figure1", "--length", "64", "--lws", "1", "8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1 reproduction" in out
    assert "lws=" in out


def test_sweep_and_report_round_trip(tmp_path, capsys):
    output = tmp_path / "sweep.json"
    assert main(["sweep", "--kernels", "vecadd", "--sweep", "smoke", "--scale", "smoke",
                 "-o", str(output)]) == 0
    first = capsys.readouterr().out
    assert "lws=1/ours avg" in first
    assert output.exists()
    rows = json.loads(output.read_text())
    assert rows and rows[0]["problem"] == "vecadd"

    assert main(["report", str(output), "--claims"]) == 0
    second = capsys.readouterr().out
    assert "lws=1/ours avg" in second
    assert "C4" in second


def test_campaign_run_status_and_clear_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    base = ["campaign", "run", "--kernels", "vecadd", "--sweep", "smoke",
            "--scale", "smoke", "--cache-dir", cache_dir]
    assert main(base + ["--workers", "2", "--claims"]) == 0
    cold = capsys.readouterr()
    assert "lws=1/ours avg" in cold.out
    assert "C1" in cold.out
    assert "0 hit(s)" in cold.err         # stats are diagnostics -> stderr

    # second run: fully cache-served, zero misses
    assert main(base) == 0
    warm = capsys.readouterr()
    assert "0 miss(es)" in warm.err

    assert main(["campaign", "status", "--cache-dir", cache_dir]) == 0
    status = capsys.readouterr().out
    assert "usable entries" in status
    assert cache_dir in status

    assert main(["campaign", "clear-cache", "--cache-dir", cache_dir]) == 0
    assert "cleared" in capsys.readouterr().out
    assert main(["campaign", "status", "--cache-dir", cache_dir]) == 0
    assert "usable entries  : 0" in capsys.readouterr().out


def test_scenario_list_shows_all_registered_scenarios(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("figure1", "figure2", "ablation", "claims", "scaling",
                 "scheduler-sweep", "engine-compare", "cache-sensitivity"):
        assert name in out
    import re
    count = int(re.search(r"(\d+) scenario\(s\) registered", out).group(1))
    assert count >= 8


def test_scenario_run_resume_report_cycle(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "sinks"))
    cache_dir = str(tmp_path / "cache")
    base = ["scenario", "run", "scaling", "--scale", "smoke",
            "--cache-dir", cache_dir]

    assert main(base) == 0
    first = capsys.readouterr()
    assert "6 unique job(s): 0 resumed from sink, 6 executed" in first.err
    assert "scaling-smoke.jsonl" in first.err
    assert "| cores |" in first.out       # the report itself stays on stdout

    assert main(["scenario", "resume", "scaling", "--scale", "smoke",
                 "--cache-dir", cache_dir]) == 0
    resumed = capsys.readouterr().err
    assert "6 resumed from sink, 0 executed" in resumed

    assert main(["scenario", "report", "scaling", "--scale", "smoke"]) == 0
    report = capsys.readouterr().out
    assert "| cores |" in report
    assert "executed" not in report          # report never simulates


def test_scenario_run_rejects_unknown_name(capsys):
    assert main(["scenario", "run", "not-a-scenario"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario" in err
    assert "figure2" in err                  # the error lists what exists


def test_scenario_resume_requires_an_existing_sink(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "empty"))
    assert main(["scenario", "resume", "scaling", "--scale", "smoke"]) == 1
    assert "no sink" in capsys.readouterr().err


def test_scenario_report_names_missing_jobs(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "empty"))
    assert main(["scenario", "report", "scaling", "--scale", "smoke"]) == 1
    err = capsys.readouterr().err
    assert "0 of 6" in err
    assert "scenario resume scaling" in err


def test_scenario_modules_env_imports_custom_registrations(tmp_path, capsys, monkeypatch):
    module = tmp_path / "my_custom_scenarios.py"
    module.write_text(
        "from repro.scenarios import GridAxes, Scenario, REGISTRY\n"
        "from repro.sim.config import ArchConfig\n"
        "if 'cli-test-custom' not in REGISTRY:\n"
        "    REGISTRY.register(Scenario(\n"
        "        name='cli-test-custom', description='registered via env hook',\n"
        "        grid=GridAxes(problems=('vecadd',),\n"
        "                      configs=(ArchConfig.from_name('1c2w2t'),)),\n"
        "        analyze=lambda run: 'custom-ok'))\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setenv("REPRO_SCENARIO_MODULES", "my_custom_scenarios")
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "cli-test-custom" in out
    assert "registered via env hook" in out


def test_campaign_help_documents_cache_override(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "--help"])
    text = capsys.readouterr().out
    assert "REPRO_CACHE_DIR" in text
    assert ".cache/repro" in text


def test_warehouse_cli_cycle(tmp_path, capsys, monkeypatch):
    """sync -> status -> report -> query -> rebuild, all against one run."""
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "sinks"))
    db = str(tmp_path / "wh.sqlite")
    cache_dir = str(tmp_path / "cache")
    journals = ["--cache-dir", cache_dir,
                "--scenario-dir", str(tmp_path / "sinks")]
    assert main(["scenario", "run", "scaling", "--scale", "smoke",
                 "--cache-dir", cache_dir]) == 0
    capsys.readouterr()

    assert main(["warehouse", "sync", "--db", db] + journals) == 0
    synced = capsys.readouterr().out
    assert "ingested" in synced

    assert main(["warehouse", "status", "--db", db]) == 0
    status = capsys.readouterr().out
    assert "sqlite backend" in status
    assert "(synced)" in status

    assert main(["warehouse", "report", "--db", db]) == 0
    assert "best-lws" in capsys.readouterr().out     # no name lists canned

    assert main(["warehouse", "report", "scenarios", "--db", db]) == 0
    assert "scaling" in capsys.readouterr().out

    assert main(["warehouse", "query",
                 "SELECT COUNT(*) FROM scenario_runs", "--db", db]) == 0
    assert "6" in capsys.readouterr().out

    assert main(["warehouse", "rebuild", "--db", db] + journals) == 0
    assert "parity check passed" in capsys.readouterr().out


def test_warehouse_query_rejects_writes(tmp_path, capsys, monkeypatch):
    db = str(tmp_path / "wh.sqlite")
    cache_dir = str(tmp_path / "cache")
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "sinks"))
    assert main(["campaign", "run", "--kernels", "vecadd", "--sweep", "smoke",
                 "--scale", "smoke", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["warehouse", "sync", "--db", db, "--cache-dir", cache_dir,
                 "--scenario-dir", str(tmp_path / "sinks")]) == 0
    capsys.readouterr()
    assert main(["warehouse", "query", "DELETE FROM jobs", "--db", db]) == 1
    assert "SELECT or WITH" in capsys.readouterr().err
    # the row survived the attempt
    assert main(["warehouse", "query", "SELECT COUNT(*) FROM jobs",
                 "--db", db]) == 0
    assert "| 0 " not in capsys.readouterr().out


def test_warehouse_sync_before_any_journal_exists(tmp_path, capsys):
    assert main(["warehouse", "sync", "--db", str(tmp_path / "wh.sqlite"),
                 "--cache-dir", str(tmp_path / "none"),
                 "--scenario-dir", str(tmp_path / "none")]) == 0
    assert "0 row(s) ingested" in capsys.readouterr().out


def test_campaign_status_can_serve_from_the_warehouse(tmp_path, capsys,
                                                      monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "sinks"))
    db = str(tmp_path / "wh.sqlite")
    cache_dir = str(tmp_path / "cache")
    assert main(["campaign", "run", "--kernels", "vecadd", "--sweep", "smoke",
                 "--scale", "smoke", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["warehouse", "sync", "--db", db, "--cache-dir", cache_dir,
                 "--scenario-dir", str(tmp_path / "sinks")]) == 0
    capsys.readouterr()
    assert main(["campaign", "status", "--source", "warehouse",
                 "--db", db, "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "jobs" in out
    assert "offset" in out


def test_scenario_report_source_warehouse(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "sinks"))
    db = str(tmp_path / "wh.sqlite")
    cache_dir = str(tmp_path / "cache")
    assert main(["scenario", "run", "scaling", "--scale", "smoke",
                 "--cache-dir", cache_dir]) == 0
    capsys.readouterr()

    # not synced yet: explicit --source warehouse refuses, auto falls back
    assert main(["scenario", "report", "scaling", "--scale", "smoke",
                 "--source", "warehouse", "--db", db]) == 1
    assert "does not (fully) cover" in capsys.readouterr().err
    assert main(["scenario", "report", "scaling", "--scale", "smoke",
                 "--db", db]) == 0
    journal_report = capsys.readouterr().out

    assert main(["warehouse", "sync", "--db", db, "--cache-dir", cache_dir,
                 "--scenario-dir", str(tmp_path / "sinks")]) == 0
    capsys.readouterr()
    assert main(["scenario", "report", "scaling", "--scale", "smoke",
                 "--source", "warehouse", "--db", db]) == 0
    assert capsys.readouterr().out == journal_report


def test_warehouse_help_documents_backends(capsys):
    with pytest.raises(SystemExit):
        main(["warehouse", "--help"])
    text = capsys.readouterr().out
    assert "REPRO_WAREHOUSE_BACKEND" in text
    assert "duckdb" in text
