"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_lists_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("info", "run", "figure1", "sweep", "report", "campaign",
                    "scenario"):
        assert command in text


def test_grid_flags_are_shared_across_sweep_campaign_and_scenario(capsys):
    """One parent parser feeds sweep, campaign run and scenario run."""
    for argv in (["sweep", "--help"],
                 ["campaign", "run", "--help"],
                 ["scenario", "run", "--help"]):
        with pytest.raises(SystemExit):
            main(argv)
        text = capsys.readouterr().out
        for flag in ("--kernels", "--sweep", "--scale", "--seed", "--exact-calls"):
            assert flag in text, f"{flag} missing from {' '.join(argv)}"


def test_missing_subcommand_exits_with_error():
    with pytest.raises(SystemExit):
        main([])


def test_info_command_reports_machine_and_eq1(capsys):
    assert main(["info", "--config", "4c8w8t", "--gws", "4096"]) == 0
    out = capsys.readouterr().out
    assert "4c8w8t" in out
    assert "hp = 256" in out
    assert "lws = ceil(4096 / 256) = 16" in out


def test_info_without_gws_only_describes_the_machine(capsys):
    assert main(["info", "--config", "1c2w4t"]) == 0
    out = capsys.readouterr().out
    assert "1c2w4t" in out
    assert "Eq. 1" not in out


def test_run_command_executes_a_problem(capsys):
    assert main(["run", "vecadd", "--config", "2c2w4t", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "vecadd" in out
    assert "lane utilisation" in out
    assert "cycles" in out


def test_run_command_with_explicit_lws_trace_and_advice(capsys):
    assert main(["run", "relu", "--config", "1c2w4t", "--scale", "smoke",
                 "--lws", "1", "--trace", "--advise"]) == 0
    out = capsys.readouterr().out
    assert "lws=1" in out
    assert "core 0 warp 0" in out                 # trace timeline
    assert "Tuning report" in out                 # advisor output
    assert "recommended lws" in out


def test_run_command_rejects_unknown_problem():
    with pytest.raises(SystemExit):
        main(["run", "not_a_kernel"])


def test_figure1_command(capsys):
    assert main(["figure1", "--length", "64", "--lws", "1", "8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1 reproduction" in out
    assert "lws=" in out


def test_sweep_and_report_round_trip(tmp_path, capsys):
    output = tmp_path / "sweep.json"
    assert main(["sweep", "--kernels", "vecadd", "--sweep", "smoke", "--scale", "smoke",
                 "-o", str(output)]) == 0
    first = capsys.readouterr().out
    assert "lws=1/ours avg" in first
    assert output.exists()
    rows = json.loads(output.read_text())
    assert rows and rows[0]["problem"] == "vecadd"

    assert main(["report", str(output), "--claims"]) == 0
    second = capsys.readouterr().out
    assert "lws=1/ours avg" in second
    assert "C4" in second


def test_campaign_run_status_and_clear_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    base = ["campaign", "run", "--kernels", "vecadd", "--sweep", "smoke",
            "--scale", "smoke", "--cache-dir", cache_dir]
    assert main(base + ["--workers", "2", "--claims"]) == 0
    cold = capsys.readouterr().out
    assert "lws=1/ours avg" in cold
    assert "C1" in cold
    assert "0 hit(s)" in cold

    # second run: fully cache-served, zero misses
    assert main(base) == 0
    warm = capsys.readouterr().out
    assert "0 miss(es)" in warm

    assert main(["campaign", "status", "--cache-dir", cache_dir]) == 0
    status = capsys.readouterr().out
    assert "usable entries" in status
    assert cache_dir in status

    assert main(["campaign", "clear-cache", "--cache-dir", cache_dir]) == 0
    assert "cleared" in capsys.readouterr().out
    assert main(["campaign", "status", "--cache-dir", cache_dir]) == 0
    assert "usable entries  : 0" in capsys.readouterr().out


def test_scenario_list_shows_all_registered_scenarios(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("figure1", "figure2", "ablation", "claims", "scaling",
                 "scheduler-sweep", "engine-compare", "cache-sensitivity"):
        assert name in out
    import re
    count = int(re.search(r"(\d+) scenario\(s\) registered", out).group(1))
    assert count >= 8


def test_scenario_run_resume_report_cycle(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "sinks"))
    cache_dir = str(tmp_path / "cache")
    base = ["scenario", "run", "scaling", "--scale", "smoke",
            "--cache-dir", cache_dir]

    assert main(base) == 0
    first = capsys.readouterr().out
    assert "6 unique job(s): 0 resumed from sink, 6 executed" in first
    assert "scaling-smoke.jsonl" in first
    assert "| cores |" in first

    assert main(["scenario", "resume", "scaling", "--scale", "smoke",
                 "--cache-dir", cache_dir]) == 0
    resumed = capsys.readouterr().out
    assert "6 resumed from sink, 0 executed" in resumed

    assert main(["scenario", "report", "scaling", "--scale", "smoke"]) == 0
    report = capsys.readouterr().out
    assert "| cores |" in report
    assert "executed" not in report          # report never simulates


def test_scenario_run_rejects_unknown_name(capsys):
    assert main(["scenario", "run", "not-a-scenario"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario" in err
    assert "figure2" in err                  # the error lists what exists


def test_scenario_resume_requires_an_existing_sink(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "empty"))
    assert main(["scenario", "resume", "scaling", "--scale", "smoke"]) == 1
    assert "no sink" in capsys.readouterr().err


def test_scenario_report_names_missing_jobs(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path / "empty"))
    assert main(["scenario", "report", "scaling", "--scale", "smoke"]) == 1
    err = capsys.readouterr().err
    assert "0 of 6" in err
    assert "scenario resume scaling" in err


def test_scenario_modules_env_imports_custom_registrations(tmp_path, capsys, monkeypatch):
    module = tmp_path / "my_custom_scenarios.py"
    module.write_text(
        "from repro.scenarios import GridAxes, Scenario, REGISTRY\n"
        "from repro.sim.config import ArchConfig\n"
        "if 'cli-test-custom' not in REGISTRY:\n"
        "    REGISTRY.register(Scenario(\n"
        "        name='cli-test-custom', description='registered via env hook',\n"
        "        grid=GridAxes(problems=('vecadd',),\n"
        "                      configs=(ArchConfig.from_name('1c2w2t'),)),\n"
        "        analyze=lambda run: 'custom-ok'))\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setenv("REPRO_SCENARIO_MODULES", "my_custom_scenarios")
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "cli-test-custom" in out
    assert "registered via env hook" in out


def test_campaign_help_documents_cache_override(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "--help"])
    text = capsys.readouterr().out
    assert "REPRO_CACHE_DIR" in text
    assert ".cache/repro" in text
