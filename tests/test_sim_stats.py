"""Tests for performance counters (repro.sim.stats)."""

import pytest

from repro.sim.stats import PerfCounters


def test_default_counters_are_zero():
    counters = PerfCounters()
    assert counters.cycles == 0
    assert counters.ipc == 0.0
    assert counters.l1_hit_rate == 0.0
    assert counters.lanes_per_instruction == 0.0


def test_merge_adds_every_field():
    a = PerfCounters(cycles=10, warp_instructions=5, l1_hits=3, loads=2)
    b = PerfCounters(cycles=7, warp_instructions=4, l1_hits=1, loads=1, stores=9)
    a.merge(b)
    assert a.cycles == 17
    assert a.warp_instructions == 9
    assert a.l1_hits == 4
    assert a.loads == 3
    assert a.stores == 9
    # merge returns self for chaining
    assert a.merge(PerfCounters()) is a


def test_copy_is_independent():
    a = PerfCounters(cycles=5)
    b = a.copy()
    b.cycles = 99
    assert a.cycles == 5


def test_dict_round_trip():
    a = PerfCounters(cycles=12, warp_instructions=6, memory_instructions=2, dram_lines=3)
    restored = PerfCounters.from_dict(a.as_dict())
    assert restored == a


def test_from_dict_ignores_unknown_keys():
    restored = PerfCounters.from_dict({"cycles": 4, "not_a_counter": 17})
    assert restored.cycles == 4


def test_derived_metrics():
    counters = PerfCounters(cycles=100, warp_instructions=50, lane_instructions=200,
                            memory_instructions=10, l1_hits=8, l1_misses=2,
                            l2_hits=1, l2_misses=1)
    assert counters.ipc == pytest.approx(0.5)
    assert counters.lanes_per_instruction == pytest.approx(4.0)
    assert counters.memory_intensity == pytest.approx(0.2)
    assert counters.l1_hit_rate == pytest.approx(0.8)
    assert counters.l2_hit_rate == pytest.approx(0.5)
