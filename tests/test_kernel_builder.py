"""Tests for the kernel builder DSL (repro.kernels.builder).

Structural tests check the emitted instruction stream; behavioural tests link
the program and execute it on the simulator harness to check the semantics of
control-flow constructs, constants and memory helpers.
"""

import pytest

from repro.isa.opcodes import Opcode
from repro.isa.registers import Csr
from repro.kernels.builder import BuildError, KernelBuilder
from repro.sim.config import ArchConfig

from tests.simt_harness import run_program


# ----------------------------------------------------------------------
# structural behaviour
# ----------------------------------------------------------------------
def test_emit_stamps_current_section():
    b = KernelBuilder("sections")
    b.const(1)
    with b.section("custom"):
        b.const(2)
    assert b._instructions[0].section == "body"
    assert b._instructions[1].section == "custom"


def test_nested_sections_restore_previous_tag():
    b = KernelBuilder("nest")
    with b.section("outer"):
        b.nop()
        with b.section("inner"):
            b.nop()
        b.nop()
    sections = [i.section for i in b._instructions]
    assert sections == ["outer", "inner", "outer"]


def test_constants_are_cached_within_a_region():
    b = KernelBuilder("consts")
    first = b.const(42)
    second = b.const(42)
    assert first.reg == second.reg
    assert sum(1 for i in b._instructions if i.opcode is Opcode.LI) == 1


def test_constant_cache_distinguishes_dtypes():
    b = KernelBuilder("consts")
    as_int = b.const(1)
    as_float = b.const(1.0)
    assert as_int.reg != as_float.reg


def test_constants_defined_inside_if_are_not_reused_outside():
    b = KernelBuilder("consts")
    cond = b.const(1)
    with b.if_(cond):
        inner = b.const(77)
    outer = b.const(77)
    assert inner.reg != outer.reg


def test_constants_defined_before_if_are_reused_inside():
    b = KernelBuilder("consts")
    outer = b.const(9)
    cond = b.const(1)
    with b.if_(cond):
        inner = b.const(9)
    assert inner.reg == outer.reg


def test_place_label_twice_raises():
    b = KernelBuilder("labels")
    label = b.new_label()
    b.place_label(label)
    with pytest.raises(BuildError):
        b.place_label(label)


def test_kernel_arg_slot_validation():
    b = KernelBuilder("args")
    with pytest.raises(BuildError):
        b.kernel_arg(99, dtype="i")


def test_for_range_requires_integer_count():
    b = KernelBuilder("loop")
    with pytest.raises(BuildError):
        with b.for_range(b.const(2.0)):
            pass


def test_if_emits_split_and_two_joins():
    b = KernelBuilder("if")
    cond = b.const(1)
    with b.if_(cond):
        b.nop()
    opcodes = [i.opcode for i in b._instructions]
    assert opcodes.count(Opcode.SPLIT) == 1
    assert opcodes.count(Opcode.JOIN) == 2


def test_for_range_emits_loop_begin_and_end():
    b = KernelBuilder("loop")
    with b.for_range(4, guard=False):
        b.nop()
    opcodes = [i.opcode for i in b._instructions]
    assert Opcode.LOOP_BEGIN in opcodes
    assert Opcode.LOOP_END in opcodes
    assert Opcode.SPLIT not in opcodes       # no guard requested


def test_guarded_for_range_adds_split():
    b = KernelBuilder("loop")
    with b.for_range(4, guard=True):
        b.nop()
    opcodes = [i.opcode for i in b._instructions]
    assert Opcode.SPLIT in opcodes


def test_link_requires_halt_for_plain_program():
    b = KernelBuilder("nohalt")
    b.const(1)
    with pytest.raises(Exception):
        b.link()
    b.halt()
    program = b.link()
    assert program[len(program) - 1].opcode is Opcode.HALT


def test_instruction_count_property():
    b = KernelBuilder("count")
    assert b.instruction_count == 0
    b.const(1)
    b.nop()
    assert b.instruction_count == 2


# ----------------------------------------------------------------------
# behavioural (executed on the simulator harness)
# ----------------------------------------------------------------------
def test_arithmetic_chain_executes_correctly():
    b = KernelBuilder("arith")
    x = b.const(3)
    y = b.const(4)
    total = x * y + 5          # 17
    as_float = total.to_float() / 2.0
    result = b.copy(as_float)
    b.halt()
    program = b.link()
    run = run_program(program, lanes=2)
    assert run.reg(result.reg, 0) == pytest.approx(8.5)
    assert run.reg(result.reg, 1) == pytest.approx(8.5)


def test_select_is_branch_free_and_correct():
    b = KernelBuilder("select")
    tid = b.csr(Csr.THREAD_ID)
    cond = tid < 2
    chosen = b.select(cond, b.const(10.0), b.const(20.0))
    result = b.copy(chosen)
    b.halt()
    run = run_program(b.link(), lanes=4)
    assert run.lane_values(result.reg) == [10.0, 10.0, 20.0, 20.0]
    assert Opcode.SPLIT not in [i.opcode for i in b._instructions]


def test_if_executes_only_on_true_lanes():
    b = KernelBuilder("if_exec")
    tid = b.csr(Csr.THREAD_ID)
    flag = b.copy(b.const(0))
    with b.if_(tid < 2):
        b.move(flag, b.const(1))
    b.halt()
    run = run_program(b.link(), lanes=4)
    assert run.lane_values(flag.reg) == [1, 1, 0, 0]


def test_if_then_else_covers_both_paths():
    b = KernelBuilder("ite")
    tid = b.csr(Csr.THREAD_ID)
    out = b.copy(b.const(0))
    b.if_then_else(
        tid < 2,
        lambda: b.move(out, b.const(100)),
        lambda: b.move(out, b.const(200)),
    )
    b.halt()
    run = run_program(b.link(), lanes=4)
    assert run.lane_values(out.reg) == [100, 100, 200, 200]


def test_if_with_uniformly_false_condition_skips_block():
    b = KernelBuilder("uniform_false")
    out = b.copy(b.const(7))
    with b.if_(b.const(0)):
        b.move(out, b.const(99))
    b.halt()
    run = run_program(b.link(), lanes=3)
    assert run.lane_values(out.reg) == [7, 7, 7]


def test_for_range_accumulates_expected_sum():
    b = KernelBuilder("loop_sum")
    total = b.copy(b.const(0))
    with b.for_range(5, guard=False) as i:
        b.move(total, total + i)
    b.halt()
    run = run_program(b.link(), lanes=2)
    assert run.reg(total.reg, 0) == 0 + 1 + 2 + 3 + 4


def test_for_range_with_zero_count_and_guard_skips_body():
    b = KernelBuilder("loop_zero")
    total = b.copy(b.const(0))
    zero = b.const(0)
    with b.for_range(zero, guard=True):
        b.move(total, b.const(99))
    b.halt()
    run = run_program(b.link(), lanes=2)
    assert run.reg(total.reg, 0) == 0


def test_for_range_with_per_lane_trip_counts_diverges_correctly():
    b = KernelBuilder("loop_div")
    tid = b.csr(Csr.THREAD_ID)          # 0, 1, 2, 3
    total = b.copy(b.const(0))
    with b.for_range(tid, guard=True):
        b.move(total, total + 1)
    b.halt()
    run = run_program(b.link(), lanes=4)
    assert run.lane_values(total.reg) == [0, 1, 2, 3]


def test_nested_loops_multiply_counts():
    b = KernelBuilder("loop_nest")
    total = b.copy(b.const(0))
    with b.for_range(3, guard=False):
        with b.for_range(4, guard=False):
            b.move(total, total + 1)
    b.halt()
    run = run_program(b.link(), lanes=1)
    assert run.reg(total.reg, 0) == 12


def test_load_and_store_roundtrip_through_memory():
    b = KernelBuilder("mem")
    base = b.const(100)
    value = b.load(base, 2)
    doubled = value * 2.0
    b.store(doubled, base, 3)
    b.halt()
    run = run_program(b.link(), lanes=1, memory={102: 21.0})
    assert run.mem(103) == pytest.approx(42.0)


def test_load_with_register_offset():
    b = KernelBuilder("mem_reg")
    base = b.const(10)
    tid = b.csr(Csr.THREAD_ID)
    value = b.load(base, tid)
    out = b.copy(value)
    b.halt()
    run = run_program(b.link(), lanes=4, memory={10: 1.0, 11: 2.0, 12: 3.0, 13: 4.0})
    assert run.lane_values(out.reg) == [1.0, 2.0, 3.0, 4.0]


def test_math_helpers_execute_correctly():
    b = KernelBuilder("math")
    x = b.const(9.0)
    root = b.sqrt(x)
    low = b.minimum(b.const(3.0), b.const(5.0))
    high = b.maximum(b.const(3.0), b.const(5.0))
    absolute = b.abs(b.const(-4))
    fma = b.fma(b.const(2.0), b.const(3.0), b.const(1.0))
    keep = [b.copy(v) for v in (root, low, high, absolute.to_float(), fma)]
    b.halt()
    run = run_program(b.link(), lanes=1)
    values = [run.reg(v.reg, 0) for v in keep]
    assert values == pytest.approx([3.0, 3.0, 5.0, 4.0, 7.0])


def test_logical_helpers():
    b = KernelBuilder("logic")
    tid = b.csr(Csr.THREAD_ID)
    both = b.logical_and(tid >= 1, tid < 3)
    either = b.logical_or(tid.eq(0), tid.eq(3))
    keep_both = b.copy(both)
    keep_either = b.copy(either)
    b.halt()
    run = run_program(b.link(), lanes=4)
    assert run.lane_values(keep_both.reg) == [0, 1, 1, 0]
    assert run.lane_values(keep_either.reg) == [1, 0, 0, 1]
