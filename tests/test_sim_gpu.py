"""Tests for the device model (repro.sim.gpu)."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import Csr, CsrFile
from repro.kernels.builder import KernelBuilder
from repro.sim.config import ArchConfig
from repro.sim.core import SimulationError
from repro.sim.gpu import CallResult, Gpu, WarpLaunch


def _csr(config, core_id=0, warp_id=0, lanes=None):
    lanes = lanes if lanes is not None else config.threads_per_warp
    return CsrFile(
        num_threads=config.threads_per_warp, num_warps=config.warps_per_core,
        num_cores=config.cores, warp_id=warp_id, core_id=core_id,
        workgroup_ids=[float(i) for i in range(lanes)],
        local_counts=[1.0] * lanes, local_size=1, global_size=lanes, num_groups=lanes,
    )


def _store_core_id_program():
    """Each lane stores (core_id * 100 + thread_id) to address (core_id * 8 + tid)."""
    b = KernelBuilder("whoami")
    core = b.csr(Csr.CORE_ID)
    tid = b.csr(Csr.THREAD_ID)
    value = core * 100 + tid
    address = b.const(0) + core * 8 + tid
    b.store(value.to_float(), address)
    b.halt()
    return b.link()


def test_run_call_with_no_launches_is_a_noop():
    gpu = Gpu(ArchConfig())
    program = _store_core_id_program()
    result = gpu.run_call(program, [])
    assert result.cycles == 0


def test_run_call_executes_warps_on_their_assigned_cores():
    config = ArchConfig(cores=3, warps_per_core=2, threads_per_warp=4)
    gpu = Gpu(config)
    program = _store_core_id_program()
    launches = [WarpLaunch(core_id=c, warp_id=0, csr=_csr(config, core_id=c), active_lanes=4)
                for c in range(3)]
    result = gpu.run_call(program, launches)
    assert result.cycles > 0
    for core in range(3):
        for tid in range(4):
            assert gpu.memory.read(core * 8 + tid) == core * 100 + tid


def test_cores_execute_in_parallel_not_serially():
    """Running the same work on 1 vs 4 cores must not take 4x the cycles."""
    config1 = ArchConfig(cores=1, warps_per_core=1, threads_per_warp=4)
    config4 = ArchConfig(cores=4, warps_per_core=1, threads_per_warp=4)
    program = _store_core_id_program()

    gpu1 = Gpu(config1)
    single = gpu1.run_call(program, [WarpLaunch(0, 0, _csr(config1), 4)])

    gpu4 = Gpu(config4)
    launches = [WarpLaunch(core_id=c, warp_id=0, csr=_csr(config4, core_id=c), active_lanes=4)
                for c in range(4)]
    quad = gpu4.run_call(program, launches)
    # 4x the work in (roughly) the same time: allow generous slack for the
    # shared DRAM bandwidth, but far below 4x.
    assert quad.cycles < single.cycles * 2


def test_invalid_core_or_warp_targets_are_rejected():
    config = ArchConfig(cores=1, warps_per_core=1, threads_per_warp=2)
    gpu = Gpu(config)
    program = _store_core_id_program()
    with pytest.raises(SimulationError, match="core"):
        gpu.run_call(program, [WarpLaunch(5, 0, _csr(config), 2)])
    with pytest.raises(SimulationError, match="warp"):
        gpu.run_call(program, [WarpLaunch(0, 3, _csr(config), 2)])


def test_max_cycles_guard_triggers():
    config = ArchConfig(cores=1, warps_per_core=1, threads_per_warp=2)
    gpu = Gpu(config)
    # an infinite loop: JMP to itself
    program = Program.link(
        "spin",
        [Instruction(Opcode.JMP, target=0), Instruction(Opcode.HALT)],
        labels={}, num_registers=0)
    with pytest.raises(SimulationError, match="max_cycles"):
        gpu.run_call(program, [WarpLaunch(0, 0, _csr(config), 2)], max_cycles=100)


def test_counters_are_populated():
    config = ArchConfig(cores=2, warps_per_core=1, threads_per_warp=4)
    gpu = Gpu(config)
    program = _store_core_id_program()
    launches = [WarpLaunch(core_id=c, warp_id=0, csr=_csr(config, core_id=c), active_lanes=4)
                for c in range(2)]
    result = gpu.run_call(program, launches)
    counters = result.counters
    assert counters.warp_instructions == 2 * len(program)
    assert counters.stores == 2
    assert counters.warps_launched == 2
    assert counters.cycles == result.cycles
    assert counters.issue_cycles > 0


def test_idle_skip_matches_dense_simulation_cycle_count():
    """The event-skip fast path must not change cycle arithmetic.

    A program with a long dependent chain through memory produces many idle
    cycles; simulating it on the Gpu (with skip) and on a dense per-cycle loop
    must agree on the final cycle count.
    """
    b = KernelBuilder("chain")
    base = b.const(0)
    value = b.load(base, 0)
    for _ in range(3):
        value = b.load(base, value.to_int())
    b.store(value, base, 64)
    b.halt()
    program = b.link()

    config = ArchConfig(cores=1, warps_per_core=1, threads_per_warp=2)
    gpu = Gpu(config)
    gpu_result = gpu.run_call(program, [WarpLaunch(0, 0, _csr(config), 2)])

    from tests.simt_harness import run_program
    dense = run_program(program, lanes=2, config=config)
    assert gpu_result.cycles == dense.cycles


def test_memory_system_reset_between_launches():
    config = ArchConfig(cores=1, warps_per_core=1, threads_per_warp=2)
    gpu = Gpu(config)
    b = KernelBuilder("loader")
    value = b.load(b.const(0), 0)
    b.store(value, b.const(0), 1)
    b.halt()
    program = b.link()
    first = gpu.run_call(program, [WarpLaunch(0, 0, _csr(config), 2)])
    warm = gpu.run_call(program, [WarpLaunch(0, 0, _csr(config), 2)])
    assert warm.cycles < first.cycles            # caches stayed warm within the launch
    gpu.reset_memory_system()
    cold = gpu.run_call(program, [WarpLaunch(0, 0, _csr(config), 2)])
    assert cold.cycles == first.cycles           # reset restored cold-cache behaviour
