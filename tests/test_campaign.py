"""Tests for the campaign engine (repro.campaign).

Covers the acceptance properties of the subsystem: content hashes that are
stable across process restarts, cache hit/miss accounting with
version-bump invalidation, per-job failure isolation, deterministic result
ordering, and bit-identical serial vs. parallel (and cold vs. cache-served)
experiment results.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace

import pytest

import repro
from repro.campaign import (
    CACHE_SCHEMA_VERSION,
    Campaign,
    CampaignError,
    CampaignRunner,
    JobFailure,
    JobResult,
    JobSpec,
    ResultCache,
    config_from_dict,
    config_to_dict,
    execute_job,
)
from repro.campaign.cache import CACHE_DIR_ENV, default_cache_dir
from repro.experiments.figure2 import run_figure2
from repro.isa.latencies import FunctionalUnit, OpTiming
from repro.isa.opcodes import Opcode
from repro.sim.config import ArchConfig
from repro.workloads.problems import UnknownProblemError, make_problem

CONFIG = ArchConfig.from_name("2c2w4t")


def spec(**overrides) -> JobSpec:
    defaults = dict(problem="vecadd", config=CONFIG, scale="smoke", seed=0)
    defaults.update(overrides)
    return JobSpec(**defaults)


def _explode(job_spec, engine=None):
    """A stand-in for execute_job that dies inside the pool worker."""
    raise RuntimeError("synthetic pool breakage")


# ----------------------------------------------------------------------
# specs and hashing
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_hash_is_stable_across_process_restarts(self):
        code = (
            "from repro.campaign import JobSpec\n"
            "from repro.sim.config import ArchConfig\n"
            "s = JobSpec(problem='vecadd', config=ArchConfig.from_name('2c2w4t'),\n"
            "            scale='smoke', seed=0)\n"
            "print(s.content_hash())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src"] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        env["PYTHONHASHSEED"] = "12345"   # builtin-hash randomisation must not matter
        fresh = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert fresh.returncode == 0, fresh.stderr
        assert fresh.stdout.strip() == spec().content_hash()

    def test_hash_ignores_presentation_fields(self):
        base = spec()
        assert spec(label="other").content_hash() == base.content_hash()
        assert spec(collect_trace=True).content_hash() == base.content_hash()

    def test_hash_distinguishes_simulation_inputs(self):
        base = spec()
        assert spec(seed=1).content_hash() != base.content_hash()
        assert spec(local_size=8).content_hash() != base.content_hash()
        assert spec(problem="relu").content_hash() != base.content_hash()
        assert spec(size=96).content_hash() != base.content_hash()
        assert spec(call_simulation_limit=3).content_hash() != base.content_hash()
        bigger = ArchConfig.from_name("4c2w4t")
        assert spec(config=bigger).content_hash() != base.content_hash()
        slower = replace(CONFIG, kernel_launch_overhead=512)
        assert spec(config=slower).content_hash() != base.content_hash()

    def test_hash_depends_on_simulator_version(self, monkeypatch):
        before = spec().content_hash()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert spec().content_hash() != before

    def test_spec_round_trips_through_dict(self):
        original = spec(local_size=4, call_simulation_limit=3, label="x",
                        size=64, collect_trace=True)
        restored = JobSpec.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored == original
        assert restored.content_hash() == original.content_hash()

    def test_config_round_trip_includes_timing_overrides(self):
        config = replace(
            CONFIG, warp_scheduler="gto", dram_latency=250,
            timing_overrides={Opcode.FADD: OpTiming(FunctionalUnit.FPU, 7, 2)})
        restored = config_from_dict(json.loads(json.dumps(config_to_dict(config))))
        assert restored == config

    def test_campaign_counts_distinct_points(self):
        campaign = Campaign("dup")
        campaign.add(spec(local_size=1))
        campaign.add(spec(local_size=1, label="again"))
        campaign.add(spec(local_size=8))
        assert len(campaign) == 3
        assert len(campaign.unique_hashes()) == 2
        assert "3 job(s), 2 distinct" in campaign.summary()


# ----------------------------------------------------------------------
# the persistent cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec(local_size=4)
        assert cache.get(job) is None
        result = execute_job(job)
        cache.put(job, result)
        served = cache.get(job)
        assert served is not None
        assert served.cycles == result.cycles
        assert served.from_cache and not result.from_cache
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_persists_across_instances(self, tmp_path):
        job = spec(local_size=4)
        first = ResultCache(tmp_path)
        first.put(job, execute_job(job))
        second = ResultCache(tmp_path)
        assert len(second) == 1
        assert job in second
        assert second.get(job).cycles == first.get(job).cycles

    def test_version_bump_invalidates_entries(self, tmp_path, monkeypatch):
        job = spec(local_size=4)
        ResultCache(tmp_path).put(job, execute_job(job))
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        assert cache.stats().stale_entries == 1
        assert cache.get(job) is None      # the hash moved with the version too

    def test_corrupt_journal_lines_are_skipped(self, tmp_path):
        job = spec(local_size=4)
        cache = ResultCache(tmp_path)
        cache.put(job, execute_job(job))
        with cache.journal_path.open("a") as journal:
            journal.write("{not json\n")
        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.stats().stale_entries == 1

    def test_superseded_duplicate_lines_are_compacted_on_load(self, tmp_path):
        job = spec(local_size=4)
        cache = ResultCache(tmp_path)
        result = execute_job(job)
        cache.put(job, result)
        # Simulate a concurrent campaign appending the same hash again.
        line = cache.journal_path.read_text()
        with cache.journal_path.open("a") as journal:
            journal.write(line)
        assert len(cache.journal_path.read_text().splitlines()) == 2

        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 1
        stats = reloaded.stats()
        assert stats.compacted_lines == 1
        assert stats.journal_lines == 1
        assert "compacted 1 superseded/corrupt line(s)" in stats.render()
        # the journal itself shrank back to one line per hash
        assert len(cache.journal_path.read_text().splitlines()) == 1
        assert reloaded.get(job).cycles == result.cycles

    def test_compaction_keeps_the_last_record_per_hash(self, tmp_path):
        job = spec(local_size=4)
        cache = ResultCache(tmp_path)
        cache.put(job, execute_job(job))
        record = json.loads(cache.journal_path.read_text())
        record["result"]["cycles"] = 123_456          # a newer, different write
        with cache.journal_path.open("a") as journal:
            journal.write(json.dumps(record, sort_keys=True) + "\n")

        reloaded = ResultCache(tmp_path)
        assert reloaded.get(job).cycles == 123_456
        assert reloaded.stats().compacted_lines == 1

    def test_stale_duplicate_hash_cannot_shadow_a_usable_record(self, tmp_path):
        # A tampered/hand-merged journal can hold the same hash under two
        # simulator versions; last-wins dedup is per (hash, version), so the
        # stale line neither shadows the usable record nor gets it compacted
        # away.
        job = spec(local_size=4)
        cache = ResultCache(tmp_path)
        result = execute_job(job)
        cache.put(job, result)
        record = json.loads(cache.journal_path.read_text())
        record["simulator"] = "999.0.0"       # same hash, other version
        with cache.journal_path.open("a") as journal:
            journal.write(json.dumps(record, sort_keys=True) + "\n")

        reloaded = ResultCache(tmp_path)
        assert reloaded.get(job).cycles == result.cycles   # still served
        assert reloaded.stats().stale_entries == 1
        assert reloaded.stats().compacted_lines == 0       # nothing superseded
        assert len(cache.journal_path.read_text().splitlines()) == 2

    def test_status_reports_journal_size_metrics(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec(local_size=4), execute_job(spec(local_size=4)))
        stats = cache.stats()
        assert stats.journal_lines == 1
        assert stats.size_bytes > 0
        assert stats.bytes_per_entry == stats.size_bytes
        rendered = stats.render()
        assert "journal lines" in rendered
        assert "B/entry" in rendered

    def test_clear_removes_the_journal(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec(local_size=4)
        cache.put(job, execute_job(job))
        assert cache.clear() == 1
        assert not cache.journal_path.exists()
        assert ResultCache(tmp_path).get(job) is None

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert ResultCache().directory == tmp_path / "elsewhere"

    def test_clear_rearms_tail_repair(self, tmp_path):
        # clear() must forget that the (now deleted) journal's tail was
        # checked: a journal recreated afterwards with a partial tail -- a
        # killed writer from another process -- still needs repairing before
        # this instance appends to it.
        cache = ResultCache(tmp_path)
        first, second = spec(local_size=2), spec(local_size=4)
        cache.put(first, execute_job(first))
        cache.clear()
        cache.journal_path.write_text('{"hash": "partial"')   # no newline
        cache.put(second, execute_job(second))
        reloaded = ResultCache(tmp_path)
        assert reloaded.get(second) is not None

    def test_clear_sweeps_orphaned_compaction_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec(local_size=4)
        cache.put(job, execute_job(job))
        orphan = tmp_path / f"{cache.journal_path.name}.12345.tmp"
        orphan.write_text('{"hash": "stale"}\n')
        cache.clear()
        assert not orphan.exists()


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class TestCampaignRunner:
    def grid(self):
        campaign = Campaign("grid")
        for lws in (1, 2, 4, 8):
            campaign.add(spec(local_size=lws))
        return campaign

    def test_rejects_nonpositive_worker_counts(self):
        with pytest.raises(ValueError):
            CampaignRunner(workers=0)

    def test_results_keep_submission_order(self):
        outcome = CampaignRunner().run(self.grid())
        assert [r.local_size for r in outcome.results] == [1, 2, 4, 8]
        assert outcome.ok
        assert outcome.stats.executed == 4

    @staticmethod
    def measured(outcome):
        """Result dictionaries minus wall-clock noise (elapsed_seconds)."""
        rows = [r.to_dict() for r in outcome.results]
        for row in rows:
            row.pop("elapsed_seconds")
        return rows

    def test_serial_and_parallel_results_are_identical(self):
        serial = CampaignRunner(workers=1).run(self.grid())
        parallel = CampaignRunner(workers=4).run(self.grid())
        assert self.measured(serial) == self.measured(parallel)

    def test_duplicate_points_are_simulated_once(self):
        campaign = Campaign("dups")
        for _ in range(3):
            campaign.add(spec(local_size=4))
        outcome = CampaignRunner().run(campaign)
        assert outcome.stats.executed == 1
        assert outcome.stats.deduplicated == 2
        assert len({r.cycles for r in outcome.results}) == 1

    def test_one_bad_job_does_not_kill_the_campaign(self):
        campaign = self.grid()
        campaign.add(spec(problem="no_such_kernel"))
        for workers in (1, 2):
            outcome = CampaignRunner(workers=workers).run(campaign)
            assert outcome.stats.failed == 1
            failure = outcome.results[-1]
            assert isinstance(failure, JobFailure)
            assert "no_such_kernel" in failure.error
            assert failure.traceback                     # captured for debugging
            assert all(isinstance(r, JobResult) for r in outcome.results[:-1])
            with pytest.raises(CampaignError, match="no_such_kernel"):
                outcome.job_results()

    def test_progress_fires_once_per_job(self, tmp_path):
        cache = ResultCache(tmp_path)
        campaign = self.grid()
        seen = []
        CampaignRunner(cache=cache).run(
            campaign, progress=lambda i, n, s, o: seen.append((i, n, o.from_cache)))
        assert sorted(i for i, _, _ in seen) == [0, 1, 2, 3]
        assert all(n == 4 for _, n, _ in seen)
        assert not any(hit for _, _, hit in seen)
        seen.clear()
        CampaignRunner(cache=cache).run(
            campaign, progress=lambda i, n, s, o: seen.append((i, n, o.from_cache)))
        assert all(hit for _, _, hit in seen)

    def test_warm_cache_serves_everything(self, tmp_path):
        campaign = self.grid()
        cold = CampaignRunner(cache=ResultCache(tmp_path)).run(campaign)
        warm = CampaignRunner(cache=ResultCache(tmp_path)).run(campaign)
        assert cold.stats.executed == 4
        assert warm.stats.executed == 0                  # zero simulator invocations
        assert warm.stats.cache_hits == 4
        assert [r.cycles for r in warm.results] == [r.cycles for r in cold.results]

    def test_pool_breakage_failures_carry_a_traceback(self, monkeypatch):
        # When the pool itself breaks (worker crash, pickling failure) the
        # synthesized JobFailure must still carry a formatted traceback, like
        # an in-job failure would -- it is the only debugging artifact --
        # plus host/last-heartbeat context locating the breakage.
        import repro.campaign.executor as executor_module

        monkeypatch.setattr(executor_module, "execute_job", _explode)
        campaign = Campaign("broken", specs=[spec(local_size=2),
                                             spec(local_size=4)])
        with CampaignRunner(workers=2) as runner:
            outcome = runner.run(campaign)
        assert outcome.stats.failed == 2
        for failure in outcome.results:
            assert isinstance(failure, JobFailure)
            assert "synthetic pool breakage" in failure.error
            assert "RuntimeError" in failure.traceback
            assert "Traceback" in failure.traceback
            assert failure.host, "pool breakage must name the host"
            assert failure.last_heartbeat is not None

    def test_traced_jobs_bypass_cache_reads_but_seed_summaries(self, tmp_path):
        cache = ResultCache(tmp_path)
        traced = spec(local_size=4, collect_trace=True)
        first = CampaignRunner(cache=cache).run([traced])
        assert first.results[0].events                   # events survive the runner
        # the summary was written, so the untraced twin is cache-served ...
        warm = CampaignRunner(cache=cache).run([spec(local_size=4)])
        assert warm.stats.cache_hits == 1
        # ... but a traced resubmission must simulate again (events aren't stored)
        again = CampaignRunner(cache=cache).run([traced])
        assert again.stats.executed == 1
        assert again.results[0].events


# ----------------------------------------------------------------------
# experiments through the campaign engine
# ----------------------------------------------------------------------
class TestExperimentsThroughCampaign:
    CONFIGS = [ArchConfig.from_name("1c2w2t"), ArchConfig.from_name("2c4w4t")]

    def test_figure2_second_run_is_fully_cache_served(self, tmp_path):
        kwargs = dict(scale="smoke", call_simulation_limit=3, seed=0)
        cold_runner = CampaignRunner(cache=ResultCache(tmp_path))
        cold = run_figure2(["vecadd"], self.CONFIGS, runner=cold_runner, **kwargs)
        warm_runner = CampaignRunner(cache=ResultCache(tmp_path))
        warm = run_figure2(["vecadd"], self.CONFIGS, runner=warm_runner, **kwargs)
        assert warm_runner.cache.misses == 0             # every point served
        assert [r.as_dict() for r in warm.records] == [r.as_dict() for r in cold.records]

    def test_figure2_parallel_matches_serial(self):
        kwargs = dict(scale="smoke", call_simulation_limit=3, seed=0)
        serial = run_figure2(["vecadd", "relu"], self.CONFIGS,
                             runner=CampaignRunner(workers=1), **kwargs)
        parallel = run_figure2(["vecadd", "relu"], self.CONFIGS,
                               runner=CampaignRunner(workers=4), **kwargs)
        assert [r.as_dict() for r in serial.records] \
            == [r.as_dict() for r in parallel.records]

    def test_figure2_seed_changes_the_grid_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(scale="smoke", call_simulation_limit=3)
        runner = CampaignRunner(cache=cache)
        run_figure2(["vecadd"], self.CONFIGS[:1], seed=0, runner=runner, **kwargs)
        run_figure2(["vecadd"], self.CONFIGS[:1], seed=7, runner=runner, **kwargs)
        assert cache.hits == 0                           # different seed, no reuse


# ----------------------------------------------------------------------
# problem size overrides (used by figure1 job specs)
# ----------------------------------------------------------------------
class TestSizeOverride:
    def test_sizeable_problems_honour_the_override(self):
        problem = make_problem("vecadd", scale="smoke", seed=11, size=128)
        assert problem.global_size == 128
        assert len(problem.arguments["a"]) == 128

    def test_structured_problems_reject_the_override(self):
        with pytest.raises(UnknownProblemError, match="size override"):
            make_problem("sgemm", scale="smoke", size=128)
        with pytest.raises(UnknownProblemError, match="positive"):
            make_problem("vecadd", scale="smoke", size=0)


# ----------------------------------------------------------------------
# streaming journal access (warehouse ingest rides on these)
# ----------------------------------------------------------------------
class TestStreamingJournal:
    def test_iter_entries_yields_records_with_resume_offsets(self, tmp_path):
        from repro.campaign.journal import iter_journal_entries

        cache = ResultCache(tmp_path)
        for lws in (1, 2, 4):
            job = spec(local_size=lws)
            cache.put(job, execute_job(job))

        entries = list(cache.iter_entries())
        assert len(entries) == 3
        hashes = [record["hash"] for record, _ in entries]
        assert len(set(hashes)) == 3
        # offsets are line-end byte positions: resuming from any of them
        # yields exactly the remaining records
        _, first_offset = entries[0]
        rest = list(iter_journal_entries(cache.journal_path,
                                         start=first_offset))
        assert [r["hash"] for r, _ in rest] == hashes[1:]
        assert entries[-1][1] == cache.journal_path.stat().st_size

    def test_iter_entries_streams_the_same_view_load_builds(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec(local_size=4)
        cache.put(job, execute_job(job))
        with cache.journal_path.open("a") as journal:
            journal.write("{corrupt\n")
        streamed = {record["hash"]: record for record, _ in
                    ResultCache(tmp_path).iter_entries()}
        assert set(streamed) == {job.content_hash()}

    def test_terminated_blank_lines_advance_the_offset(self, tmp_path):
        # A blank (but newline-terminated) line carries no record, yet the
        # iteration must still report the offset past it: consumers that
        # persist the consumed offset (warehouse sync) would otherwise stall
        # before trailing blank lines and re-read them on every pass.
        from repro.campaign.journal import iter_journal_entries

        cache = ResultCache(tmp_path)
        job = spec(local_size=4)
        cache.put(job, execute_job(job))
        with cache.journal_path.open("a") as journal:
            journal.write("\n\n")
        size = cache.journal_path.stat().st_size

        entries = list(iter_journal_entries(cache.journal_path))
        assert [record is None for record, _ in entries] == [False, True, True]
        assert entries[-1][1] == size
        # complete_only (the warehouse ingest mode) consumes them too
        guarded = list(iter_journal_entries(cache.journal_path,
                                            complete_only=True))
        assert guarded[-1][1] == size

    def test_complete_only_hides_an_unterminated_tail(self, tmp_path):
        from repro.campaign.journal import iter_journal_entries

        cache = ResultCache(tmp_path)
        job = spec(local_size=4)
        cache.put(job, execute_job(job))
        whole = cache.journal_path.stat().st_size
        with cache.journal_path.open("a") as journal:
            journal.write('{"hash": "partial"')            # no newline

        guarded = list(iter_journal_entries(cache.journal_path,
                                            complete_only=True))
        assert len(guarded) == 1
        assert guarded[-1][1] == whole                     # stops at the tail

        # legacy mode still parses the tail like the whole-file read did
        eager = list(iter_journal_entries(cache.journal_path))
        assert len(eager) == 2
        assert eager[-1][0] is None                        # corrupt -> None
