"""Tests for the Value operator overloads (repro.kernels.values)."""

import pytest

from repro.isa.opcodes import Opcode
from repro.kernels.builder import KernelBuilder
from repro.kernels.values import FLOAT, INT, Value


@pytest.fixture
def builder():
    return KernelBuilder("values")


def _last_opcode(builder: KernelBuilder) -> Opcode:
    return builder._instructions[-1].opcode


def test_integer_addition_emits_add(builder):
    a = builder.const(1)
    b = builder.const(2)
    result = a + b
    assert result.dtype == INT
    assert _last_opcode(builder) is Opcode.ADD


def test_float_addition_emits_fadd(builder):
    a = builder.const(1.0)
    b = builder.const(2.0)
    result = a + b
    assert result.dtype == FLOAT
    assert _last_opcode(builder) is Opcode.FADD


def test_mixed_addition_promotes_to_float(builder):
    a = builder.const(1)
    b = builder.const(2.0)
    result = a + b
    assert result.dtype == FLOAT
    assert _last_opcode(builder) is Opcode.FADD
    # an I2F conversion must have been inserted for the integer operand
    opcodes = [i.opcode for i in builder._instructions]
    assert Opcode.I2F in opcodes


def test_python_number_operands_are_materialised(builder):
    a = builder.const(5)
    result = a + 3
    assert result.dtype == INT
    # reverse operand order works too
    result2 = 3 + a
    assert result2.dtype == INT


def test_subtraction_and_negation(builder):
    a = builder.const(5)
    b = builder.const(2)
    assert (a - b).dtype == INT
    assert _last_opcode(builder) is Opcode.SUB
    neg = -a
    assert neg.dtype == INT
    assert _last_opcode(builder) is Opcode.NEG


def test_multiplication(builder):
    a, b = builder.const(2.0), builder.const(4.0)
    _ = a * b
    assert _last_opcode(builder) is Opcode.FMUL


def test_true_division_int_uses_div(builder):
    a, b = builder.const(7), builder.const(2)
    _ = a / b
    assert _last_opcode(builder) is Opcode.DIV


def test_floor_division_requires_integers(builder):
    a, b = builder.const(7), builder.const(2)
    result = a // b
    assert result.dtype == INT
    with pytest.raises(Exception):
        _ = builder.const(7.0) // builder.const(2.0)


def test_modulo_requires_integers(builder):
    a, b = builder.const(7), builder.const(3)
    result = a % b
    assert result.dtype == INT
    assert _last_opcode(builder) is Opcode.REM


def test_comparisons_produce_int_flags(builder):
    a, b = builder.const(1.5), builder.const(2.5)
    for value in (a < b, a <= b, a > b, a >= b, a.eq(b), a.ne(b)):
        assert value.dtype == INT


def test_eq_is_not_overloaded_for_python_equality(builder):
    a = builder.const(1)
    # __eq__ keeps identity semantics so Values can live in dicts/sets
    assert (a == a) is True
    assert (a == builder.const(2)) is False


def test_conversions(builder):
    a = builder.const(3)
    f = a.to_float()
    assert f.dtype == FLOAT
    back = f.to_int()
    assert back.dtype == INT
    # converting to the same dtype is a no-op (returns the same register)
    assert a.to_int() is a
    assert f.to_float() is f


def test_invalid_dtype_rejected(builder):
    with pytest.raises(ValueError):
        Value(builder, 0, "x")
