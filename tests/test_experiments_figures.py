"""Tests for the Figure-1 / Figure-2 harnesses, claims, ablations and reports.

These run real (tiny) sweeps on the simulator, so they use smoke-scale
problems and the smallest configuration grids.
"""

import pytest

from repro.experiments.ablation import boundedness_study, overhead_sensitivity
from repro.experiments.claims import evaluate_claims
from repro.experiments.configs import smoke_sweep
from repro.experiments.figure1 import FIGURE1_LWS_VALUES, run_figure1
from repro.experiments.figure2 import Figure2Result, SweepRecord, run_figure2
from repro.experiments.report import (
    render_figure2_table,
    render_markdown_report,
    render_speedup_summary,
    render_table,
)
from repro.sim.config import ArchConfig


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def figure1():
    return run_figure1(lws_values=(1, 16, 32, 64), length=128)


class TestFigure1:
    def test_all_requested_lws_values_are_traced(self, figure1):
        assert set(figure1.traces) == {1, 16, 32, 64}
        assert figure1.config_name == "1c2w4t"
        assert figure1.global_size == 128

    def test_lws16_is_the_fastest_as_in_the_paper(self, figure1):
        assert figure1.best_local_size() == 16
        cycles = {lws: t.cycles for lws, t in figure1.traces.items()}
        assert cycles[16] < cycles[1]
        assert cycles[16] < cycles[32]
        assert cycles[16] < cycles[64]

    def test_call_counts_match_the_three_regimes(self, figure1):
        assert figure1.traces[1].num_calls == 16
        assert figure1.traces[16].num_calls == 1
        assert figure1.traces[32].num_calls == 1
        assert figure1.traces[64].num_calls == 1

    def test_under_utilised_mappings_report_reduced_lane_utilisation(self, figure1):
        assert figure1.traces[16].lane_utilization == pytest.approx(1.0)
        assert figure1.traces[32].lane_utilization == pytest.approx(0.5)
        assert figure1.traces[64].lane_utilization == pytest.approx(0.25)

    def test_traces_contain_events_and_renderings(self, figure1):
        for trace in figure1.traces.values():
            assert len(trace.events) > 0
            assert "core 0 warp 0" in trace.timeline
            assert "init" in trace.waveform
            assert "lws=" in trace.summary()
        rendered = figure1.render()
        assert "Figure 1" in rendered
        assert rendered.count("lws=") >= 4


# ----------------------------------------------------------------------
# Figure 2 (tiny sweep)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def figure2():
    configs = [ArchConfig.from_name("1c2w2t"), ArchConfig.from_name("2c4w4t"),
               ArchConfig.from_name("8c8w8t")]
    return run_figure2(["vecadd", "sgemm"], configs, scale="smoke",
                       call_simulation_limit=3)


class TestFigure2:
    def test_every_problem_config_strategy_is_recorded(self, figure2):
        assert len(figure2.records) == 2 * 3 * 3
        assert set(figure2.problems()) == {"vecadd", "sgemm"}
        record = figure2.records[0]
        assert isinstance(record, SweepRecord)
        assert record.cycles > 0
        assert record.as_dict()["strategy"] in ("lws=1", "lws=32", "ours")

    def test_ratios_and_stats_are_computed_per_baseline(self, figure2):
        for baseline in ("lws=1", "lws=32"):
            ratios = figure2.ratios("vecadd", baseline)
            assert len(ratios) == 3
            stats = figure2.stats("vecadd", baseline)
            assert stats.count == 3
            assert stats.worst <= stats.average <= stats.best

    def test_hardware_aware_mapping_is_never_dramatically_worse(self, figure2):
        for problem in figure2.problems():
            for baseline in ("lws=1", "lws=32"):
                assert figure2.stats(problem, baseline).worst >= 0.8

    def test_average_speedup_and_worst_case_queries(self, figure2):
        assert figure2.average_speedup("lws=1", category="math") >= 1.0
        assert figure2.worst_case_slowdown("lws=32") >= 1.0
        with pytest.raises(ValueError):
            figure2.average_speedup("lws=1", category="nonexistent")

    def test_cycles_lookup_and_missing_records(self, figure2):
        assert figure2.cycles("vecadd", "1c2w2t", "ours") > 0
        with pytest.raises(KeyError):
            figure2.cycles("vecadd", "1c2w2t", "lws=99")
        with pytest.raises(KeyError):
            figure2.ratios("vecadd", "lws=99")

    def test_strategies_must_include_ours(self):
        from repro.core.mapper import NaiveMapping
        with pytest.raises(ValueError, match="ours"):
            run_figure2(["vecadd"], [ArchConfig.from_name("1c2w2t")], scale="smoke",
                        strategies={"lws=1": NaiveMapping()})

    def test_progress_callback_is_invoked(self):
        seen = []
        run_figure2(["vecadd"], [ArchConfig.from_name("1c2w2t")], scale="smoke",
                    progress=lambda *args: seen.append(args))
        assert len(seen) == 3


# ----------------------------------------------------------------------
# claims, ablations, report rendering
# ----------------------------------------------------------------------
class TestClaimsAndReports:
    def test_claims_are_evaluated_with_measured_values(self, figure2):
        claims = evaluate_claims(figure2)
        assert {c.claim_id for c in claims.outcomes} == {"C1", "C2", "C3", "C4"}
        c1 = claims.by_id("C1")
        assert c1.paper_value == pytest.approx(1.3)
        assert c1.measured_value > 0
        assert claims.by_id("C4").holds        # Eq. 1 degeneracy is exact by construction
        assert "C1" in claims.render()
        with pytest.raises(KeyError):
            claims.by_id("C9")

    def test_figure2_table_rendering(self, figure2):
        table = render_figure2_table(figure2)
        assert "vecadd" in table and "sgemm" in table
        assert "lws=1/ours avg" in table
        assert table.count("|") > 20

    def test_speedup_summary_and_markdown_report(self, figure2):
        summary = render_speedup_summary(figure2)
        assert "speed-up over lws=1" in summary
        report = render_markdown_report(figure2, claims=evaluate_claims(figure2),
                                        figure1_text="trace goes here", title="Tiny report")
        assert report.startswith("# Tiny report")
        assert "Figure 1" in report and "Figure 2" in report
        assert "trace goes here" in report

    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(line.startswith("|") and line.endswith("|") for line in lines)

    def test_overhead_sensitivity_ablation_is_monotone(self):
        records = overhead_sensitivity("vecadd", scale="smoke",
                                       config=ArchConfig.from_name("2c2w4t"),
                                       overheads=(0, 64, 512))
        assert len(records) == 3
        ratios = [r.ratio for r in records]
        # more launch overhead -> the naive lws=1 mapping falls further behind
        assert ratios[0] <= ratios[1] <= ratios[2]
        assert records[0].naive_cycles > 0

    def test_boundedness_study_classifies_each_problem(self):
        records = boundedness_study(["vecadd", "sgemm"], scale="smoke",
                                    config=ArchConfig.from_name("1c2w4t"))
        by_name = {r.problem: r for r in records}
        assert set(by_name) == {"vecadd", "sgemm"}
        for record in records:
            assert record.boundedness in ("memory-bound", "compute-bound")
            assert 0.0 <= record.memory_intensity <= 1.0
        # vecadd does almost no arithmetic per load; sgemm amortises loads over FMAs
        assert by_name["vecadd"].memory_intensity > by_name["sgemm"].memory_intensity
