"""Tests for the OpenCL-flavoured host API (repro.runtime.api)."""

import numpy as np
import pytest

from repro.runtime.api import CommandQueue, Context
from repro.runtime.device import Device
from repro.sim.config import ArchConfig

CONFIG = ArchConfig(cores=2, warps_per_core=2, threads_per_warp=4)


def test_context_accepts_config_name_device_or_config():
    assert Context("1c2w4t").device.name == "1c2w4t"
    assert Context(CONFIG).device.name == CONFIG.name
    device = Device(CONFIG)
    assert Context(device).device is device


def test_enqueue_by_kernel_name_with_runtime_lws():
    context = Context(CONFIG)
    queue = context.queue()
    n = 32
    a, b = np.ones(n), np.full(n, 2.0)
    result = queue.enqueue_nd_range("vecadd", {"a": a, "b": b, "c": np.zeros(n)}, n)
    np.testing.assert_allclose(result.outputs["c"], 3.0)
    assert result.local_size == 2          # ceil(32 / 16) from Eq. 1
    assert queue.last_result() is result
    assert queue.history == [result]


def test_enqueue_with_explicit_lws_matches_manual_choice():
    context = Context(CONFIG)
    queue = context.queue()
    n = 32
    args = {"a": np.ones(n), "b": np.ones(n), "c": np.zeros(n)}
    result = queue.enqueue_nd_range("vecadd", args, n, local_size=8)
    assert result.local_size == 8
    assert result.num_workgroups == 4


def test_context_buffer_helpers():
    context = Context(CONFIG)
    buffer = context.buffer(np.arange(8.0), name="data")
    assert buffer.size_words == 8
    empty = context.empty_buffer(16, name="scratch")
    assert empty.size_words == 16
    assert empty.address != buffer.address


def test_queue_empty_history():
    queue = Context(CONFIG).queue()
    assert queue.last_result() is None
