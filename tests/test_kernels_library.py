"""Functional tests of the nine library kernels against numpy references.

Every kernel is launched through the full runtime at smoke scale and its
writable buffers are compared against the problem's numpy reference, for the
hardware-aware mapping and for a couple of hardware-agnostic lws values (the
result must not depend on the mapping).
"""

import numpy as np
import pytest

from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.workloads.problems import PAPER_PROBLEM_NAMES, make_problem

CONFIG = ArchConfig(cores=2, warps_per_core=2, threads_per_warp=4)


def _check(problem, local_size):
    device = Device(CONFIG)
    result = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                           local_size=local_size)
    reference = problem.reference_outputs()
    assert reference, f"problem {problem.name} has no reference"
    for name, expected in reference.items():
        actual = result.outputs[name]
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-9,
                                   err_msg=f"{problem.name}.{name} (lws={local_size})")
    return result


@pytest.mark.parametrize("name", PAPER_PROBLEM_NAMES)
def test_kernel_matches_numpy_with_hardware_aware_mapping(name):
    problem = make_problem(name, scale="smoke")
    _check(problem, local_size=None)


@pytest.mark.parametrize("name", PAPER_PROBLEM_NAMES)
def test_kernel_matches_numpy_with_naive_mapping(name):
    problem = make_problem(name, scale="smoke")
    _check(problem, local_size=1)


@pytest.mark.parametrize("name", ["vecadd", "sgemm", "gaussian", "gcn_aggregate"])
def test_kernel_matches_numpy_with_awkward_lws(name):
    """A lws that does not divide gws exercises partial workgroups."""
    problem = make_problem(name, scale="smoke")
    _check(problem, local_size=7)


@pytest.mark.parametrize("name", PAPER_PROBLEM_NAMES)
def test_kernel_results_are_mapping_independent(name):
    """Different lws values must produce bit-identical results."""
    problem = make_problem(name, scale="smoke")
    first = _check(problem, local_size=1)
    second = _check(problem, local_size=13)
    for key in first.outputs:
        np.testing.assert_array_equal(first.outputs[key], second.outputs[key])


def test_sgemm_nontrivial_values():
    problem = make_problem("sgemm", scale="smoke")
    result = _check(problem, local_size=None)
    # sanity: the output is not all zeros (the reference already guarantees
    # correctness; this guards against a vacuous all-zero comparison)
    assert np.abs(result.outputs["c"]).max() > 0.0


def test_relu_clamps_negative_values():
    problem = make_problem("relu", scale="smoke")
    result = _check(problem, local_size=None)
    assert (result.outputs["y"] >= 0.0).all()
    # and the input really did contain negative values
    assert (np.asarray(problem.arguments["x"]) < 0).any()


def test_gaussian_preserves_constant_images():
    """A constant image is a fixed point of a normalised blur."""
    from repro.kernels.library import GAUSSIAN
    from repro.kernels.library.gaussian import GAUSSIAN_WEIGHTS

    height = width = 8
    image = np.full((height, width), 3.25)
    weights = np.asarray(GAUSSIAN_WEIGHTS)
    device = Device(CONFIG)
    result = launch_kernel(
        device, GAUSSIAN,
        {"img": image, "weights": weights, "out": np.zeros_like(image),
         "width": width, "height": height},
        height * width, local_size=None)
    np.testing.assert_allclose(result.outputs["out"], 3.25, rtol=1e-9)


def test_conv2d_zero_input_gives_zero_output():
    from repro.kernels.library import CONV2D
    from repro.workloads.images import random_conv_weights

    height = width = 4
    channels = 2
    device = Device(CONFIG)
    result = launch_kernel(
        device, CONV2D,
        {"input": np.zeros((channels, height, width)),
         "weights": random_conv_weights(channels, channels, 3, seed=3),
         "output": np.zeros((channels, height, width)),
         "width": width, "height": height, "in_channels": channels},
        channels * height * width, local_size=None)
    np.testing.assert_array_equal(result.outputs["output"], 0.0)


def test_gcn_aggregate_on_isolated_nodes_is_identity():
    """With no edges, mean aggregation over the self-augmented neighbourhood
    returns the node's own features."""
    from repro.kernels.library import GCN_AGGREGATE

    nodes, hidden = 6, 4
    features = np.arange(nodes * hidden, dtype=np.float64).reshape(nodes, hidden)
    row_ptr = np.zeros(nodes + 1)
    col_idx = np.zeros(0)
    device = Device(CONFIG)
    result = launch_kernel(
        device, GCN_AGGREGATE,
        {"row_ptr": row_ptr, "col_idx": col_idx, "x": features,
         "out": np.zeros_like(features), "hidden": hidden},
        nodes * hidden, local_size=None)
    np.testing.assert_allclose(result.outputs["out"], features.ravel())


def test_knn_distance_to_self_is_zero():
    from repro.kernels.library import KNN

    lat = np.array([10.0, 20.0, 30.0])
    lng = np.array([1.0, 2.0, 3.0])
    device = Device(CONFIG)
    result = launch_kernel(
        device, KNN,
        {"lat": lat, "lng": lng, "dist": np.zeros(3), "lat_q": 20.0, "lng_q": 2.0},
        3, local_size=None)
    assert result.outputs["dist"][1] == pytest.approx(0.0)
    assert result.outputs["dist"][0] == pytest.approx(np.sqrt(100 + 1))
