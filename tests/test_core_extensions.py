"""Tests for the bandwidth-aware mapping extension (repro.core.extensions)."""

import pytest

from repro.core.extensions import BandwidthAwareMapping, MemoryProfile
from repro.core.optimizer import optimal_local_size
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.sim.stats import PerfCounters
from repro.workloads.problems import make_problem


def test_memory_profile_validation():
    MemoryProfile(lines_per_item=0.2, cycles_per_item=20)
    with pytest.raises(ValueError):
        MemoryProfile(lines_per_item=-1, cycles_per_item=20)
    with pytest.raises(ValueError):
        MemoryProfile(lines_per_item=0.1, cycles_per_item=0)


def test_profile_from_counters():
    counters = PerfCounters(dram_lines=200, lane_instructions=20_000)
    profile = MemoryProfile.from_counters(counters, global_size=1000)
    assert profile.lines_per_item == pytest.approx(0.2)
    assert profile.cycles_per_item == pytest.approx(20.0)
    with pytest.raises(ValueError):
        MemoryProfile.from_counters(counters, global_size=0)


def test_saturating_lanes_scales_with_bandwidth_and_intensity():
    config = ArchConfig(cores=4, warps_per_core=8, threads_per_warp=8,
                        dram_lines_per_cycle=2.0)
    heavy = MemoryProfile(lines_per_item=1.0, cycles_per_item=10)     # very memory intensive
    light = MemoryProfile(lines_per_item=0.01, cycles_per_item=10)
    assert heavy.saturating_lanes(config) < light.saturating_lanes(config)
    # a compute-only profile never caps the parallelism
    none = MemoryProfile(lines_per_item=0.0, cycles_per_item=10)
    assert none.saturating_lanes(config) == config.hardware_parallelism


def test_without_profile_the_strategy_is_equation_1():
    strategy = BandwidthAwareMapping()
    config = ArchConfig(cores=8, warps_per_core=8, threads_per_warp=8)
    for gws in (128, 4096, 100_000):
        assert strategy.select_local_size(gws, config) == optimal_local_size(gws, config)
    assert "Eq. 1" in strategy.describe()


def test_memory_bound_profile_enlarges_lws_on_big_machines():
    config = ArchConfig(cores=16, warps_per_core=16, threads_per_warp=16,
                        dram_lines_per_cycle=1.0)                     # hp = 4096
    profile = MemoryProfile(lines_per_item=0.5, cycles_per_item=20)   # saturates at ~80 lanes
    strategy = BandwidthAwareMapping(profile)
    gws = 8192
    chosen = strategy.select_local_size(gws, config)
    baseline = optimal_local_size(gws, config)
    assert chosen > baseline
    # it still guarantees a single kernel call (never below Eq. 1)
    assert chosen >= baseline
    assert "lines/item" in strategy.describe()


def test_compute_bound_profile_keeps_equation_1():
    config = ArchConfig(cores=4, warps_per_core=4, threads_per_warp=4)
    profile = MemoryProfile(lines_per_item=0.001, cycles_per_item=200)
    strategy = BandwidthAwareMapping(profile)
    assert strategy.select_local_size(4096, config) == optimal_local_size(4096, config)


def test_invalid_headroom_rejected():
    with pytest.raises(ValueError):
        BandwidthAwareMapping(headroom=0)


def test_profile_guided_mapping_end_to_end_is_competitive():
    """Profile a memory-bound kernel, remap with the extension, compare cycles."""
    problem = make_problem("vecadd", scale="bench")
    config = ArchConfig(cores=8, warps_per_core=8, threads_per_warp=8,
                        dram_lines_per_cycle=0.5)      # scarce bandwidth
    device = Device(config)
    baseline = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                             local_size=None)
    strategy = BandwidthAwareMapping.from_profile_run(baseline.counters, problem.global_size)
    tuned_lws = strategy.select_local_size(problem.global_size, config)
    tuned = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                          local_size=tuned_lws)
    # The extension must never be substantially worse than Eq. 1 (it spawns
    # fewer warps for the same bandwidth-limited throughput).
    assert tuned.cycles <= baseline.cycles * 1.15
    assert tuned.counters.warps_launched <= baseline.counters.warps_launched
