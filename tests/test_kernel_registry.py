"""Tests for the kernel registry (repro.kernels.registry)."""

import pytest

from repro.kernels.kernel import Kernel
from repro.kernels.registry import (
    UnknownKernelError,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.kernels.signature import BufferParam


def _make_kernel(name: str) -> Kernel:
    return Kernel(name=name, params=(BufferParam("x"),), body=lambda b, gid, args: b.nop())


def test_library_kernels_are_registered_on_import():
    names = available_kernels()
    for expected in ("vecadd", "relu", "saxpy", "sgemm", "knn", "gaussian",
                     "gcn_aggregate", "gcn_layer", "conv2d"):
        assert expected in names


def test_get_kernel_returns_the_registered_object():
    kernel = get_kernel("vecadd")
    assert kernel.name == "vecadd"


def test_get_unknown_kernel_raises_with_suggestions():
    with pytest.raises(UnknownKernelError, match="vecadd"):
        get_kernel("definitely_not_a_kernel")


def test_register_duplicate_raises_unless_replace():
    kernel = _make_kernel("test_registry_dup")
    register_kernel(kernel)
    try:
        with pytest.raises(ValueError):
            register_kernel(_make_kernel("test_registry_dup"))
        replacement = _make_kernel("test_registry_dup")
        assert register_kernel(replacement, replace=True) is replacement
        assert get_kernel("test_registry_dup") is replacement
    finally:
        # keep the global registry clean for other tests
        from repro.kernels import registry as registry_module
        registry_module._REGISTRY.pop("test_registry_dup", None)


def test_available_kernels_filters_by_tag():
    math_kernels = available_kernels(tag="math")
    ml_kernels = available_kernels(tag="ml")
    assert "vecadd" in math_kernels and "vecadd" not in ml_kernels
    assert "gcn_layer" in ml_kernels and "gcn_layer" not in math_kernels
