"""Tests for the static mapping analysis (repro.core.analysis)."""

import pytest

from repro.core.analysis import MappingAnalyzer
from repro.sim.config import ArchConfig


FIG1 = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)     # hp = 8


def test_figure1_regimes_are_classified():
    analyzer = MappingAnalyzer(FIG1)
    assert analyzer.analyze(128, 1).regime == "multiple-calls"
    assert analyzer.analyze(128, 16).regime == "balanced"
    assert analyzer.analyze(128, 32).regime == "under-utilised"
    assert analyzer.analyze(128, 64).regime == "under-utilised"


def test_call_counts_match_the_dispatch_maths():
    analyzer = MappingAnalyzer(FIG1)
    assert analyzer.analyze(128, 1).num_calls == 16
    assert analyzer.analyze(128, 16).num_calls == 1
    assert analyzer.analyze(128, 32).num_calls == 1


def test_lane_utilization_matches_expectations():
    analyzer = MappingAnalyzer(FIG1)
    assert analyzer.analyze(128, 16).lane_utilization == pytest.approx(1.0)
    assert analyzer.analyze(128, 32).lane_utilization == pytest.approx(0.5)
    assert analyzer.analyze(128, 64).lane_utilization == pytest.approx(0.25)


def test_optimal_flag_and_suggestion():
    analyzer = MappingAnalyzer(FIG1)
    good = analyzer.analyze(128, 16)
    assert good.is_optimal
    bad = analyzer.analyze(128, 32)
    assert not bad.is_optimal
    assert bad.optimal_local_size == 16
    assert "Eq.1" in bad.summary()


def test_analyze_optimal_shortcut():
    analyzer = MappingAnalyzer(FIG1)
    analysis = analyzer.analyze_optimal(128)
    assert analysis.local_size == 16
    assert analysis.is_optimal


def test_core_and_warp_utilization_on_a_multicore_machine():
    config = ArchConfig(cores=4, warps_per_core=4, threads_per_warp=8)   # hp = 128
    analyzer = MappingAnalyzer(config)
    # 8 workgroups spread over 4 cores -> 2 per core -> 1 warp partially used
    analysis = analyzer.analyze(256, 32)
    assert analysis.num_workgroups == 8
    assert analysis.core_utilization == pytest.approx(1.0)
    assert analysis.warp_utilization == pytest.approx(0.25)

    # a single workgroup only touches one core
    single = analyzer.analyze(256, 256)
    assert single.core_utilization == pytest.approx(0.25)


def test_local_size_clamped_to_global_size():
    analyzer = MappingAnalyzer(FIG1)
    analysis = analyzer.analyze(8, 512)
    assert analysis.local_size == 8
    assert analysis.num_workgroups == 1


def test_invalid_inputs_rejected():
    analyzer = MappingAnalyzer(FIG1)
    with pytest.raises(ValueError):
        analyzer.analyze(0, 1)
    with pytest.raises(ValueError):
        analyzer.analyze(16, 0)


def test_compare_mentions_extra_calls_and_idle_lanes():
    analyzer = MappingAnalyzer(FIG1)
    text = analyzer.compare(128, candidate_lws=1)
    assert "extra kernel call" in text
    text2 = analyzer.compare(128, candidate_lws=64)
    assert "idle" in text2
