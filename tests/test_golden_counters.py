"""Golden performance-counter regression fixtures.

Every (kernel, machine) point of a fixed seed grid has its full
:class:`~repro.sim.stats.PerfCounters` snapshot checked into
``tests/golden/<kernel>.json``.  Any simulator change that moves *any*
counter by *any* amount -- cycle model, cache policy, coalescer, scheduler,
either engine -- fails here loudly, listing the exact counters that moved.

When a counter change is intentional, regenerate the fixtures and commit the
diff alongside the change::

    PYTHONPATH=src python -m pytest tests/test_golden_counters.py --update-golden

The snapshots are engine-independent by construction (the engines are
bit-identical, see ``tests/test_engine_differential.py``), so the same
fixtures serve ``REPRO_ENGINE=reference`` and ``REPRO_ENGINE=fast`` runs.
"""

import json
from pathlib import Path

import pytest

from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.workloads.problems import available_problems, make_problem

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The seed grid: every library kernel on the Figure-1 machine and a
#: multi-core mid-size machine, smoke scale, seed 0, runtime (Eq.-1) lws.
GOLDEN_CONFIGS = ("1c2w4t", "4c4w8t")
GOLDEN_SEED = 0
GOLDEN_SCALE = "smoke"


def golden_path(problem_name: str) -> Path:
    return GOLDEN_DIR / f"{problem_name}.json"


def simulate_point(problem_name: str, config_name: str) -> dict:
    """Run one grid point and return its snapshot payload."""
    problem = make_problem(problem_name, scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    device = Device(ArchConfig.from_name(config_name))
    result = launch_kernel(device, problem.kernel, problem.arguments,
                           problem.global_size)
    return {
        "cycles": result.cycles,
        "local_size": result.local_size,
        "num_calls": result.num_calls,
        "counters": {k: v for k, v in sorted(result.counters.as_dict().items())},
    }


def load_golden(problem_name: str) -> dict:
    path = golden_path(problem_name)
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; generate it with "
            f"'python -m pytest tests/test_golden_counters.py --update-golden'"
        )
    with path.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("problem_name", available_problems())
def test_golden_counters(problem_name, update_golden):
    snapshots = {config: simulate_point(problem_name, config)
                 for config in GOLDEN_CONFIGS}

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        with golden_path(problem_name).open("w") as handle:
            json.dump(snapshots, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return

    golden = load_golden(problem_name)
    assert set(golden) == set(snapshots), (
        f"{problem_name}: golden fixture covers configs {sorted(golden)} but the "
        f"grid is {sorted(snapshots)}; rerun with --update-golden"
    )
    for config, snapshot in snapshots.items():
        expected = golden[config]
        moved = {}
        for key in ("cycles", "local_size", "num_calls"):
            if snapshot[key] != expected[key]:
                moved[key] = (expected[key], snapshot[key])
        for counter, expected_value in expected["counters"].items():
            actual = snapshot["counters"].get(counter)
            if actual != expected_value:
                moved[f"counters.{counter}"] = (expected_value, actual)
        extra = set(snapshot["counters"]) - set(expected["counters"])
        assert not extra, (
            f"{problem_name}/{config}: new counters {sorted(extra)} not in the "
            f"golden fixture; rerun with --update-golden"
        )
        assert not moved, (
            f"{problem_name}/{config}: counters moved (golden -> current): {moved}. "
            f"If intentional, regenerate with --update-golden and commit the diff."
        )
