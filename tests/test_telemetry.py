"""Tests for the telemetry layer (repro.telemetry).

Covers the acceptance properties of the subsystem: span nesting and
worker-payload merging, the disabled path being a strict no-op (results
bit-equal with telemetry on and off), journal flush/iterate round trips,
Prometheus and Chrome-trace exports, warehouse ingest of telemetry journals
(including the schema-bump drop-and-rebuild), the progress line, and the
structured stderr logger.
"""

import json
import logging
import sys

import pytest

from repro.campaign import Campaign, CampaignRunner, JobSpec, ResultCache
from repro.sim.config import ArchConfig
from repro.telemetry import (
    DEFAULT_BUCKETS,
    ProgressLine,
    RECORDER,
    TELEMETRY_ENV,
    Recorder,
    flush,
    from_chrome_trace,
    get_logger,
    iter_telemetry_records,
    lint_prometheus,
    payload_records,
    render_summary,
    summarize,
    to_chrome_trace,
    to_json,
    to_prometheus,
)
from repro.telemetry.log import LOG_LEVEL_ENV
from repro.warehouse import (
    KIND_TELEMETRY,
    open_store,
    parity_check,
    rebuild,
    sync,
    table_counts,
)

CONFIG = ArchConfig.from_name("1c2w4t")


def spec(**overrides) -> JobSpec:
    defaults = dict(problem="vecadd", config=CONFIG, scale="smoke", seed=0)
    defaults.update(overrides)
    return JobSpec(**defaults)


@pytest.fixture
def telemetry_on(monkeypatch):
    """Enable the process-wide recorder for one test, clean before and after."""
    monkeypatch.setenv(TELEMETRY_ENV, "1")
    RECORDER.configure_from_env()
    RECORDER.reset()
    yield RECORDER
    RECORDER.reset()
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    RECORDER.configure_from_env()


# ----------------------------------------------------------------------
# Recorder: disabled path, spans, metrics
# ----------------------------------------------------------------------
class TestRecorderDisabled:
    def test_disabled_span_is_one_shared_null_object(self):
        recorder = Recorder(enabled=False)
        assert recorder.span("a") is recorder.span("b", tag=1)
        with recorder.span("a"):
            pass
        assert recorder.snapshot()["spans"] == []

    def test_disabled_metrics_record_nothing(self):
        recorder = Recorder(enabled=False)
        recorder.count("c")
        recorder.gauge("g", 3.0)
        recorder.observe("h", 0.5)
        recorder.record_span("s", 0.0, 1.0)
        snapshot = recorder.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"] == []


class TestRecorderEnabled:
    def test_spans_nest_through_the_scope_stack(self):
        recorder = Recorder(enabled=True)
        with recorder.span("outer", campaign="x"):
            with recorder.span("inner"):
                pass
        spans = recorder.snapshot()["spans"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert outer["tags"] == {"campaign": "x"}
        assert inner["duration"] <= outer["duration"]

    def test_record_span_attaches_under_the_open_span(self):
        recorder = Recorder(enabled=True)
        with recorder.span("outer"):
            recorder.record_span("hit", 123.0, 0.001, job_hash="abc")
        hit, outer = recorder.snapshot()["spans"]
        assert hit["name"] == "hit"
        assert hit["parent"] == outer["id"]
        assert hit["start"] == 123.0 and hit["duration"] == 0.001

    def test_counters_gauges_histograms(self):
        recorder = Recorder(enabled=True)
        recorder.count("jobs")
        recorder.count("jobs", 2)
        recorder.gauge("last", 1.0)
        recorder.gauge("last", 7.0)
        recorder.observe("wait", 0.002)
        recorder.observe("wait", 1000.0)      # beyond the last bound -> +Inf
        snapshot = recorder.snapshot()
        assert snapshot["counters"]["jobs"] == 3
        assert recorder.counter_value("jobs") == 3
        assert snapshot["gauges"]["last"] == 7.0
        histogram = snapshot["histograms"]["wait"]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(1000.002)
        assert histogram["buckets"][-1] == 1          # the implicit +Inf bucket
        assert sum(histogram["buckets"]) == histogram["count"]
        assert len(histogram["buckets"]) == len(DEFAULT_BUCKETS) + 1


class TestScopesAndMerge:
    def test_pop_scope_returns_a_detached_payload(self):
        recorder = Recorder(enabled=True)
        recorder.push_scope()
        with recorder.span("job.execute"):
            recorder.count("executed")
        payload = recorder.pop_scope()
        assert [s["name"] for s in payload["spans"]] == ["job.execute"]
        assert payload["counters"] == {"executed": 1}
        assert recorder.snapshot()["spans"] == []     # base scope untouched

    def test_popping_the_base_scope_is_an_error(self):
        with pytest.raises(RuntimeError, match="base scope"):
            Recorder(enabled=True).pop_scope()

    def test_merge_remaps_ids_and_reparents_under_the_open_span(self):
        worker = Recorder(enabled=True)
        worker.push_scope()
        with worker.span("job.execute"):
            with worker.span("engine.phase"):
                pass
            worker.observe("walk", 0.01)
        payload = worker.pop_scope()

        parent = Recorder(enabled=True)
        parent.observe("walk", 0.02)
        with parent.span("campaign.run"):
            parent.merge(payload)
        spans = {s["name"]: s for s in parent.snapshot()["spans"]}
        run = spans["campaign.run"]
        job = spans["job.execute"]
        phase = spans["engine.phase"]
        assert job["parent"] == run["id"]             # root re-parented
        assert phase["parent"] == job["id"]           # nesting preserved
        assert len({s["id"] for s in spans.values()}) == 3
        histogram = parent.snapshot()["histograms"]["walk"]
        assert histogram["count"] == 2                # bucket-wise merge
        assert histogram["sum"] == pytest.approx(0.03)

    def test_merge_into_a_disabled_recorder_is_a_no_op(self):
        recorder = Recorder(enabled=False)
        recorder.merge({"spans": [{"id": 1, "parent": None, "name": "x",
                                   "start": 0, "duration": 0, "tags": {}}],
                        "counters": {"c": 1}})
        assert recorder.snapshot()["spans"] == []


# ----------------------------------------------------------------------
# Campaign integration: worker payloads, bit-identity
# ----------------------------------------------------------------------
class TestCampaignTelemetry:
    def test_worker_pool_telemetry_merges_into_the_parent(self, telemetry_on):
        specs = [spec(seed=s) for s in range(3)]
        runner = CampaignRunner(workers=2)
        with RECORDER.span("campaign.wrapper"):
            runner.run(Campaign(name="t", specs=specs))
        snapshot = RECORDER.snapshot()
        executes = [s for s in snapshot["spans"] if s["name"] == "job.execute"]
        assert len(executes) == 3                     # one per distinct job
        runs = [s for s in snapshot["spans"] if s["name"] == "campaign.run"]
        assert len(runs) == 1
        assert all(e["parent"] == runs[0]["id"] for e in executes)
        assert snapshot["counters"]["campaign.jobs.executed"] == 3
        assert snapshot["histograms"]["campaign.queue_wait_seconds"]["count"] == 3

    def test_outcomes_never_carry_telemetry_payloads(self, telemetry_on, tmp_path):
        runner = CampaignRunner(cache=ResultCache(tmp_path))
        outcome = runner.run(Campaign(name="t", specs=[spec(), spec()]))
        assert all(r.telemetry is None for r in outcome.results)
        # cache-served second run: hit spans, still no payloads on results
        warm = CampaignRunner(cache=ResultCache(tmp_path)).run(
            Campaign(name="t", specs=[spec()]))
        assert warm.results[0].from_cache
        assert warm.results[0].telemetry is None
        hits = [s for s in RECORDER.snapshot()["spans"]
                if s["name"] == "job.cache_hit"]
        assert len(hits) == 1

    def test_results_are_bit_equal_with_telemetry_on_and_off(self, monkeypatch):
        specs = [spec(), spec(problem="relu"), spec(local_size=2)]

        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        RECORDER.configure_from_env()
        off = CampaignRunner().run(Campaign(name="t", specs=specs))

        monkeypatch.setenv(TELEMETRY_ENV, "1")
        RECORDER.configure_from_env()
        RECORDER.reset()
        try:
            on = CampaignRunner().run(Campaign(name="t", specs=specs))
            assert RECORDER.snapshot()["spans"]       # telemetry really ran
        finally:
            RECORDER.reset()
            monkeypatch.delenv(TELEMETRY_ENV, raising=False)
            RECORDER.configure_from_env()
        def simulated(outcome):
            # elapsed_seconds is wall-clock: it differs between ANY two runs.
            # Everything the simulator computed must be bit-equal.
            row = outcome.to_dict()
            row.pop("elapsed_seconds")
            return row

        assert [simulated(r) for r in off.results] == \
               [simulated(r) for r in on.results]


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_flush_and_iterate_round_trip(self, telemetry_on, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with RECORDER.span("campaign.run", jobs=2):
            RECORDER.count("jobs", 2)
            RECORDER.observe("wait", 0.5)
        written = flush(RECORDER, path=path, run="r1")
        assert written == 3                           # 1 span + 2 metrics
        records = list(iter_telemetry_records(path))
        assert len(records) == 3
        kinds = sorted(r["kind"] for r in records)
        assert kinds == ["metric", "metric", "span"]
        assert all(r["run"] == "r1" for r in records)
        span = next(r for r in records if r["kind"] == "span")
        assert span["name"] == "campaign.run" and span["tags"] == {"jobs": 2}

    def test_flush_drains_so_repeated_flushes_append_deltas(self, telemetry_on,
                                                            tmp_path):
        path = tmp_path / "telemetry.jsonl"
        RECORDER.count("jobs")
        assert flush(RECORDER, path=path) == 1
        assert flush(RECORDER, path=path) == 0        # drained: nothing new
        RECORDER.count("jobs")
        assert flush(RECORDER, path=path) == 1
        values = [r["value"] for r in iter_telemetry_records(path)]
        assert values == [1, 1]                       # deltas, not re-writes

    def test_empty_flush_creates_no_file(self, telemetry_on, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        assert flush(RECORDER, path=path) == 0
        assert not path.exists()

    def test_half_written_tail_is_repaired_not_fatal(self, telemetry_on,
                                                     tmp_path):
        path = tmp_path / "telemetry.jsonl"
        RECORDER.count("a")
        flush(RECORDER, path=path)
        with path.open("a") as journal:
            journal.write('{"kind": "span", "half')   # a crash mid-append
        RECORDER.count("b")
        flush(RECORDER, path=path)
        names = sorted(r["name"] for r in iter_telemetry_records(path))
        assert names == ["a", "b"]


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def _sample_records():
    recorder = Recorder(enabled=True)
    with recorder.span("campaign.run", campaign="t"):
        with recorder.span("job.execute", problem="vecadd"):
            pass
    recorder.count("campaign.jobs.executed", 4)
    recorder.gauge("campaign.last_run.jobs", 4)
    recorder.observe("campaign.queue_wait_seconds", 0.01)
    recorder.observe("campaign.queue_wait_seconds", 2.0)
    return payload_records(recorder.drain(), run="r1", pid=42)


class TestExports:
    def test_summary_aggregates_spans_and_metrics(self):
        summary = summarize(_sample_records())
        assert summary["spans_total"] == 2
        assert summary["spans"]["campaign.run"]["count"] == 1
        assert summary["counters"]["campaign.jobs.executed"] == 4
        assert summary["gauges"]["campaign.last_run.jobs"] == 4
        assert summary["histograms"]["campaign.queue_wait_seconds"]["count"] == 2
        text = render_summary(summary)
        assert "campaign.run" in text and "2 span(s)" in text
        json.loads(to_json(summary))                  # valid, stable JSON

    def test_empty_summary_says_how_to_enable(self):
        text = render_summary(summarize([]))
        assert "no telemetry recorded yet" in text

    def test_prometheus_export_passes_the_lint(self):
        text = to_prometheus(summarize(_sample_records()))
        assert lint_prometheus(text) == []
        assert "# TYPE repro_campaign_jobs_executed counter" in text
        assert 'repro_campaign_queue_wait_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_span_campaign_run_seconds_total" in text

    def test_prometheus_lint_catches_violations(self):
        assert lint_prometheus("not a metric line!\n")
        broken = ("# TYPE repro_h histogram\n"
                  'repro_h_bucket{le="+Inf"} 3\n'
                  "repro_h_sum 1\n"
                  "repro_h_count 2\n")
        assert any("+Inf bucket" in v for v in lint_prometheus(broken))
        assert any("no TYPE" in v for v in lint_prometheus("untyped_sample 1\n"))

    def test_chrome_trace_round_trips(self):
        records = _sample_records()
        spans = [r for r in records if r["kind"] == "span"]
        trace = to_chrome_trace(records)
        assert trace["traceEvents"] and all(
            e["ph"] == "X" for e in trace["traceEvents"])
        back = from_chrome_trace(trace)
        assert [(s["name"], s["tags"]) for s in back] == \
               [(s["name"], s["tags"]) for s in spans]
        for original, roundtripped in zip(spans, back):
            assert roundtripped["duration"] == pytest.approx(
                original["duration"], abs=1e-9)
            assert roundtripped["id"] == original["id"]
            assert roundtripped["parent"] == original["parent"]


# ----------------------------------------------------------------------
# Warehouse ingest
# ----------------------------------------------------------------------
@pytest.fixture
def telemetry_journal(tmp_path):
    path = tmp_path / "tele" / "telemetry.jsonl"
    path.parent.mkdir(parents=True)
    with path.open("w") as journal:
        for record in _sample_records():
            journal.write(json.dumps(record, sort_keys=True) + "\n")
    return path


class TestWarehouseIngest:
    def test_sync_projects_spans_and_metrics_tables(self, tmp_path,
                                                    telemetry_journal):
        with open_store(tmp_path / "wh.sqlite") as store:
            report = sync(store, journals=[(telemetry_journal, KIND_TELEMETRY)])
            assert report.ingested == 5               # 2 spans + 3 metric rows
            counts = table_counts(store)
            assert counts["spans"] == 2
            assert counts["metrics"] == 3
            names = [row[0] for row in store.query(
                "SELECT name FROM spans ORDER BY offset").rows]
            assert names == ["job.execute", "campaign.run"]
            histogram = store.query(
                "SELECT value_sum, observations, buckets FROM metrics "
                "WHERE metric_type = 'histogram'").rows
            assert len(histogram) == 1
            value_sum, observations, buckets = histogram[0]
            assert observations == 2
            assert value_sum == pytest.approx(2.01)
            assert len(json.loads(buckets)) == len(DEFAULT_BUCKETS) + 1

    def test_sync_is_incremental_and_parity_holds(self, tmp_path,
                                                  telemetry_journal):
        journals = [(telemetry_journal, KIND_TELEMETRY)]
        with open_store(tmp_path / "wh.sqlite") as store:
            sync(store, journals=journals)
            assert sync(store, journals=journals).ingested == 0   # no-op
            with telemetry_journal.open("a") as journal:
                journal.write(json.dumps(
                    {"schema": 1, "simulator": _sample_records()[0]["simulator"],
                     "run": "r2", "pid": 43, "kind": "metric",
                     "type": "counter", "name": "late", "value": 1.0},
                    sort_keys=True) + "\n")
            assert sync(store, journals=journals).ingested == 1   # the append
            assert parity_check(store, journals=journals) == []

    def test_parity_detects_tampered_telemetry_rows(self, tmp_path,
                                                    telemetry_journal):
        journals = [(telemetry_journal, KIND_TELEMETRY)]
        with open_store(tmp_path / "wh.sqlite") as store:
            sync(store, journals=journals)
            store.execute("UPDATE spans SET raw = '{}' "
                          "WHERE name = 'campaign.run'")
            store.commit()
            assert parity_check(store, journals=journals)

    def test_rebuild_after_schema_bump_recovers_telemetry(self, tmp_path,
                                                          telemetry_journal):
        path = tmp_path / "wh.sqlite"
        journals = [(telemetry_journal, KIND_TELEMETRY)]
        with open_store(path) as store:
            sync(store, journals=journals)
            store.execute("UPDATE meta SET value = '0' "
                          "WHERE key = 'schema_version'")
        with open_store(path) as store:
            # the version bump dropped every derived row...
            assert table_counts(store)["spans"] == 0
            # ...and a rebuild re-derives them from the journal, with parity.
            rebuild(store, journals=journals)
            assert table_counts(store)["spans"] == 2
            assert parity_check(store, journals=journals) == []


# ----------------------------------------------------------------------
# Progress line
# ----------------------------------------------------------------------
class _FakeStream:
    def __init__(self, tty):
        self.tty = tty
        self.chunks = []

    def write(self, text):
        self.chunks.append(text)

    def flush(self):
        pass

    def isatty(self):
        return self.tty


class TestProgressLine:
    def test_render_text_reports_done_hits_rate_eta(self):
        line = ProgressLine(total=4, label="scaling",
                            stream=_FakeStream(tty=False))
        line.update(hit=True)
        line.update()
        text = line.render_text()
        assert text.startswith("scaling 2/4 (50%)")
        assert "hit 50%" in text
        assert "jobs/s" in text and "ETA" in text

    def test_tty_rewrites_in_place(self):
        stream = _FakeStream(tty=True)
        line = ProgressLine(total=2, stream=stream)
        line.update()
        line.update()
        line.finish()
        assert all(chunk.startswith("\r") for chunk in stream.chunks[:-1])
        assert stream.chunks[-1] == "\n"

    def test_non_tty_prints_one_line_per_bucket(self):
        stream = _FakeStream(tty=False)
        line = ProgressLine(total=100, stream=stream)
        for _ in range(100):
            line.update()
        line.finish()
        assert 9 <= len(stream.chunks) <= 12          # ~10% buckets, not 100
        assert all(chunk.endswith("\n") for chunk in stream.chunks)
        assert "100/100 (100%)" in stream.chunks[-1]


# ----------------------------------------------------------------------
# Structured logger
# ----------------------------------------------------------------------
class TestLogger:
    def test_logs_go_to_stderr_with_key_value_fields(self, capsys):
        get_logger("test").info("scenario done", scenario="scaling", jobs=6)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "repro: scenario done scenario=scaling jobs=6" in captured.err

    def test_level_comes_from_the_environment(self, monkeypatch, capsys):
        monkeypatch.setenv(LOG_LEVEL_ENV, "ERROR")
        from repro.telemetry.log import configure_from_env
        configure_from_env()
        log = get_logger("test")
        log.info("hidden")
        log.error("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err and "shown" in err
        monkeypatch.setenv(LOG_LEVEL_ENV, "INFO")
        configure_from_env()

    def test_logger_names_nest_under_repro(self):
        assert get_logger("cli")._logger.name == "repro.cli"
        assert get_logger()._logger.name == "repro"
        assert isinstance(logging.getLogger("repro.cli"), logging.Logger)
