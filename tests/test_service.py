"""Tests for the simulation-as-a-service layer (repro.service).

Covers the acceptance properties of the subsystem: strict submission
validation, the durable queue's kill-and-resume fold, token-bucket rate
limiting, and the HTTP surface end to end over real sockets -- submit,
poll, Server-Sent-Events progress ordering, 429s, Prometheus-lintable
metrics, and bit-equality of an HTTP-served result against a direct
:class:`~repro.campaign.runner.CampaignRunner` run through the shared
result cache.
"""

import http.client
import json
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.runner import CampaignRunner
from repro.service import (
    JobQueue,
    RateLimiter,
    ServerThread,
    Service,
    ServiceConfig,
    ValidationError,
    validate_request,
)
from repro.service.rate_limit import TokenBucket

GRID_REQUEST = {"problems": ["vecadd"], "configs": ["2c2w4t"],
                "scale": "smoke"}


# ----------------------------------------------------------------------
# submission validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_grid_request_round_trips(self):
        request = validate_request(dict(GRID_REQUEST, lws=[None, 4], seed=3))
        assert request.kind == "grid"
        assert request.lws == (None, 4)
        from repro.service.schemas import JobRequest
        assert JobRequest.from_dict(request.to_dict()) == request
        specs = request.specs()
        assert len(specs) == 2
        assert {s.local_size for s in specs} == {None, 4}

    def test_scenario_request_resolves_the_registry(self):
        request = validate_request({"scenario": "figure1", "scale": "smoke"})
        assert request.kind == "scenario"
        assert request.describe() == "scenario:figure1@smoke"

    @pytest.mark.parametrize("bad", [
        [],                                             # not an object
        {},                                             # neither shape
        {"scenario": "nope"},                           # unknown scenario
        {"scenario": "figure1", "problems": ["x"], "configs": ["y"]},
        {"problems": ["no_such_kernel"], "configs": ["2c2w4t"]},
        {"problems": ["vecadd"], "configs": ["not-a-shape"]},
        {"problems": ["vecadd"], "configs": ["2c2w4t"], "scale": "huge"},
        {"problems": ["vecadd"], "configs": ["2c2w4t"], "seed": "zero"},
        {"problems": ["vecadd"], "configs": ["2c2w4t"], "lws": []},
        {"problems": ["vecadd"], "configs": ["2c2w4t"], "lws": [0]},
        {"problems": ["vecadd"], "configs": ["2c2w4t"], "frobnicate": 1},
        {"scenario": "figure1", "sweep": "gigantic"},
    ])
    def test_unrunnable_requests_are_rejected(self, bad):
        with pytest.raises(ValidationError):
            validate_request(bad)


# ----------------------------------------------------------------------
# the durable queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def request(self):
        return validate_request(GRID_REQUEST)

    def test_submissions_survive_a_reload(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.jsonl")
        job = queue.submit(self.request(), client="alice")
        reloaded = JobQueue(tmp_path / "jobs.jsonl")
        twin = reloaded.get(job.id)
        assert twin is not None
        assert twin.state == "pending"
        assert twin.client == "alice"
        assert twin.request == job.request
        assert reloaded.pending_count() == 1

    def test_killed_mid_job_folds_back_to_pending(self, tmp_path):
        # A job claimed but never finished (the server died) is simply
        # still owed: the restarted queue re-enqueues it.
        queue = JobQueue(tmp_path / "jobs.jsonl")
        first = queue.submit(self.request())
        second = queue.submit(self.request())
        assert queue.claim().id == first.id
        restarted = JobQueue(tmp_path / "jobs.jsonl")
        assert restarted.recovered == 1
        assert restarted.pending_count() == 2
        # original submission order is preserved
        assert restarted.claim().id == first.id
        assert restarted.claim().id == second.id

    def test_terminal_states_survive_a_reload(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.jsonl")
        done = queue.submit(self.request())
        failed = queue.submit(self.request())
        queue.claim(), queue.claim()
        queue.finish(done.id, {"kind": "grid", "stats": {}})
        queue.fail(failed.id, "boom")
        restarted = JobQueue(tmp_path / "jobs.jsonl")
        assert restarted.recovered == 0
        assert restarted.get(done.id).state == "done"
        assert restarted.get(done.id).result == {"kind": "grid", "stats": {}}
        assert restarted.get(failed.id).state == "failed"
        assert restarted.get(failed.id).error == "boom"
        assert restarted.counts() == {"pending": 0, "running": 0,
                                      "done": 1, "failed": 1}

    def test_partial_tail_is_repaired_not_fatal(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.jsonl")
        job = queue.submit(self.request())
        with queue.path.open("a") as journal:
            journal.write('{"queue_schema": 1, "job": "partial')  # no newline
        restarted = JobQueue(tmp_path / "jobs.jsonl")
        assert restarted.get(job.id).state == "pending"
        restarted.submit(self.request())             # append repairs the tail
        assert JobQueue(tmp_path / "jobs.jsonl").pending_count() == 2


# ----------------------------------------------------------------------
# rate limiting
# ----------------------------------------------------------------------
class TestRateLimiting:
    def test_bucket_refills_at_the_configured_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2, now=0.0)
        assert bucket.take(0.0) == (True, 0.0)
        assert bucket.take(0.0) == (True, 0.0)
        allowed, retry_after = bucket.take(0.0)      # burst exhausted
        assert not allowed
        assert retry_after == pytest.approx(0.5)
        allowed, _ = bucket.take(0.6)                # refilled 1.2 tokens
        assert allowed

    def test_limiter_isolates_clients(self):
        limiter = RateLimiter(rate=0.001, burst=1)
        assert limiter.check("alice")[0]
        assert not limiter.check("alice")[0]
        assert limiter.check("bob")[0]               # bob has his own bucket

    def test_zero_rate_disables_limiting(self):
        limiter = RateLimiter(rate=0.0)
        assert all(limiter.check("x")[0] for _ in range(100))


# ----------------------------------------------------------------------
# the HTTP surface, end to end over real sockets
# ----------------------------------------------------------------------
def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def _post(base, path, payload, client=None):
    headers = {"content-type": "application/json"}
    if client:
        headers["x-client"] = client
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers=headers, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def _await_terminal(base, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, job = _get(base, f"/jobs/{job_id}")
        assert status == 200
        if job["state"] in ("done", "failed"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


@pytest.fixture
def service(tmp_path):
    instance = Service(ServiceConfig(
        queue_dir=tmp_path / "service",
        cache_dir=tmp_path / "cache",
        workers=1, rate=0.0))
    server = ServerThread(instance.app, startup=instance.startup,
                          shutdown=instance.shutdown).start()
    try:
        yield instance, server.url
    finally:
        server.stop()


class TestServiceHTTP:
    def test_submit_poll_result_matches_a_direct_runner_bit_for_bit(
            self, service, tmp_path):
        instance, base = service
        status, submitted = _post(base, "/jobs", GRID_REQUEST)
        assert status == 202
        assert submitted["state"] == "pending"
        job = _await_terminal(base, submitted["job"])
        assert job["state"] == "done", job["error"]
        served = job["result"]["results"][0]["result"]
        # The HTTP run seeded the shared cache, so a direct library run of
        # the same spec must be served the *identical* record -- including
        # wall-clock fields -- not merely an equivalent re-simulation.
        direct_spec = validate_request(GRID_REQUEST).specs()[0]
        direct = CampaignRunner(cache=ResultCache(tmp_path / "cache")).run(
            [direct_spec])
        assert direct.stats.cache_hits == 1
        assert direct.stats.executed == 0
        assert served == direct.results[0].to_dict()
        # and a second HTTP submission is cache-served through the same path
        _, again = _post(base, "/jobs", GRID_REQUEST)
        rerun = _await_terminal(base, again["job"])
        assert rerun["result"]["stats"]["cache_hits"] == 1
        assert rerun["result"]["results"][0]["result"] == served

    def test_sse_stream_replays_events_in_order(self, service):
        instance, base = service
        _, submitted = _post(base, "/jobs", GRID_REQUEST)
        _await_terminal(base, submitted["job"])

        conn = http.client.HTTPConnection(*base[len("http://"):].split(":"),
                                          timeout=30)
        conn.request("GET", f"/jobs/{submitted['job']}/events")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("content-type").startswith(
            "text/event-stream")
        body = response.read().decode()          # stream closes after `done`
        conn.close()
        events = [line.split(": ", 1)[1] for line in body.splitlines()
                  if line.startswith("event: ")]
        meaningful = [e for e in events if e != "heartbeat"]
        assert meaningful[0] == "running"
        assert meaningful[-1] == "done"
        assert "progress" in meaningful[1:-1]

    def test_unknown_job_and_route_and_method(self, service):
        _, base = service
        assert _get(base, "/jobs/doesnotexist")[0] == 404
        assert _get(base, "/no/such/route")[0] == 404
        status, body = _post(base, "/healthz", {})
        assert status == 405

    def test_invalid_submissions_are_400s(self, service):
        _, base = service
        status, body = _post(base, "/jobs", {"scenario": "nope"})
        assert status == 400
        assert "unknown scenario" in body["error"]
        request = urllib.request.Request(
            (base + "/jobs"), data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_rate_limited_clients_get_429_with_retry_after(self, tmp_path):
        instance = Service(ServiceConfig(
            queue_dir=tmp_path / "service", cache_dir=tmp_path / "cache",
            workers=1, rate=0.001, burst=1))
        server = ServerThread(instance.app, startup=instance.startup,
                              shutdown=instance.shutdown).start()
        try:
            base = server.url
            assert _post(base, "/jobs", GRID_REQUEST, client="alice")[0] == 202
            status, body = _post(base, "/jobs", GRID_REQUEST, client="alice")
            assert status == 429
            assert body["retry_after"] > 0
            # an independent client is not collateral damage
            assert _post(base, "/jobs", GRID_REQUEST, client="bob")[0] == 202
        finally:
            server.stop()

    def test_healthz_and_metrics(self, service):
        _, base = service
        status, health = _get(base, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert set(health["queue"]) == {"pending", "running", "done", "failed"}
        with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
            assert resp.status == 200
            assert "text/plain" in resp.getheader("content-type")
            text = resp.read().decode()
        from repro.telemetry.export import lint_prometheus
        assert lint_prometheus(text) == []

    def test_killed_server_resumes_queued_jobs_on_restart(self, tmp_path):
        # "Kill": enqueue directly into the durable queue with no server
        # running (exactly what a dead server's journal looks like), then
        # start the service on the same state directory.
        queue = JobQueue(tmp_path / "service" / "jobs.jsonl")
        orphan = queue.submit(validate_request(GRID_REQUEST))
        queue.claim()                         # died mid-run, never journaled

        instance = Service(ServiceConfig(
            queue_dir=tmp_path / "service", cache_dir=tmp_path / "cache",
            workers=1, rate=0.0))
        assert instance.queue.recovered == 1
        server = ServerThread(instance.app, startup=instance.startup,
                              shutdown=instance.shutdown).start()
        try:
            job = _await_terminal(server.url, orphan.id)
            assert job["state"] == "done", job["error"]
            assert job["result"]["stats"]["total"] == 1
        finally:
            server.stop()

    def test_scenario_jobs_run_through_the_planner(self, service):
        _, base = service
        _, submitted = _post(base, "/jobs",
                             {"scenario": "figure1", "scale": "smoke"})
        job = _await_terminal(base, submitted["job"])
        assert job["state"] == "done", job["error"]
        assert job["result"]["kind"] == "scenario"
        assert job["result"]["stats"]["failed"] == 0
        assert job["result"]["records"]
        assert "Figure 1" in job["result"]["report"]

    def test_job_listing_reflects_submissions(self, service):
        _, base = service
        _, submitted = _post(base, "/jobs", GRID_REQUEST)
        _await_terminal(base, submitted["job"])
        status, listing = _get(base, "/jobs")
        assert status == 200
        assert [entry["job"] for entry in listing["jobs"]] == [submitted["job"]]
        assert listing["counts"]["done"] == 1
        assert "result" not in listing["jobs"][0]
