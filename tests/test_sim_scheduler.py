"""Tests for the warp-scheduling policies (repro.sim.scheduler)."""

import pytest

from repro.kernels.builder import KernelBuilder
from repro.sim.config import ArchConfig, ConfigError
from repro.sim.scheduler import (
    GreedyThenOldestScheduler,
    RoundRobinScheduler,
    available_policies,
    make_scheduler,
)
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.workloads.problems import make_problem


def test_available_policies_lists_rr_and_gto():
    assert set(available_policies()) == {"rr", "gto"}


def test_make_scheduler_by_name_and_errors():
    assert isinstance(make_scheduler("rr", 4), RoundRobinScheduler)
    assert isinstance(make_scheduler("gto", 4), GreedyThenOldestScheduler)
    with pytest.raises(ValueError):
        make_scheduler("magic", 4)
    with pytest.raises(ValueError):
        make_scheduler("rr", 0)


def test_round_robin_rotates_past_the_issuing_warp():
    scheduler = RoundRobinScheduler(4)
    assert scheduler.priority_order() == [0, 1, 2, 3]
    scheduler.issued(0)
    assert scheduler.priority_order() == [1, 2, 3, 0]
    scheduler.issued(2)
    assert scheduler.priority_order() == [3, 0, 1, 2]


def test_gto_sticks_with_the_current_warp_until_it_switches():
    scheduler = GreedyThenOldestScheduler(3)
    scheduler.issued(1)
    assert scheduler.priority_order()[0] == 1          # greedy on the last issuer
    scheduler.issued(1)
    assert scheduler.priority_order()[0] == 1
    # when warp 1 stalls, the least recently issued warp (0 or 2, both never issued)
    # comes next, oldest (lowest tick, then lowest index) first
    assert scheduler.priority_order()[1:] == [0, 2]
    scheduler.issued(0)
    assert scheduler.priority_order() == [0, 2, 1]


def test_config_validates_scheduler_name():
    ArchConfig(warp_scheduler="gto")
    with pytest.raises(ConfigError):
        ArchConfig(warp_scheduler="lottery")


@pytest.mark.parametrize("policy", ["rr", "gto"])
def test_kernels_produce_identical_results_under_both_policies(policy):
    problem = make_problem("vecadd", scale="smoke")
    config = ArchConfig(cores=1, warps_per_core=4, threads_per_warp=4, warp_scheduler=policy)
    device = Device(config)
    result = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                           local_size=None)
    import numpy as np
    np.testing.assert_allclose(result.outputs["c"], problem.reference_outputs()["c"])


def test_policies_produce_comparable_but_not_necessarily_equal_timing():
    problem = make_problem("sgemm", scale="smoke")
    cycles = {}
    for policy in ("rr", "gto"):
        config = ArchConfig(cores=1, warps_per_core=4, threads_per_warp=4,
                            warp_scheduler=policy)
        device = Device(config)
        cycles[policy] = launch_kernel(device, problem.kernel, problem.arguments,
                                       problem.global_size, local_size=None).cycles
    # both schedules complete and stay within a sane factor of each other
    assert 0.5 < cycles["gto"] / cycles["rr"] < 2.0
