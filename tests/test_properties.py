"""Property-based tests (hypothesis) on the core data structures and invariants.

These complement the unit tests by checking structural invariants over
randomly drawn launch geometries, machine shapes and access patterns:

* the dispatcher assigns every workgroup exactly once, never overfills a warp
  and never spawns more calls than Eq. 1 predicts;
* the coalescer conserves lanes and never produces more requests than lanes;
* the LRU cache never holds more lines than its capacity;
* kernel results do not depend on the chosen lws (mapping-independence of
  functional behaviour), checked on the simulator for random small launches.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kernels.library import VECADD
from repro.runtime.device import Device
from repro.runtime.dispatcher import build_dispatch_plan
from repro.runtime.launcher import launch_kernel
from repro.runtime.ndrange import NDRange
from repro.sim.config import ArchConfig
from repro.sim.memory.cache import Cache
from repro.sim.memory.coalescer import coalesce


# ----------------------------------------------------------------------
# dispatcher invariants
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(gws=st.integers(min_value=1, max_value=5000),
       lws=st.integers(min_value=1, max_value=256),
       cores=st.integers(min_value=1, max_value=16),
       warps=st.integers(min_value=1, max_value=8),
       threads=st.integers(min_value=1, max_value=16))
def test_dispatcher_assigns_every_workgroup_exactly_once(gws, lws, cores, warps, threads):
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    ndrange = NDRange(gws, lws)
    plan = build_dispatch_plan(ndrange, config, {})

    seen = []
    for call in plan.calls:
        for launch in call.launches:
            assert 1 <= launch.active_lanes <= threads
            assert len(launch.csr.workgroup_ids) == launch.active_lanes
            seen.extend(int(w) for w in launch.csr.workgroup_ids)
    assert sorted(seen) == list(range(ndrange.num_workgroups))

    # local counts add up to the global size
    total_items = sum(int(c) for call in plan.calls for launch in call.launches
                      for c in launch.csr.local_counts)
    assert total_items == gws

    # the number of calls matches the analytic expectation
    expected_calls = math.ceil(ndrange.num_workgroups / config.hardware_parallelism)
    assert plan.num_calls == expected_calls

    # no call uses more lanes than the machine offers
    for call in plan.calls:
        assert call.active_lanes <= config.hardware_parallelism
        assert 0.0 < call.lane_utilization <= 1.0


@settings(max_examples=100, deadline=None)
@given(gws=st.integers(min_value=1, max_value=5000),
       cores=st.integers(min_value=1, max_value=16),
       warps=st.integers(min_value=1, max_value=8),
       threads=st.integers(min_value=1, max_value=16))
def test_eq1_mapping_always_yields_a_single_fully_used_call(gws, cores, warps, threads):
    from repro.core.optimizer import optimal_local_size
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    lws = optimal_local_size(gws, config)
    plan = build_dispatch_plan(NDRange(gws, lws), config, {})
    assert plan.num_calls == 1
    # every lane of the call either holds a workgroup or the problem ran out
    assert plan.calls[0].active_lanes == min(gws, plan.calls[0].active_lanes + 0) \
        or plan.calls[0].active_lanes <= config.hardware_parallelism


# ----------------------------------------------------------------------
# coalescer and cache invariants
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=64),
       line_words=st.sampled_from([4, 8, 16, 32]))
def test_coalescer_conserves_lanes(addresses, line_words):
    groups = coalesce(addresses, line_words)
    lanes = [lane for _, group in groups for lane in group]
    assert sorted(lanes) == list(range(len(addresses)))
    assert 1 <= len(groups) <= len(addresses)
    for line, group in groups:
        for lane in group:
            assert addresses[lane] // line_words == line


@settings(max_examples=100, deadline=None)
@given(accesses=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300),
       ways=st.sampled_from([1, 2, 4]),
       sets=st.sampled_from([2, 4, 8]))
def test_cache_never_exceeds_capacity_and_stats_balance(accesses, ways, sets):
    line_words = 16
    cache = Cache("prop", size_words=line_words * ways * sets, line_words=line_words, ways=ways)
    for line in accesses:
        cache.access(line)
    assert cache.resident_lines <= ways * sets
    assert cache.hits + cache.misses == len(accesses)
    assert cache.fills <= len(accesses)
    assert cache.evictions <= cache.fills


# ----------------------------------------------------------------------
# mapping independence of kernel results (simulator end-to-end)
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(n=st.integers(min_value=1, max_value=96),
       lws=st.integers(min_value=1, max_value=128),
       cores=st.sampled_from([1, 2, 4]),
       warps=st.sampled_from([1, 2, 4]),
       threads=st.sampled_from([2, 4, 8]))
def test_vecadd_result_is_independent_of_mapping_and_machine(n, lws, cores, warps, threads):
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    device = Device(config)
    rng = np.random.default_rng(n * 1000 + lws)
    a, b = rng.random(n), rng.random(n)
    result = launch_kernel(device, VECADD, {"a": a, "b": b, "c": np.zeros(n)}, n,
                           local_size=lws)
    np.testing.assert_allclose(result.outputs["c"], a + b, rtol=1e-12)
    assert result.num_workgroups == math.ceil(n / min(lws, n))
