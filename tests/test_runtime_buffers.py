"""Tests for device buffers and the allocator (repro.runtime.buffers)."""

import numpy as np
import pytest

from repro.runtime.buffers import Buffer, BufferAllocator
from repro.runtime.errors import AllocationError
from repro.sim.memory.mainmem import MainMemory


def _allocator(size=1024, alignment=16):
    memory = MainMemory(size)
    return memory, BufferAllocator(memory, alignment_words=alignment)


def test_allocations_are_aligned_and_non_overlapping():
    _, allocator = _allocator()
    first = allocator.allocate(10, name="a")
    second = allocator.allocate(20, name="b")
    assert first.address % 16 == 0
    assert second.address % 16 == 0
    assert second.address >= first.end


def test_upload_download_roundtrip_preserves_values_and_shape():
    _, allocator = _allocator()
    data = np.arange(12, dtype=np.float64).reshape(3, 4)
    buffer = allocator.upload(data, name="matrix")
    flat = allocator.download(buffer)
    np.testing.assert_array_equal(flat, data.ravel())
    shaped = allocator.download(buffer, shape=(3, 4))
    np.testing.assert_array_equal(shaped, data)


def test_upload_of_empty_array_allocates_placeholder():
    _, allocator = _allocator()
    buffer = allocator.upload(np.zeros(0), name="empty")
    assert buffer.size_words == 1


def test_zero_clears_buffer_contents():
    memory, allocator = _allocator()
    buffer = allocator.upload(np.ones(8))
    allocator.zero(buffer)
    assert memory.read(buffer.address) == 0.0
    np.testing.assert_array_equal(allocator.download(buffer), np.zeros(8))


def test_exhaustion_raises_allocation_error():
    _, allocator = _allocator(size=64)
    allocator.allocate(48)
    with pytest.raises(AllocationError, match="exhausted"):
        allocator.allocate(32)


def test_invalid_sizes_rejected():
    _, allocator = _allocator()
    with pytest.raises(AllocationError):
        allocator.allocate(0)
    with pytest.raises(AllocationError):
        allocator.allocate(-5)


def test_reset_releases_space():
    _, allocator = _allocator(size=64)
    allocator.allocate(48)
    allocator.reset()
    assert allocator.allocated_words == 0
    allocator.allocate(48)            # fits again


def test_allocations_snapshot_and_capacity():
    _, allocator = _allocator(size=256)
    a = allocator.allocate(8, name="a")
    b = allocator.allocate(8, name="b")
    assert allocator.allocations == (a, b)
    assert allocator.capacity_words == 256
    assert isinstance(a, Buffer) and a.name == "a"


def test_invalid_alignment_rejected():
    memory = MainMemory(64)
    with pytest.raises(ValueError):
        BufferAllocator(memory, alignment_words=0)
