"""Tests for the declarative scenario layer (repro.scenarios).

Covers the registry round-trip, planner grid expansion and execution dedup,
kill-and-resume from a half-written JSONL sink, and -- most importantly --
bit-identical equality of the ported figure1/figure2/ablation/claims
scenarios against the pre-refactor experiment drivers.
"""

import json
from pathlib import Path

import pytest

from repro.campaign.runner import CampaignRunner
from repro.experiments.ablation import (
    boundedness_record_from_job,
    boundedness_study,
    overhead_sensitivity,
)
from repro.experiments.claims import evaluate_claims
from repro.experiments.configs import smoke_sweep
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.scenarios import (
    GridAxes,
    Planner,
    REGISTRY,
    ResultSink,
    Scenario,
    ScenarioContext,
    ScenarioError,
    ScenarioRegistry,
    SinkRecord,
    UnknownScenarioError,
)
from repro.scenarios.library import DEFAULT_SWEEP_PROBLEMS, figure2_result_from_run
from repro.sim.config import ArchConfig

SMOKE = ScenarioContext(scale="smoke", sweep="smoke")


def tiny_scenario(name="tiny", strategies=("ours",), engines=(None,)):
    """A two-config vecadd scenario for planner/sink mechanics."""
    return Scenario(
        name=name,
        description="test scenario",
        grid=GridAxes(
            problems=("vecadd",),
            configs=(ArchConfig.from_name("1c2w2t"), ArchConfig.from_name("2c2w4t")),
            strategies=strategies,
            engines=engines,
        ),
        analyze=lambda run: "\n".join(
            f"{r.meta['config']}/{r.meta['strategy']}: {r.result.cycles}"
            for r in run.records),
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_round_trip_and_order(self):
        registry = ScenarioRegistry()
        a, b = tiny_scenario("a"), tiny_scenario("b")
        assert registry.register(a) is a
        registry.register(b)
        assert registry.get("a") is a
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "missing" not in registry
        assert list(registry) == [a, b]

    def test_duplicate_names_are_rejected_unless_replaced(self):
        registry = ScenarioRegistry()
        registry.register(tiny_scenario("dup"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(tiny_scenario("dup"))
        replacement = tiny_scenario("dup")
        registry.register(replacement, replace=True)
        assert registry.get("dup") is replacement

    def test_unknown_scenario_error_lists_names(self):
        registry = ScenarioRegistry()
        registry.register(tiny_scenario("only"))
        with pytest.raises(UnknownScenarioError, match="only"):
            registry.get("nope")

    def test_builtin_library_registers_all_eight(self):
        for name in ("figure1", "figure2", "ablation", "claims", "scaling",
                     "scheduler-sweep", "engine-compare", "cache-sensitivity"):
            assert name in REGISTRY
        assert len(REGISTRY) >= 8


# ----------------------------------------------------------------------
# Planner expansion + dedup
# ----------------------------------------------------------------------
class TestPlanner:
    def test_expansion_covers_the_cross_product(self):
        scenario = tiny_scenario(strategies=("lws=1", "lws=32", "ours"))
        plan = Planner().plan(scenario, SMOKE)
        assert len(plan) == 2 * 3           # configs x strategies
        assert [j.meta["strategy"] for j in plan[:3]] == ["lws=1", "lws=32", "ours"]
        # strategies are resolved to concrete lws values at planning time
        assert all(j.spec.local_size is not None for j in plan)

    def test_colliding_strategies_dedup_execution_but_keep_grid_points(self):
        # On these tiny machines (hp >= gws at smoke scale is false, but
        # lws=1 and "naive" coincide by construction) two strategy labels
        # resolve to the same spec -> one execution, two records.
        scenario = tiny_scenario(strategies=("lws=1", "naive-lws1"))
        planner = Planner()
        plan = planner.plan(scenario, SMOKE)
        unique = planner.unique_jobs(plan)
        assert len(plan) == 4 and len(unique) == 2
        run = planner.run(scenario, SMOKE)
        assert run.stats.planned == 4
        assert run.stats.unique == 2
        assert run.stats.executed == 2
        assert len(run.records) == 4        # every grid point has a record
        by_strategy = {r.meta["strategy"] for r in run.records}
        assert by_strategy == {"lws=1", "naive-lws1"}

    def test_engine_axis_executes_each_point_per_engine(self):
        scenario = tiny_scenario(engines=("reference", "fast"))
        run = Planner().run(scenario, SMOKE)
        assert run.stats.unique == 4        # 2 configs x 2 engines
        ref = {r.key: r for r in run.records if r.meta["engine"] == "reference"}
        fast = {r.key: r for r in run.records if r.meta["engine"] == "fast"}
        assert len(ref) == len(fast) == 2
        for key, record in ref.items():
            twin = fast[key.replace("reference:", "fast:")]
            assert record.result.cycles == twin.result.cycles
            assert record.result.counters == twin.result.counters

    def test_failures_raise_after_sinking_successes(self, tmp_path, monkeypatch):
        import repro.campaign.worker as worker

        real_run_spec = worker.run_spec

        def flaky(spec):
            if spec.config.name == "2c2w4t":
                raise ValueError("injected failure")
            return real_run_spec(spec)

        monkeypatch.setattr(worker, "run_spec", flaky)
        scenario = tiny_scenario()
        sink = ResultSink(tmp_path / "failing.jsonl")
        with pytest.raises(ScenarioError, match="1 of"):
            Planner().run(scenario, SMOKE, sink=sink)
        assert len(sink.load()) == 1        # the good job survived the kill

        # resume retries only the failed point once the fault is gone
        monkeypatch.setattr(worker, "run_spec", real_run_spec)
        run = Planner().run(scenario, SMOKE,
                            sink=ResultSink(tmp_path / "failing.jsonl"))
        assert run.stats.resumed == 1
        assert run.stats.executed == 1

    def test_shards_preserve_submission_order(self):
        scenario = tiny_scenario(strategies=("lws=1", "lws=32", "ours"))
        planner = Planner(shard_size=2)
        run = planner.run(scenario, SMOKE)
        assert [r.job_hash for r in run.records] == \
               [j.spec.content_hash() for j in run.plan]


# ----------------------------------------------------------------------
# Sink: streaming, round-trip, kill-and-resume
# ----------------------------------------------------------------------
class TestSinkResume:
    def test_sink_paths_survive_a_working_directory_change(self, tmp_path,
                                                           monkeypatch):
        # A daemon (the service) may chdir after opening its sinks; paths
        # must be pinned to absolute at creation time, not at append time.
        from repro.scenarios.sink import default_sink_dir

        home = tmp_path / "home"
        elsewhere = tmp_path / "elsewhere"
        home.mkdir()
        elsewhere.mkdir()
        monkeypatch.chdir(home)
        assert default_sink_dir().is_absolute()
        assert default_sink_dir() == home / "scenario-runs"
        sink = ResultSink(Path("runs") / "tiny.jsonl")
        assert sink.path == home / "runs" / "tiny.jsonl"
        monkeypatch.chdir(elsewhere)
        Planner().run(tiny_scenario(), SMOKE, sink=sink)
        assert (home / "runs" / "tiny.jsonl").exists()
        assert not (elsewhere / "runs").exists()

    def test_sink_record_round_trips(self, tmp_path):
        scenario = tiny_scenario()
        sink = ResultSink(tmp_path / "tiny.jsonl")
        run = Planner().run(scenario, SMOKE, sink=sink)
        loaded = sink.load()
        assert len(loaded) == 2
        for record in run.records:
            twin = loaded[record.key]
            assert isinstance(twin, SinkRecord)
            assert twin.result.cycles == record.result.cycles
            assert twin.meta == dict(record.meta)
            assert twin.spec["problem"] == "vecadd"

    def test_completed_run_resumes_without_executing(self, tmp_path):
        scenario = tiny_scenario()
        sink = ResultSink(tmp_path / "tiny.jsonl")
        first = Planner().run(scenario, SMOKE, sink=sink)
        second = Planner().run(scenario, SMOKE, sink=sink)
        assert second.stats.executed == 0
        assert second.stats.resumed == 2
        assert [r.result.cycles for r in second.records] == \
               [r.result.cycles for r in first.records]

    def test_kill_mid_grid_resumes_only_the_remaining_jobs(self, tmp_path):
        scenario = REGISTRY.get("scaling")
        path = tmp_path / "scaling.jsonl"
        full = Planner().run(scenario, SMOKE, sink=ResultSink(path))
        total = full.stats.unique

        # Simulate a hard kill after two complete records plus one partial
        # line (the classic half-written tail of a dead process).
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])

        sink = ResultSink(path)
        resumed = Planner().run(scenario, SMOKE, sink=sink)
        assert resumed.stats.resumed == 2
        assert resumed.stats.executed == total - 2
        assert sink.skipped == 1            # exactly the half-written line
        assert [r.result.cycles for r in resumed.records] == \
               [r.result.cycles for r in full.records]
        # the journal now covers the full grid again; only the orphaned
        # partial line is unusable (appends never merge into it)
        reloaded = ResultSink(path)
        assert len(reloaded.load()) == total
        assert reloaded.skipped == 1

    def test_fresh_discards_the_sink(self, tmp_path):
        scenario = tiny_scenario()
        sink = ResultSink(tmp_path / "tiny.jsonl")
        Planner().run(scenario, SMOKE, sink=sink)
        run = Planner().run(scenario, SMOKE, sink=sink, fresh=True)
        assert run.stats.resumed == 0
        assert run.stats.executed == 2

    def test_load_reports_missing_jobs(self, tmp_path):
        scenario = tiny_scenario()
        sink = ResultSink(tmp_path / "tiny.jsonl")
        with pytest.raises(ScenarioError, match="0 of 2"):
            Planner().load(scenario, SMOKE, sink=sink)
        Planner().run(scenario, SMOKE, sink=sink)
        loaded = Planner().load(scenario, SMOKE, sink=sink)
        assert loaded.stats.executed == 0
        assert len(loaded.records) == 2
        assert loaded.report()


# ----------------------------------------------------------------------
# Ported scenarios reproduce the pre-refactor driver numbers
# ----------------------------------------------------------------------
class TestPortedScenarioEquality:
    @pytest.fixture(scope="class")
    def planner(self):
        return Planner()

    def test_figure1_numbers_match_the_driver(self, planner):
        run = planner.run(REGISTRY.get("figure1"), SMOKE)
        driver = run_figure1()
        assert len(run.records) == len(driver.traces)
        for record in run.records:
            trace = driver.traces[record.result.local_size]
            assert record.result.cycles == trace.cycles
            assert record.result.num_calls == trace.num_calls
            assert record.result.num_workgroups == trace.num_workgroups
            assert record.result.lane_utilization == trace.lane_utilization
            # the driver's caption line appears verbatim in the report
            assert trace.summary() in run.report()

    def test_figure2_records_match_the_driver_bit_for_bit(self, planner):
        run = planner.run(REGISTRY.get("figure2"), SMOKE)
        scenario_result = figure2_result_from_run(run)
        driver_result = run_figure2(list(DEFAULT_SWEEP_PROBLEMS), smoke_sweep(),
                                    scale="smoke", call_simulation_limit=3)
        assert [r.as_dict() for r in scenario_result.records] == \
               [r.as_dict() for r in driver_result.records]

    def test_claims_match_the_driver(self, planner):
        run = planner.run(REGISTRY.get("claims"), SMOKE)
        scenario_claims = evaluate_claims(figure2_result_from_run(run))
        driver_claims = evaluate_claims(
            run_figure2(list(DEFAULT_SWEEP_PROBLEMS), smoke_sweep(),
                        scale="smoke", call_simulation_limit=3))
        assert scenario_claims.render() == driver_claims.render()
        assert scenario_claims.render() == run.report()

    def test_ablation_matches_both_driver_studies(self, planner):
        run = planner.run(REGISTRY.get("ablation"), ScenarioContext(scale="smoke"))
        overhead_driver = overhead_sensitivity(scale="smoke")
        cycles = {}
        for record in run.records:
            if record.meta["study"] == "overhead":
                cycles.setdefault(int(record.meta["overhead"]), {})[
                    record.meta["strategy"]] = record.result.cycles
        for driver_record in overhead_driver:
            measured = cycles[driver_record.launch_overhead]
            assert measured["naive-lws1"] == driver_record.naive_cycles
            assert measured["hardware-aware"] == driver_record.ours_cycles

        boundedness_driver = boundedness_study(list(DEFAULT_SWEEP_PROBLEMS),
                                               scale="smoke")
        scenario_bound = [boundedness_record_from_job(r.result)
                          for r in run.records
                          if r.meta["study"] == "boundedness"]
        assert scenario_bound == boundedness_driver


# ----------------------------------------------------------------------
# New scenarios: sanity of the cheap sweeps
# ----------------------------------------------------------------------
class TestNewScenarios:
    def test_scaling_reports_every_core_count(self):
        run = Planner().run(REGISTRY.get("scaling"), SMOKE)
        report = run.report()
        for cores in (1, 2, 4, 8, 16, 32):
            assert f"| {cores} " in report or f"| {cores}  " in report

    def test_scheduler_sweep_covers_both_policies(self):
        run = Planner().run(REGISTRY.get("scheduler-sweep"), SMOKE)
        schedulers = {r.meta["scheduler"] for r in run.records}
        assert schedulers == {"rr", "gto"}
        assert "rr/gto" in run.report()

    def test_engine_compare_is_bit_identical_and_uncached(self, tmp_path):
        from repro.campaign.cache import ResultCache

        cache = ResultCache(tmp_path)
        runner = CampaignRunner(cache=cache)
        run = Planner(runner=runner).run(REGISTRY.get("engine-compare"), SMOKE)
        assert {r.meta["engine"] for r in run.records} == \
            {"reference", "fast", "batch"}
        assert "bit-identical on every point" in run.report()
        # cacheable=False: the engine comparison must never read or write the
        # cache (a cache-served point would time nothing).
        assert cache.stats().entries == 0
        assert cache.stats().hits == 0

    def test_cache_sensitivity_tags_every_point(self):
        run = Planner().run(REGISTRY.get("cache-sensitivity"), SMOKE)
        for record in run.records:
            assert record.meta["l1_words"] in (1024, 4096, 16384)
            assert record.meta["l2_words"] in (8192, 32768, 131072)
        assert "L1 hit" in run.report()


# ----------------------------------------------------------------------
# Campaign cache integration
# ----------------------------------------------------------------------
class TestScenarioCacheIntegration:
    def test_second_run_is_fully_cache_served(self, tmp_path):
        from repro.campaign.cache import ResultCache

        scenario = tiny_scenario()
        runner = CampaignRunner(cache=ResultCache(tmp_path))
        planner = Planner(runner=runner)
        planner.run(scenario, SMOKE)
        second_cache = ResultCache(tmp_path)
        second = Planner(runner=CampaignRunner(cache=second_cache))
        run = second.run(scenario, SMOKE)
        assert run.stats.executed == 2      # "executed" counts campaign jobs...
        assert second_cache.hits == 2       # ...but every one was cache-served
        assert second_cache.misses == 0


class TestSinkStreaming:
    def test_iter_records_streams_without_materializing(self, tmp_path):
        scenario = tiny_scenario()
        sink = ResultSink(tmp_path / "tiny.jsonl")
        Planner().run(scenario, SMOKE, sink=sink)
        streamed = list(sink.iter_records())
        assert [r.key for r in streamed] == list(sink.load())
        assert all(isinstance(r, SinkRecord) for r in streamed)

    def test_iter_records_skips_corrupt_and_stale_lines(self, tmp_path):
        scenario = tiny_scenario()
        sink = ResultSink(tmp_path / "tiny.jsonl")
        Planner().run(scenario, SMOKE, sink=sink)
        with sink.path.open("a") as journal:
            journal.write("{corrupt\n")
            journal.write(json.dumps({"schema": -1, "key": "stale"}) + "\n")
        assert len(list(sink.iter_records())) == 2
        assert sink.skipped == 2

    def test_load_keeps_last_wins_over_the_stream(self, tmp_path):
        scenario = tiny_scenario()
        sink = ResultSink(tmp_path / "tiny.jsonl")
        Planner().run(scenario, SMOKE, sink=sink)
        # duplicate the first line at the tail: the re-appended record wins
        first_line = sink.path.read_text().splitlines()[0]
        with sink.path.open("a") as journal:
            journal.write(first_line + "\n")
        loaded = sink.load()
        assert len(loaded) == 2            # still one record per key
