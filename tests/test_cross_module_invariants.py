"""Cross-module consistency checks.

The static analyser (repro.core.analysis), the dispatcher (repro.runtime) and
the launcher report overlapping quantities (number of kernel calls, lane
utilisation, launch overhead).  These tests pin them to each other so the
predictive analysis can be trusted to describe what the simulator actually
does -- which is the premise of making mapping decisions from analysis alone.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import MappingAnalyzer
from repro.kernels.library import VECADD
from repro.runtime.device import Device
from repro.runtime.dispatcher import build_dispatch_plan
from repro.runtime.launcher import launch_kernel
from repro.runtime.ndrange import NDRange
from repro.sim.config import ArchConfig
from repro.experiments.configs import paper_sweep


@settings(max_examples=80, deadline=None)
@given(gws=st.integers(min_value=1, max_value=4096),
       lws=st.integers(min_value=1, max_value=256),
       cores=st.integers(min_value=1, max_value=16),
       warps=st.integers(min_value=1, max_value=8),
       threads=st.integers(min_value=1, max_value=16))
def test_static_analysis_matches_the_dispatcher(gws, lws, cores, warps, threads):
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    ndrange = NDRange(gws, lws)
    plan = build_dispatch_plan(ndrange, config, {})
    analysis = MappingAnalyzer(config).analyze(gws, lws)

    assert analysis.num_workgroups == plan.num_workgroups
    assert analysis.num_calls == plan.num_calls
    assert analysis.lane_utilization == pytest.approx(plan.average_lane_utilization)
    # regime labels agree between the two layers
    assert analysis.regime == plan.regime()


@pytest.mark.parametrize("lws", [1, 3, 8, 32, 64])
def test_launcher_overhead_matches_the_plan(lws):
    config = ArchConfig(cores=2, warps_per_core=2, threads_per_warp=4)
    device = Device(config)
    n = 64
    a, b = np.ones(n), np.ones(n)
    result = launch_kernel(device, VECADD, {"a": a, "b": b, "c": np.zeros(n)}, n,
                           local_size=lws)
    plan = result.dispatch
    assert result.num_calls == plan.num_calls
    expected_overhead = sum(
        config.kernel_launch_overhead + config.warp_spawn_cost * call.warps_spawned
        for call in plan.calls
    )
    assert result.overhead_cycles == expected_overhead
    assert result.cycles == sum(result.call_cycles) + expected_overhead
    assert result.counters.warps_launched == plan.total_warps_spawned


def test_every_paper_sweep_configuration_round_trips_and_is_simulatable():
    configs = paper_sweep()
    for config in configs:
        assert ArchConfig.from_name(config.name).hardware_parallelism == \
            config.hardware_parallelism
    # hardware parallelism spans the range the paper quotes
    hps = [c.hardware_parallelism for c in configs]
    assert min(hps) == 4            # 1c2w2t
    assert max(hps) == 65536        # 64c32w32t


def test_device_memory_exhaustion_is_reported_cleanly():
    from repro.runtime.errors import AllocationError
    device = Device(ArchConfig(cores=1, warps_per_core=2, threads_per_warp=2),
                    memory_words=256)
    with pytest.raises(AllocationError, match="exhausted"):
        launch_kernel(device, VECADD,
                      {"a": np.zeros(200), "b": np.zeros(200), "c": np.zeros(200)}, 200)


def test_counters_instruction_totals_are_consistent():
    config = ArchConfig(cores=2, warps_per_core=2, threads_per_warp=4)
    device = Device(config)
    n = 64
    result = launch_kernel(device, VECADD,
                           {"a": np.ones(n), "b": np.ones(n), "c": np.zeros(n)}, n)
    c = result.counters
    classified = (c.alu_instructions + c.fpu_instructions + c.sfu_instructions
                  + c.memory_instructions + c.control_instructions)
    # every issued instruction lands in exactly one class bucket except NOP/HALT
    assert classified <= c.warp_instructions
    assert c.warp_instructions - classified <= c.warps_launched * 2
    assert c.lane_instructions >= c.warp_instructions
    assert c.loads + c.stores == c.memory_instructions
