"""Tests for the trace layer: events, tracer, analysis, rendering, export."""

import json

import pytest

from repro.isa.opcodes import Opcode
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.sim.stats import PerfCounters
from repro.trace.analysis import (
    analyze_trace,
    classify_boundedness,
    issue_gaps,
    occupancy_timeline,
    section_wavefronts,
)
from repro.trace.events import TraceEvent
from repro.trace.export import events_from_json, events_to_csv, events_to_json
from repro.trace.render import render_issue_timeline, render_section_waveform, render_summary
from repro.trace.tracer import Tracer
from repro.workloads.problems import make_problem

CONFIG = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)


def _traced_launch(local_size=None, problem_name="vecadd"):
    tracer = Tracer()
    device = Device(CONFIG, tracer=tracer)
    problem = make_problem(problem_name, scale="smoke")
    result = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                           local_size=local_size)
    return tracer, result


# ----------------------------------------------------------------------
# TraceEvent
# ----------------------------------------------------------------------
def test_event_round_trips_through_dict():
    event = TraceEvent(cycle=5, core=1, warp=2, pc=7, opcode=Opcode.FMA,
                       mask=0b1011, section="mac", call_index=3)
    restored = TraceEvent.from_dict(event.as_dict())
    assert restored == event
    assert restored.active_lanes == 3


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_tracer_records_every_issue_of_a_launch():
    tracer, result = _traced_launch()
    assert len(tracer) == result.counters.warp_instructions
    assert not tracer.truncated


def test_tracer_event_cap_truncates_gracefully():
    tracer = Tracer(max_events=10)
    device = Device(CONFIG, tracer=tracer)
    problem = make_problem("vecadd", scale="smoke")
    launch_kernel(device, problem.kernel, problem.arguments, problem.global_size)
    assert len(tracer) == 10
    assert tracer.truncated
    assert tracer.dropped > 0


def test_tracer_warns_once_when_the_cap_is_hit(capsys):
    tracer = Tracer(max_events=5)
    device = Device(CONFIG, tracer=tracer)
    problem = make_problem("vecadd", scale="smoke")
    launch_kernel(device, problem.kernel, problem.arguments, problem.global_size)
    err = capsys.readouterr().err
    assert err.count("trace truncated") == 1         # once, not per event
    assert "max_events=5" in err


def test_tracer_filters_by_core_and_section():
    tracer = Tracer(sections=["store"])
    device = Device(CONFIG, tracer=tracer)
    problem = make_problem("vecadd", scale="smoke")
    launch_kernel(device, problem.kernel, problem.arguments, problem.global_size)
    assert len(tracer) > 0
    assert all(event.section == "store" for event in tracer.events)


def test_tracer_multi_call_launches_get_increasing_call_indices_and_offsets():
    tracer, result = _traced_launch(local_size=1)          # 64 items on hp=8 -> 8 calls
    assert result.num_calls == 8
    call_indices = {event.call_index for event in tracer.events}
    assert call_indices == set(range(8))
    # later calls appear later on the global timeline
    first_call_last = max(e.cycle for e in tracer.events if e.call_index == 0)
    second_call_first = min(e.cycle for e in tracer.events if e.call_index == 1)
    assert second_call_first > first_call_last


def test_tracer_clear_resets_state():
    tracer, _ = _traced_launch()
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.cycle_offset == 0


def test_events_for_filtering():
    tracer, _ = _traced_launch()
    warp0 = tracer.events_for(core=0, warp=0)
    warp1 = tracer.events_for(core=0, warp=1)
    assert warp0 and warp1
    assert all(e.warp == 0 for e in warp0)
    assert len(warp0) + len(warp1) == len(tracer)


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
def test_section_wavefronts_cover_wrapper_sections():
    tracer, _ = _traced_launch()
    waves = section_wavefronts(tracer.events)
    for section in ("init", "loop", "store", "exit"):
        assert section in waves
    init = waves["init"]
    exit_ = waves["exit"]
    assert init.first_cycle <= exit_.first_cycle
    assert init.issues > 0 and init.span >= 1


def test_occupancy_timeline_counts_active_warps():
    tracer, _ = _traced_launch()
    timeline = occupancy_timeline(tracer.events, bucket=4)
    assert timeline
    assert max(active for _, active in timeline) <= CONFIG.warps_per_core * CONFIG.cores
    with pytest.raises(ValueError):
        occupancy_timeline(tracer.events, bucket=0)


def test_issue_gaps_appear_between_sequential_kernel_calls():
    tracer, result = _traced_launch(local_size=1)
    gaps = issue_gaps(tracer.events, min_gap=CONFIG.kernel_launch_overhead // 2)
    assert len(gaps) >= result.num_calls - 1


def test_classify_boundedness_from_counters_and_events():
    memory_heavy = PerfCounters(warp_instructions=10, memory_instructions=5)
    compute_heavy = PerfCounters(warp_instructions=100, memory_instructions=5)
    assert classify_boundedness(memory_heavy) == "memory-bound"
    assert classify_boundedness(compute_heavy) == "compute-bound"
    assert classify_boundedness() == "unknown"

    tracer, _ = _traced_launch()
    assert classify_boundedness(events=tracer.events) in ("memory-bound", "compute-bound")


def test_analyze_trace_summary_fields():
    tracer, result = _traced_launch()
    analysis = analyze_trace(tracer.events, result.counters,
                             threads_per_warp=CONFIG.threads_per_warp)
    assert analysis.total_events == len(tracer)
    assert analysis.cores_seen == 1
    assert analysis.warps_seen == 2
    assert 0.0 < analysis.issue_utilization <= 1.0
    assert 0.0 < analysis.simt_efficiency <= 1.0
    assert analysis.span >= 1
    assert analysis.section_order()[0] == "init"
    assert analysis.call_boundaries == [analysis.first_cycle]


def test_analyze_trace_of_empty_event_list():
    analysis = analyze_trace([])
    assert analysis.total_events == 0
    assert analysis.span == 0


# ----------------------------------------------------------------------
# rendering and export
# ----------------------------------------------------------------------
def test_render_issue_timeline_contains_rows_and_legend():
    tracer, _ = _traced_launch()
    text = render_issue_timeline(tracer.events, width=60, title="demo")
    assert "demo" in text
    assert "core 0 warp 0" in text
    assert "core 0 warp 1" in text
    assert "legend:" in text
    assert render_issue_timeline([], width=60) == "(empty trace)"


def test_render_section_waveform_lists_sections_in_order():
    tracer, _ = _traced_launch()
    text = render_section_waveform(tracer.events, width=60)
    assert "init" in text and "store" in text
    assert text.index("init") < text.index("exit")


def test_render_summary_reports_key_metrics():
    tracer, result = _traced_launch()
    text = render_summary(tracer.events, result.counters, CONFIG.threads_per_warp)
    assert "issue utilisation" in text
    assert "boundedness" in text
    assert "TRUNCATED" not in text                   # complete trace says nothing


def test_render_summary_flags_a_truncated_trace():
    tracer, result = _traced_launch()
    text = render_summary(tracer.events, result.counters,
                          CONFIG.threads_per_warp, dropped=17)
    assert "TRUNCATED" in text
    assert "17 event(s) dropped" in text
    assert "partial trace" in text


def test_json_and_csv_export_round_trip(tmp_path):
    tracer, _ = _traced_launch()
    events = tracer.events[:50]
    payload = events_to_json(events)
    assert json.loads(payload)
    restored = events_from_json(payload)
    assert list(restored) == list(events)

    json_path = tmp_path / "trace.json"
    events_to_json(events, path=json_path)
    assert events_from_json(json_path) == list(events)

    csv_text = events_to_csv(events, path=tmp_path / "trace.csv")
    assert csv_text.splitlines()[0].startswith("cycle,core,warp,pc,opcode")
    assert len(csv_text.splitlines()) == len(events) + 1
