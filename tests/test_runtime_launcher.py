"""Tests for the kernel launcher (repro.runtime.launcher) and Device."""

import numpy as np
import pytest

from repro.kernels.library import VECADD
from repro.kernels.kernel import KernelArgumentError
from repro.runtime.device import Device
from repro.runtime.errors import LaunchError
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.workloads.problems import make_problem

CONFIG = ArchConfig(cores=2, warps_per_core=2, threads_per_warp=4)


def _vecadd_args(n=32, seed=1):
    rng = np.random.default_rng(seed)
    a, b = rng.random(n), rng.random(n)
    return {"a": a, "b": b, "c": np.zeros(n)}, a + b


# ----------------------------------------------------------------------
# basic behaviour
# ----------------------------------------------------------------------
def test_launch_produces_correct_outputs_and_metadata():
    device = Device(CONFIG)
    args, expected = _vecadd_args(32)
    result = launch_kernel(device, VECADD, args, 32, local_size=4)
    np.testing.assert_allclose(result.outputs["c"], expected)
    assert result.kernel_name == "vecadd"
    assert result.config_name == CONFIG.name
    assert result.global_size == 32
    assert result.local_size == 4
    assert result.num_workgroups == 8
    assert result.num_calls == 1
    assert result.cycles == result.sim_cycles + result.overhead_cycles
    assert len(result.call_cycles) == result.num_calls
    assert result.counters.kernel_calls == 1
    assert "vecadd" in result.summary()


def test_none_local_size_uses_equation_1():
    device = Device(CONFIG)            # hp = 16
    args, _ = _vecadd_args(64)
    result = launch_kernel(device, VECADD, args, 64, local_size=None)
    assert result.local_size == 4      # ceil(64 / 16)
    assert result.num_calls == 1


def test_multiple_calls_pay_overhead_each():
    device = Device(CONFIG)
    args, _ = _vecadd_args(64)
    naive = launch_kernel(device, VECADD, args, 64, local_size=1)
    assert naive.num_calls == 4
    assert naive.overhead_cycles >= 4 * CONFIG.kernel_launch_overhead
    optimal = launch_kernel(device, VECADD, args, 64, local_size=None)
    assert optimal.overhead_cycles < naive.overhead_cycles
    assert optimal.cycles < naive.cycles


def test_missing_argument_raises_kernel_argument_error():
    device = Device(CONFIG)
    args, _ = _vecadd_args(16)
    del args["b"]
    with pytest.raises(KernelArgumentError, match="missing"):
        launch_kernel(device, VECADD, args, 16)


def test_wrong_argument_kind_raises_launch_error():
    device = Device(CONFIG)
    args, _ = _vecadd_args(16)
    args["b"] = 3.0                    # buffer param given a scalar
    with pytest.raises(LaunchError, match="numpy array"):
        launch_kernel(device, VECADD, args, 16)


def test_scalar_param_given_array_raises():
    device = Device(CONFIG)
    problem = make_problem("saxpy", scale="smoke")
    arguments = dict(problem.arguments)
    arguments["a"] = np.zeros(4)       # scalar param given an array
    with pytest.raises(LaunchError, match="scalar"):
        launch_kernel(device, problem.kernel, arguments, problem.global_size)


def test_preuploaded_buffers_are_accepted():
    device = Device(CONFIG)
    args, expected = _vecadd_args(32)
    uploaded = {
        "a": device.upload(args["a"], name="a"),
        "b": device.upload(args["b"], name="b"),
        "c": device.upload(args["c"], name="c"),
    }
    result = launch_kernel(device, VECADD, uploaded, 32, local_size=4,
                           reset_memory=False, keep_buffers=True)
    np.testing.assert_allclose(result.outputs["c"], expected)
    assert result.buffers["c"].address == uploaded["c"].address


def test_outputs_contain_only_writable_buffers():
    device = Device(CONFIG)
    args, _ = _vecadd_args(16)
    result = launch_kernel(device, VECADD, args, 16)
    assert set(result.outputs) == {"c"}


def test_cycles_per_workitem_metric():
    device = Device(CONFIG)
    args, _ = _vecadd_args(32)
    result = launch_kernel(device, VECADD, args, 32)
    assert result.cycles_per_workitem == pytest.approx(result.cycles / 32)


# ----------------------------------------------------------------------
# extrapolated (sampled) simulation
# ----------------------------------------------------------------------
def test_call_extrapolation_matches_exact_simulation_closely():
    device = Device(CONFIG)
    args, _ = _vecadd_args(256)
    exact = launch_kernel(device, VECADD, args, 256, local_size=1)
    sampled = launch_kernel(device, VECADD, args, 256, local_size=1, call_simulation_limit=3)
    assert sampled.extrapolated
    assert not exact.extrapolated
    assert sampled.num_calls == exact.num_calls
    # the extrapolation may only differ through cold-vs-warm cache effects
    assert abs(sampled.cycles - exact.cycles) / exact.cycles < 0.15


def test_extrapolation_not_used_for_short_launches():
    device = Device(CONFIG)
    args, _ = _vecadd_args(32)
    result = launch_kernel(device, VECADD, args, 32, local_size=8, call_simulation_limit=3)
    assert not result.extrapolated


# ----------------------------------------------------------------------
# Device conveniences
# ----------------------------------------------------------------------
def test_device_accepts_config_names_and_reports_hp():
    device = Device("4c8w8t")
    assert device.hardware_parallelism == 4 * 8 * 8
    assert device.name == "4c8w8t"
    assert "hp = 256" in device.describe()


def test_device_launch_wrapper_matches_launch_kernel():
    device = Device(CONFIG)
    args, expected = _vecadd_args(32)
    result = device.launch(VECADD, args, 32)
    np.testing.assert_allclose(result.outputs["c"], expected)


def test_device_reset_memory_releases_allocations():
    device = Device(CONFIG)
    device.upload(np.zeros(64))
    assert device.allocator.allocated_words > 0
    device.reset_memory()
    assert device.allocator.allocated_words == 0
