"""Tests for kernel signatures (repro.kernels.signature) and the Kernel class."""

import pytest

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel, KernelArgumentError
from repro.kernels.signature import BufferParam, ScalarParam, validate_signature
from repro.kernels.values import FLOAT, INT


def _noop_body(builder, gid, args):
    builder.nop()


def test_buffer_param_is_integer_typed():
    assert BufferParam("x").dtype == INT
    assert BufferParam("out", writable=True).writable


def test_scalar_param_kinds():
    assert ScalarParam("n", kind=INT).dtype == INT
    assert ScalarParam("alpha", kind=FLOAT).dtype == FLOAT
    with pytest.raises(ValueError):
        ScalarParam("bad", kind="z")


def test_validate_signature_rejects_duplicates():
    with pytest.raises(ValueError, match="duplicate"):
        validate_signature((BufferParam("x"), ScalarParam("x")))


def test_validate_signature_rejects_empty_names():
    with pytest.raises(ValueError, match="name"):
        validate_signature((BufferParam(""),))


def test_kernel_param_accessors():
    kernel = Kernel(
        name="k", params=(BufferParam("a"), BufferParam("out", writable=True),
                          ScalarParam("n", kind=INT)),
        body=_noop_body,
    )
    assert [p.name for p in kernel.buffer_params] == ["a", "out"]
    assert [p.name for p in kernel.scalar_params] == ["n"]
    assert kernel.param_slot("out") == 1
    with pytest.raises(KernelArgumentError):
        kernel.param_slot("missing")


def test_kernel_check_arguments_reports_missing_and_unexpected():
    kernel = Kernel(name="k", params=(BufferParam("a"), ScalarParam("n")), body=_noop_body)
    kernel.check_arguments({"a": object(), "n": 1})
    with pytest.raises(KernelArgumentError) as err:
        kernel.check_arguments({"a": object(), "typo": 1})
    assert "missing" in str(err.value)
    assert "n" in str(err.value)
    assert "typo" in str(err.value)


def test_kernel_emit_argument_loads_reads_each_slot_once():
    kernel = Kernel(
        name="k", params=(BufferParam("a"), BufferParam("b"), ScalarParam("s", kind=FLOAT)),
        body=_noop_body,
    )
    builder = KernelBuilder("k_args")
    values = kernel.emit_argument_loads(builder)
    assert set(values) == {"a", "b", "s"}
    assert values["a"].dtype == INT
    assert values["s"].dtype == FLOAT
    # one CSRR per parameter
    from repro.isa.opcodes import Opcode
    csrr_count = sum(1 for i in builder._instructions if i.opcode is Opcode.CSRR)
    assert csrr_count == 3


def test_duplicate_kernel_params_rejected_at_construction():
    with pytest.raises(ValueError):
        Kernel(name="bad", params=(BufferParam("a"), BufferParam("a")), body=_noop_body)
