"""Tests for the SIMT core model (repro.sim.core).

Functional semantics (arithmetic, divergence, loops, memory, CSRs) are covered
through hand-built programs executed on the harness; timing-related behaviour
(scoreboard stalls, functional-unit initiation intervals, barriers) is checked
through cycle counts and counters.
"""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import Csr
from repro.kernels.builder import KernelBuilder
from repro.sim.config import ArchConfig
from repro.sim.core import SimtCore, SimulationError
from repro.sim.memory.hierarchy import MemoryHierarchy
from repro.sim.memory.mainmem import MainMemory
from repro.sim.stats import PerfCounters
from repro.sim.warp import Warp

from tests.simt_harness import make_csr, run_program


def _program(instructions, registers, name="test"):
    return Program.link(name, instructions, labels={}, num_registers=registers)


# ----------------------------------------------------------------------
# functional semantics of individual opcodes
# ----------------------------------------------------------------------
def test_integer_arithmetic_semantics():
    b = KernelBuilder("ints")
    seven, three = b.const(7), b.const(3)
    results = {
        "add": seven + three,
        "sub": seven - three,
        "mul": seven * three,
        "div": seven / three,
        "rem": seven % three,
        "min": b.minimum(seven, three),
        "max": b.maximum(seven, three),
    }
    kept = {k: b.copy(v) for k, v in results.items()}
    b.halt()
    run = run_program(b.link(), lanes=1)
    assert run.reg(kept["add"].reg) == 10
    assert run.reg(kept["sub"].reg) == 4
    assert run.reg(kept["mul"].reg) == 21
    assert run.reg(kept["div"].reg) == 2          # truncating division
    assert run.reg(kept["rem"].reg) == 1
    assert run.reg(kept["min"].reg) == 3
    assert run.reg(kept["max"].reg) == 7


def test_negative_integer_division_truncates_toward_zero():
    b = KernelBuilder("negdiv")
    a, d = b.const(-7), b.const(2)
    q = b.copy(a / d)
    r = b.copy(a % d)
    b.halt()
    run = run_program(b.link(), lanes=1)
    assert run.reg(q.reg) == -3          # RISC-V style truncation, not floor
    assert run.reg(r.reg) == -1


def test_float_arithmetic_and_conversions():
    b = KernelBuilder("floats")
    x = b.const(2.5)
    y = b.const(4.0)
    kept = {
        "fadd": b.copy(x + y),
        "fsub": b.copy(x - y),
        "fmul": b.copy(x * y),
        "fdiv": b.copy(y / x),
        "sqrt": b.copy(b.sqrt(y)),
        "trunc": b.copy(x.to_int()),
    }
    b.halt()
    run = run_program(b.link(), lanes=1)
    assert run.reg(kept["fadd"].reg) == pytest.approx(6.5)
    assert run.reg(kept["fsub"].reg) == pytest.approx(-1.5)
    assert run.reg(kept["fmul"].reg) == pytest.approx(10.0)
    assert run.reg(kept["fdiv"].reg) == pytest.approx(1.6)
    assert run.reg(kept["sqrt"].reg) == pytest.approx(2.0)
    assert run.reg(kept["trunc"].reg) == 2


def test_division_by_zero_raises_simulation_error():
    b = KernelBuilder("divzero")
    a, zero = b.const(1), b.const(0)
    _ = b.copy(a / zero)
    b.halt()
    with pytest.raises(SimulationError, match="division by zero"):
        run_program(b.link(), lanes=1)


def test_csr_reads_are_per_lane():
    b = KernelBuilder("csr")
    tid = b.copy(b.csr(Csr.THREAD_ID))
    wid = b.copy(b.csr(Csr.WARP_ID))
    b.halt()
    run = run_program(b.link(), lanes=4)
    assert run.lane_values(tid.reg) == [0, 1, 2, 3]
    assert run.lane_values(wid.reg) == [0, 0, 0, 0]


def test_store_then_load_same_address_is_consistent():
    b = KernelBuilder("st_ld")
    base = b.const(40)
    tid = b.csr(Csr.THREAD_ID)
    b.store(tid.to_float() * 2.0, base, tid)
    reread = b.copy(b.load(base, tid))
    b.halt()
    run = run_program(b.link(), lanes=4)
    assert run.lane_values(reread.reg) == [0.0, 2.0, 4.0, 6.0]


def test_inactive_lanes_do_not_execute():
    b = KernelBuilder("masked")
    flag = b.copy(b.const(0))
    b.move(flag, b.const(1))
    b.halt()
    config = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)
    run = run_program(b.link(), lanes=2, config=config)   # only lanes 0-1 of 4 active
    assert run.lane_values(flag.reg)[:2] == [1, 1]
    assert run.lane_values(flag.reg)[2:] == [0.0, 0.0]


# ----------------------------------------------------------------------
# timing behaviour
# ----------------------------------------------------------------------
def _single_warp_core(program, config=None, lanes=2):
    config = config or ArchConfig(cores=1, warps_per_core=2, threads_per_warp=max(2, lanes))
    memory = MainMemory(4096)
    hierarchy = MemoryHierarchy(config)
    counters = PerfCounters()
    core = SimtCore(0, config, program, hierarchy, memory, counters)
    warp = Warp(0, config.threads_per_warp, program.num_registers, make_csr(lanes, config),
                active_lanes=lanes)
    core.add_warp(warp)
    return core, warp, counters


def test_dependent_instructions_wait_for_the_scoreboard():
    # FMA has a 4-cycle latency; a dependent add must not issue before it completes
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=1.0),
        Instruction(Opcode.LI, dst=1, imm=2.0),
        Instruction(Opcode.FMA, dst=2, srcs=(0, 1, 1)),
        Instruction(Opcode.FADD, dst=3, srcs=(2, 2)),
        Instruction(Opcode.HALT),
    ]
    program = _program(instructions, 4)
    core, warp, counters = _single_warp_core(program)
    issue_cycles = {}
    cycle = 0
    while core.busy:
        pc_before = warp.pc
        if core.try_issue(cycle):
            issue_cycles[pc_before] = cycle
        cycle += 1
        assert cycle < 200
    # the FADD (pc=3) must wait for the FMA's 4-cycle latency
    assert issue_cycles[3] >= issue_cycles[2] + 4
    assert warp.regs[0][3] == pytest.approx(8.0)


def test_independent_instructions_issue_back_to_back():
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=1),
        Instruction(Opcode.LI, dst=1, imm=2),
        Instruction(Opcode.LI, dst=2, imm=3),
        Instruction(Opcode.HALT),
    ]
    program = _program(instructions, 3)
    core, warp, counters = _single_warp_core(program)
    issued = 0
    for cycle in range(10):
        if core.try_issue(cycle):
            issued += 1
        if not core.busy:
            break
    assert issued == 4        # one per cycle, no stalls


def test_sfu_initiation_interval_creates_structural_stalls():
    # two independent FDIVs cannot issue back-to-back (II = 12)
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=8.0),
        Instruction(Opcode.LI, dst=1, imm=2.0),
        Instruction(Opcode.FDIV, dst=2, srcs=(0, 1)),
        Instruction(Opcode.FDIV, dst=3, srcs=(0, 1)),
        Instruction(Opcode.HALT),
    ]
    program = _program(instructions, 4)
    core, warp, _ = _single_warp_core(program)
    issue_cycles = {}
    cycle = 0
    while core.busy and cycle < 500:
        pc_before = warp.pc
        if core.try_issue(cycle):
            issue_cycles[pc_before] = cycle
        cycle += 1
    assert issue_cycles[3] - issue_cycles[2] >= 12


def test_round_robin_scheduler_alternates_between_ready_warps():
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=1),
        Instruction(Opcode.ADD, dst=0, srcs=(0, 0)),
        Instruction(Opcode.ADD, dst=0, srcs=(0, 0)),
        Instruction(Opcode.HALT),
    ]
    program = _program(instructions, 1)
    config = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=2)
    memory = MainMemory(1024)
    hierarchy = MemoryHierarchy(config)
    counters = PerfCounters()
    core = SimtCore(0, config, program, hierarchy, memory, counters)
    for warp_id in range(2):
        core.add_warp(Warp(warp_id, 2, program.num_registers, make_csr(2, config)))
    issued_warps = []
    cycle = 0
    while core.busy and cycle < 100:
        before = [w.pc for w in core.warps]
        if core.try_issue(cycle):
            after = [w.pc for w in core.warps]
            issued_warps.append(0 if before[0] != after[0] else 1)
        cycle += 1
    # both warps made progress and the schedule interleaves them
    assert set(issued_warps) == {0, 1}
    assert issued_warps[:2] != [issued_warps[0], issued_warps[0]]


def test_barrier_synchronises_warps_within_a_core():
    b = KernelBuilder("bar")
    before = b.copy(b.const(1))
    b.barrier()
    after = b.copy(b.const(2))
    b.halt()
    program = b.link()

    config = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=2)
    memory = MainMemory(1024)
    hierarchy = MemoryHierarchy(config)
    counters = PerfCounters()
    core = SimtCore(0, config, program, hierarchy, memory, counters)
    for warp_id in range(2):
        core.add_warp(Warp(warp_id, 2, program.num_registers, make_csr(2, config)))
    cycle = 0
    while core.busy and cycle < 500:
        core.try_issue(cycle)
        cycle += 1
    assert not core.busy
    assert counters.barriers == 2
    for warp in core.warps:
        assert warp.regs[0][after.reg] == 2


def test_join_with_empty_stack_raises():
    instructions = [Instruction(Opcode.JOIN), Instruction(Opcode.HALT)]
    program = _program(instructions, 0)
    with pytest.raises(SimulationError, match="SIMT stack"):
        run_program(program, lanes=2)


def test_loop_end_without_loop_begin_raises():
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=0),
        Instruction(Opcode.LOOP_END, srcs=(0,), target=0),
        Instruction(Opcode.HALT),
    ]
    program = _program(instructions, 1)
    with pytest.raises(SimulationError, match="LOOP_END"):
        run_program(program, lanes=2)


def test_runaway_pc_raises():
    # a JMP to the HALT is fine, but a warp whose PC walks off the end must fail loudly
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=0),
        Instruction(Opcode.HALT),
    ]
    program = _program(instructions, 1)
    core, warp, _ = _single_warp_core(program)
    warp.pc = 5
    with pytest.raises(SimulationError, match="PC"):
        core.try_issue(0)


def test_instruction_and_lane_counters():
    b = KernelBuilder("count")
    x = b.const(1.5)
    y = b.copy(x + x)
    b.store(y, b.const(10))
    b.halt()
    run = run_program(b.link(), lanes=3)
    counters = run.counters
    assert counters.warp_instructions == len(b._instructions)
    assert counters.lane_instructions == counters.warp_instructions * 3
    assert counters.memory_instructions == 1
    assert counters.stores == 1


def test_tmc_reduces_active_mask_and_zero_halts():
    instructions = [
        Instruction(Opcode.LI, dst=0, imm=1),
        Instruction(Opcode.TMC, imm=2),
        Instruction(Opcode.ADD, dst=0, srcs=(0, 0)),
        Instruction(Opcode.HALT),
    ]
    program = _program(instructions, 1)
    run = run_program(program, lanes=4)
    # lanes 0-1 executed the post-TMC add, lanes 2-3 kept the original value
    assert run.lane_values(0) == [2, 2, 1, 1]

    halt_program = _program([Instruction(Opcode.TMC, imm=0), Instruction(Opcode.HALT)], 0)
    run2 = run_program(halt_program, lanes=4)
    assert run2.warp.halted
