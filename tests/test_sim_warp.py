"""Tests for warp state (repro.sim.warp)."""

import pytest

from repro.isa.registers import CsrFile
from repro.sim.warp import Warp, lanes_of, mask_of, popcount


def _csr(lanes=4):
    return CsrFile(num_threads=lanes, num_warps=2, num_cores=1)


def test_mask_helpers():
    assert mask_of(4) == 0b1111
    assert mask_of(1) == 0b1
    assert popcount(0b1011) == 3
    assert lanes_of(0b1010) == [1, 3]
    assert lanes_of(0) == []


def test_warp_starts_with_requested_active_lanes():
    warp = Warp(0, lane_count=4, num_registers=8, csr=_csr(), active_lanes=3)
    assert warp.active_mask == 0b111
    assert warp.active_lanes() == [0, 1, 2]
    assert not warp.halted
    assert warp.runnable


def test_warp_defaults_to_all_lanes_active():
    warp = Warp(0, lane_count=4, num_registers=2, csr=_csr())
    assert warp.active_mask == 0b1111


def test_invalid_active_lane_counts_rejected():
    with pytest.raises(ValueError):
        Warp(0, lane_count=4, num_registers=1, csr=_csr(), active_lanes=0)
    with pytest.raises(ValueError):
        Warp(0, lane_count=4, num_registers=1, csr=_csr(), active_lanes=5)
    with pytest.raises(ValueError):
        Warp(0, lane_count=0, num_registers=1, csr=_csr())


def test_active_lane_cache_tracks_mask_changes():
    warp = Warp(0, lane_count=4, num_registers=1, csr=_csr())
    assert warp.active_lanes() == [0, 1, 2, 3]
    warp.active_mask = 0b0101
    assert warp.active_lanes() == [0, 2]


def test_register_file_shape_and_independence():
    warp = Warp(0, lane_count=3, num_registers=5, csr=_csr(3))
    warp.regs[1][2] = 42.0
    assert warp.regs[0][2] == 0.0
    assert warp.regs[1][2] == 42.0
    assert len(warp.regs) == 3
    assert all(len(lane) == 5 for lane in warp.regs)


def test_scoreboard_ready_cycle_and_retirement():
    warp = Warp(0, lane_count=2, num_registers=4, csr=_csr(2))
    warp.scoreboard[1] = 10
    warp.scoreboard[3] = 20
    assert warp.registers_ready_cycle((0,)) == 0
    assert warp.registers_ready_cycle((1,)) == 10
    assert warp.registers_ready_cycle((1, 3)) == 20
    warp.retire_completed_writes(15)
    assert 1 not in warp.scoreboard
    assert 3 in warp.scoreboard


def test_runnable_reflects_halt_and_barrier():
    warp = Warp(0, lane_count=2, num_registers=1, csr=_csr(2))
    warp.at_barrier = True
    assert not warp.runnable
    warp.at_barrier = False
    warp.halted = True
    assert not warp.runnable
