"""Tests for sweep-result persistence (Figure2Result.save_json / load_json)."""

import pytest

from repro.experiments.figure2 import Figure2Result, SweepRecord, run_figure2
from repro.sim.config import ArchConfig


def _tiny_result() -> Figure2Result:
    configs = [ArchConfig.from_name("1c2w2t"), ArchConfig.from_name("2c2w4t")]
    return run_figure2(["vecadd"], configs, scale="smoke", call_simulation_limit=3)


def test_sweep_record_dict_round_trip():
    record = SweepRecord(problem="vecadd", category="math", config_name="1c2w2t",
                         hardware_parallelism=4, strategy="ours", local_size=16,
                         global_size=64, num_calls=1, cycles=1234, lane_utilization=1.0)
    restored = SweepRecord.from_dict(record.as_dict())
    assert restored == record


def test_save_and_load_json_preserves_statistics(tmp_path):
    result = _tiny_result()
    path = tmp_path / "sweep.json"
    result.save_json(path)
    assert path.exists()

    loaded = Figure2Result.load_json(path)
    assert len(loaded.records) == len(result.records)
    assert loaded.problems() == result.problems()
    for baseline in ("lws=1", "lws=32"):
        original = result.stats("vecadd", baseline)
        restored = loaded.stats("vecadd", baseline)
        assert restored.average == pytest.approx(original.average)
        assert restored.worst == pytest.approx(original.worst)
        assert restored.count == original.count


def test_loaded_result_supports_claims_and_reports(tmp_path):
    from repro.experiments.claims import evaluate_claims
    from repro.experiments.report import render_figure2_table

    result = _tiny_result()
    path = tmp_path / "sweep.json"
    result.save_json(path)
    loaded = Figure2Result.load_json(path)
    table = render_figure2_table(loaded)
    assert "vecadd" in table
    claims = evaluate_claims(loaded)
    assert claims.by_id("C4").holds
