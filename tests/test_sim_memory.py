"""Tests for the memory subsystem: main memory, caches, DRAM, coalescing, hierarchy."""

import numpy as np
import pytest

from repro.sim.config import ArchConfig
from repro.sim.memory.cache import Cache
from repro.sim.memory.coalescer import coalesce, coalescing_factor
from repro.sim.memory.dram import DramModel
from repro.sim.memory.hierarchy import MemoryHierarchy
from repro.sim.memory.mainmem import MainMemory, MemoryError_


# ----------------------------------------------------------------------
# MainMemory
# ----------------------------------------------------------------------
class TestMainMemory:
    def test_read_write_roundtrip(self):
        memory = MainMemory(128)
        memory.write(5, 3.25)
        assert memory.read(5) == 3.25
        assert memory.read(6) == 0.0

    def test_block_roundtrip_and_fill(self):
        memory = MainMemory(64)
        memory.write_block(8, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(memory.read_block(8, 3), [1.0, 2.0, 3.0])
        memory.fill(8, 3, 9.0)
        np.testing.assert_array_equal(memory.read_block(8, 3), [9.0, 9.0, 9.0])

    def test_out_of_bounds_raises(self):
        memory = MainMemory(16)
        with pytest.raises(MemoryError_):
            memory.read(16)
        with pytest.raises(MemoryError_):
            memory.write(-1, 0.0)
        with pytest.raises(MemoryError_):
            memory.read_block(10, 10)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MainMemory(0)

    def test_view_is_read_only(self):
        memory = MainMemory(8)
        view = memory.view()
        with pytest.raises(ValueError):
            view[0] = 1.0

    def test_integers_survive_round_trips_exactly(self):
        memory = MainMemory(8)
        memory.write(0, 123456789.0)
        assert int(memory.read(0)) == 123456789


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestCache:
    def test_first_access_misses_then_hits(self):
        cache = Cache("L1", size_words=256, line_words=16, ways=2)
        assert cache.access(3) is False
        assert cache.access(3) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_within_a_set(self):
        # 2 ways, 4 sets: lines 0, 4, 8 all map to set 0
        cache = Cache("L1", size_words=128, line_words=16, ways=2)
        assert cache.num_sets == 4
        cache.access(0)
        cache.access(4)
        cache.access(0)        # refresh line 0 -> line 4 becomes LRU
        cache.access(8)        # evicts line 4
        assert cache.access(0) is True
        assert cache.access(4) is False
        assert cache.evictions >= 1

    def test_writes_are_write_through_no_allocate(self):
        cache = Cache("L1", size_words=256, line_words=16, ways=2)
        assert cache.access(7, write=True) is False
        assert cache.write_misses == 1
        # the write did not allocate, so a later read still misses
        assert cache.access(7) is False

    def test_invalidate_clears_contents(self):
        cache = Cache("L1", size_words=256, line_words=16, ways=2)
        cache.access(1)
        cache.access(2)
        assert cache.resident_lines == 2
        cache.invalidate()
        assert cache.resident_lines == 0
        assert cache.access(1) is False

    def test_reset_statistics_keeps_contents(self):
        cache = Cache("L1", size_words=256, line_words=16, ways=2)
        cache.access(1)
        cache.reset_statistics()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access(1) is True       # line still resident

    def test_line_address_mapping(self):
        cache = Cache("L1", size_words=256, line_words=16, ways=2)
        assert cache.line_address(0) == 0
        assert cache.line_address(15) == 0
        assert cache.line_address(16) == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", size_words=100, line_words=16, ways=3)
        with pytest.raises(ValueError):
            Cache("bad", size_words=0, line_words=16, ways=1)

    def test_hit_rate(self):
        cache = Cache("L1", size_words=256, line_words=16, ways=2)
        cache.access(1)
        cache.access(1)
        cache.access(1)
        assert cache.hit_rate == pytest.approx(2 / 3)


# ----------------------------------------------------------------------
# DRAM
# ----------------------------------------------------------------------
class TestDram:
    def test_single_access_latency(self):
        dram = DramModel(latency=100, lines_per_cycle=2.0)
        assert dram.access(10) == 110

    def test_bandwidth_queueing_builds_up(self):
        dram = DramModel(latency=100, lines_per_cycle=0.5)   # one line every 2 cycles
        first = dram.access(0)
        second = dram.access(0)
        third = dram.access(0)
        assert first == 100
        assert second == 102
        assert third == 104
        assert dram.lines_transferred == 3
        assert dram.total_queue_cycles >= 4

    def test_idle_gaps_do_not_accumulate_credit(self):
        dram = DramModel(latency=10, lines_per_cycle=1.0)
        dram.access(0)
        # long idle gap; the next access at cycle 100 must not be early
        assert dram.access(100) == 110

    def test_reset_clears_queue_and_statistics(self):
        dram = DramModel(latency=10, lines_per_cycle=0.1)
        dram.access(0)
        dram.access(0)
        dram.reset()
        assert dram.lines_transferred == 0
        assert dram.access(0) == 10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DramModel(latency=-1, lines_per_cycle=1)
        with pytest.raises(ValueError):
            DramModel(latency=1, lines_per_cycle=0)


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_consecutive_addresses_coalesce_to_one_line(self):
        lines = coalesce([0, 1, 2, 3], line_words=16)
        assert len(lines) == 1
        assert lines[0][0] == 0
        assert lines[0][1] == [0, 1, 2, 3]

    def test_strided_addresses_hit_multiple_lines(self):
        lines = coalesce([0, 16, 32, 48], line_words=16)
        assert [line for line, _ in lines] == [0, 1, 2, 3]

    def test_duplicate_addresses_share_a_request(self):
        lines = coalesce([5, 5, 5], line_words=16)
        assert len(lines) == 1
        assert lines[0][1] == [0, 1, 2]

    def test_order_is_first_appearance(self):
        lines = coalesce([32, 0, 33], line_words=16)
        assert [line for line, _ in lines] == [2, 0]

    def test_coalescing_factor(self):
        assert coalescing_factor([0, 1, 2, 3], 16) == 4.0
        assert coalescing_factor([0, 16, 32, 48], 16) == 1.0
        assert coalescing_factor([], 16) == 0.0

    def test_invalid_line_size_rejected(self):
        with pytest.raises(ValueError):
            coalesce([0], line_words=0)


# ----------------------------------------------------------------------
# MemoryHierarchy
# ----------------------------------------------------------------------
class TestHierarchy:
    def _hierarchy(self):
        config = ArchConfig(cores=2, warps_per_core=2, threads_per_warp=4)
        return config, MemoryHierarchy(config)

    def test_cold_load_goes_to_dram_then_hits_l1(self):
        config, hierarchy = self._hierarchy()
        first = hierarchy.load_line(0, 5, now=0)
        assert first.level == "dram"
        assert first.latency >= config.dram_latency
        second = hierarchy.load_line(0, 5, now=200)
        assert second.level == "l1"
        assert second.latency == config.l1_hit_latency

    def test_l2_is_shared_between_cores(self):
        config, hierarchy = self._hierarchy()
        hierarchy.load_line(0, 7, now=0)        # core 0 brings the line into L2
        result = hierarchy.load_line(1, 7, now=300)
        assert result.level == "l2"
        assert result.latency == config.l1_hit_latency + config.l2_hit_latency

    def test_stores_never_stall(self):
        _, hierarchy = self._hierarchy()
        result = hierarchy.store_line(0, 9, now=0)
        assert result.latency == 1

    def test_statistics_aggregate_all_levels(self):
        _, hierarchy = self._hierarchy()
        hierarchy.load_line(0, 1, now=0)
        hierarchy.load_line(0, 1, now=300)
        stats = hierarchy.statistics()
        assert stats["l1_hits"] == 1
        assert stats["l1_misses"] == 1
        assert stats["l2_misses"] == 1
        assert stats["dram_lines"] == 1

    def test_invalidate_resets_everything(self):
        _, hierarchy = self._hierarchy()
        hierarchy.load_line(0, 1, now=0)
        hierarchy.invalidate()
        stats = hierarchy.statistics()
        assert stats == {"l1_hits": 0, "l1_misses": 0, "l2_hits": 0, "l2_misses": 0,
                         "dram_lines": 0, "dram_queue_cycles": 0}
        assert hierarchy.load_line(0, 1, now=0).level == "dram"
