"""Tests for CSR files (repro.isa.registers)."""

import pytest

from repro.isa.registers import Csr, CsrFile, NUM_ARG_SLOTS


def _csr_file() -> CsrFile:
    return CsrFile(
        num_threads=4, num_warps=2, num_cores=3,
        warp_id=1, core_id=2,
        workgroup_ids=[10.0, 11.0, 12.0],
        local_counts=[8.0, 8.0, 5.0],
        local_size=8, global_size=21, num_groups=3, call_index=4,
        args={0: 100.0, 1: 3.5},
    )


def test_hardware_shape_csrs():
    csr = _csr_file()
    assert csr.read(Csr.NUM_THREADS, 0) == 4
    assert csr.read(Csr.NUM_WARPS, 0) == 2
    assert csr.read(Csr.NUM_CORES, 0) == 3
    assert csr.read(Csr.WARP_ID, 0) == 1
    assert csr.read(Csr.CORE_ID, 0) == 2


def test_thread_id_is_per_lane():
    csr = _csr_file()
    assert [csr.read(Csr.THREAD_ID, lane) for lane in range(4)] == [0, 1, 2, 3]


def test_workgroup_assignment_is_per_lane():
    csr = _csr_file()
    assert csr.read(Csr.WORKGROUP_ID, 0) == 10.0
    assert csr.read(Csr.WORKGROUP_ID, 2) == 12.0
    assert csr.read(Csr.LOCAL_COUNT, 2) == 5.0


def test_unassigned_lane_reads_zero_workload():
    csr = _csr_file()
    assert csr.read(Csr.WORKGROUP_ID, 3) == 0
    assert csr.read(Csr.LOCAL_COUNT, 3) == 0


def test_launch_geometry_csrs():
    csr = _csr_file()
    assert csr.read(Csr.LOCAL_SIZE, 0) == 8
    assert csr.read(Csr.GLOBAL_SIZE, 0) == 21
    assert csr.read(Csr.NUM_GROUPS, 0) == 3
    assert csr.read(Csr.CALL_INDEX, 0) == 4


def test_argument_window():
    csr = _csr_file()
    assert csr.read(Csr.ARG_BASE + 0, 0) == 100.0
    assert csr.read(Csr.ARG_BASE + 1, 3) == 3.5
    assert csr.read(Csr.ARG_BASE + 2, 0) == 0.0        # unset slots read zero


def test_unknown_csr_raises():
    csr = _csr_file()
    with pytest.raises(KeyError):
        csr.read(0x999, 0)


def test_argument_window_size_is_bounded():
    assert NUM_ARG_SLOTS >= 16     # enough for every library kernel signature
