"""Tests for the opcode timing table (repro.isa.latencies)."""

from repro.isa.latencies import DEFAULT_LATENCIES, FunctionalUnit, OpTiming, timing_for
from repro.isa.opcodes import Opcode


def test_every_opcode_has_timing():
    for opcode in Opcode:
        assert opcode in DEFAULT_LATENCIES


def test_memory_latency_is_dynamic():
    assert DEFAULT_LATENCIES[Opcode.LOAD].latency is None
    assert DEFAULT_LATENCIES[Opcode.STORE].latency is None
    assert DEFAULT_LATENCIES[Opcode.LOAD].unit is FunctionalUnit.LSU


def test_simple_alu_is_single_cycle():
    assert DEFAULT_LATENCIES[Opcode.ADD].latency == 1
    assert DEFAULT_LATENCIES[Opcode.ADD].initiation_interval == 1


def test_sfu_ops_are_long_and_not_fully_pipelined():
    for opcode in (Opcode.FDIV, Opcode.FSQRT, Opcode.FEXP):
        timing = DEFAULT_LATENCIES[opcode]
        assert timing.unit is FunctionalUnit.SFU
        assert timing.latency is not None and timing.latency > 8
        assert timing.initiation_interval > 1


def test_float_ops_are_pipelined_multi_cycle():
    timing = DEFAULT_LATENCIES[Opcode.FMA]
    assert timing.unit is FunctionalUnit.FPU
    assert timing.latency >= 2
    assert timing.initiation_interval == 1


def test_timing_for_respects_overrides():
    override = {Opcode.FMA: OpTiming(FunctionalUnit.FPU, latency=9)}
    assert timing_for(Opcode.FMA, override).latency == 9
    assert timing_for(Opcode.FMA).latency == DEFAULT_LATENCIES[Opcode.FMA].latency
    # opcodes not in the override fall back to the defaults
    assert timing_for(Opcode.ADD, override).latency == 1
