"""Tests for Equation 1 and its helpers (repro.core.optimizer)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import (
    hardware_parallelism,
    kernel_calls_for,
    lane_utilization_for,
    optimal_local_size,
    workgroups_for,
)
from repro.sim.config import ArchConfig


def test_paper_example_figure1():
    """gws=128 on a 1c2w4t machine (hp=8) -> lws=16, the paper's optimum."""
    config = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)
    assert hardware_parallelism(config) == 8
    assert optimal_local_size(128, config) == 16


def test_degenerates_to_one_when_machine_exceeds_problem():
    config = ArchConfig(cores=64, warps_per_core=32, threads_per_warp=32)
    assert optimal_local_size(4096, config) == 1
    assert optimal_local_size(1, config) == 1


def test_rounds_up_for_non_divisible_sizes():
    # gws=4096, hp=3000: floor would give lws=1 (4096 calls!), ceil gives 2
    assert optimal_local_size(4096, 3000) == 2
    assert workgroups_for(4096, 2) == 2048
    assert kernel_calls_for(4096, 2, 3000) == 1


def test_accepts_hp_as_plain_integer():
    assert optimal_local_size(100, 10) == 10
    assert hardware_parallelism(8) == 8


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        optimal_local_size(0, 8)
    with pytest.raises(ValueError):
        optimal_local_size(8, 0)
    with pytest.raises(ValueError):
        workgroups_for(8, 0)


def test_helper_consistency_on_paper_workloads():
    config = ArchConfig(cores=4, warps_per_core=8, threads_per_warp=8)   # hp=256
    for gws in (4096, 42764, 360 * 360, 2708 * 16):
        lws = optimal_local_size(gws, config)
        assert kernel_calls_for(gws, lws, config) == 1
        assert lane_utilization_for(gws, lws, config) > 0.5


# ----------------------------------------------------------------------
# property-based: the choice is optimal by construction
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(gws=st.integers(min_value=1, max_value=1_000_000),
       cores=st.integers(min_value=1, max_value=64),
       warps=st.integers(min_value=1, max_value=32),
       threads=st.integers(min_value=1, max_value=32))
def test_eq1_always_fits_in_a_single_call(gws, cores, warps, threads):
    hp = cores * warps * threads
    lws = optimal_local_size(gws, hp)
    assert 1 <= lws <= gws
    assert kernel_calls_for(gws, lws, hp) == 1


@settings(max_examples=300, deadline=None)
@given(gws=st.integers(min_value=1, max_value=1_000_000),
       hp=st.integers(min_value=1, max_value=65536))
def test_eq1_maximises_workgroups_within_a_single_call(gws, hp):
    """No larger workgroup count fits in one call: Eq. 1 wastes no parallelism."""
    lws = optimal_local_size(gws, hp)
    groups = workgroups_for(gws, lws)
    assert groups <= min(hp, gws)
    if lws > 1:
        # using a smaller lws would overflow the machine (need a second call)
        assert workgroups_for(gws, lws - 1) > hp


@settings(max_examples=200, deadline=None)
@given(gws=st.integers(min_value=1, max_value=100_000),
       hp=st.integers(min_value=1, max_value=65536))
def test_eq1_degenerate_case_property(gws, hp):
    lws = optimal_local_size(gws, hp)
    if hp >= gws:
        assert lws == 1
    else:
        assert lws >= 2 or hp >= gws


@settings(max_examples=200, deadline=None)
@given(gws=st.integers(min_value=1, max_value=100_000),
       hp=st.integers(min_value=1, max_value=65536),
       lws=st.integers(min_value=1, max_value=4096))
def test_utilization_is_a_fraction_and_calls_positive(gws, hp, lws):
    utilization = lane_utilization_for(gws, lws, hp)
    assert 0.0 < utilization <= 1.0
    assert kernel_calls_for(gws, lws, hp) >= 1
