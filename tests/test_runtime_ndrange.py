"""Tests for NDRange decomposition (repro.runtime.ndrange)."""

import pytest

from repro.runtime.errors import LaunchError
from repro.runtime.ndrange import NDRange


def test_one_dimensional_range():
    ndrange = NDRange(128, 16)
    assert ndrange.global_size == 128
    assert ndrange.local_size == 16
    assert ndrange.num_workgroups == 8


def test_multi_dimensional_ranges_are_flattened():
    assert NDRange((16, 8), 4).global_size == 128
    assert NDRange((4, 4, 4), 2).global_size == 64
    assert NDRange((360, 360), 32).num_workgroups == -(-360 * 360 // 32)


def test_partial_last_workgroup():
    ndrange = NDRange(100, 32)
    assert ndrange.num_workgroups == 4
    assert ndrange.workgroup_size(0) == 32
    assert ndrange.workgroup_size(2) == 32
    assert ndrange.workgroup_size(3) == 4


def test_workgroup_size_bounds_checked():
    ndrange = NDRange(100, 32)
    with pytest.raises(LaunchError):
        ndrange.workgroup_size(4)
    with pytest.raises(LaunchError):
        ndrange.workgroup_size(-1)


def test_local_size_larger_than_global_is_clamped():
    ndrange = NDRange(10, 64)
    assert ndrange.local_size == 10
    assert ndrange.num_workgroups == 1


def test_invalid_sizes_rejected():
    with pytest.raises(LaunchError):
        NDRange(0, 1)
    with pytest.raises(LaunchError):
        NDRange((4, -1), 1)
    with pytest.raises(LaunchError):
        NDRange(16, 0)
    with pytest.raises(LaunchError):
        NDRange((1, 2, 3, 4), 1)


def test_with_local_size_keeps_global_dims():
    ndrange = NDRange((8, 8), 4)
    other = ndrange.with_local_size(16)
    assert other.global_dims == (8, 8)
    assert other.local_size == 16
    assert ndrange.local_size == 4


def test_unflatten_row_major():
    ndrange = NDRange((4, 8), 1)       # dims (y, x) -> row-major
    assert ndrange.unflatten(0) == (0, 0)
    assert ndrange.unflatten(7) == (0, 7)
    assert ndrange.unflatten(8) == (1, 0)
    assert ndrange.unflatten(31) == (3, 7)
    with pytest.raises(LaunchError):
        ndrange.unflatten(32)


def test_workgroup_sizes_sum_to_global_size():
    for gws, lws in ((128, 16), (100, 32), (7, 3), (4096, 5)):
        ndrange = NDRange(gws, lws)
        total = sum(ndrange.workgroup_size(i) for i in range(ndrange.num_workgroups))
        assert total == gws
