"""Tests for the Instruction representation (repro.isa.instruction)."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode


def test_basic_alu_instruction():
    instr = Instruction(Opcode.ADD, dst=2, srcs=(0, 1))
    assert instr.reads() == (0, 1)
    assert instr.writes() == (2,)
    assert instr.op_class is OpClass.INT_ALU


def test_missing_destination_raises():
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD, srcs=(0, 1))


def test_unexpected_destination_raises():
    with pytest.raises(ValueError):
        Instruction(Opcode.STORE, dst=3, srcs=(0, 1))


def test_store_has_no_writes():
    instr = Instruction(Opcode.STORE, srcs=(4, 5), imm=2)
    assert instr.writes() == ()
    assert instr.reads() == (4, 5)


def test_with_section_returns_tagged_copy():
    instr = Instruction(Opcode.FMA, dst=0, srcs=(1, 2, 3))
    tagged = instr.with_section("mac")
    assert tagged.section == "mac"
    assert instr.section == "body"          # original unchanged (frozen dataclass)
    assert tagged.opcode is Opcode.FMA


def test_with_targets_resolves_labels():
    instr = Instruction(Opcode.SPLIT, srcs=(0,), target="else_1", target2="join_1")
    resolved = instr.with_targets(10, 20)
    assert resolved.target == 10
    assert resolved.target2 == 20


def test_disassembly_contains_operands_and_immediates():
    instr = Instruction(Opcode.LOAD, dst=7, srcs=(3,), imm=4, comment="x[i]")
    text = instr.disassemble()
    assert "load" in text
    assert "r7" in text and "r3" in text
    assert "4" in text
    assert "x[i]" in text


def test_disassembly_of_float_immediate():
    instr = Instruction(Opcode.LI, dst=0, imm=0.5)
    assert "0.5" in instr.disassemble()


def test_disassembly_of_branch_targets():
    instr = Instruction(Opcode.JMP, target="loop_3")
    assert "@loop_3" in instr.disassemble()
