"""Tests for the workload generators and problem descriptors (repro.workloads)."""

import numpy as np
import pytest

from repro.workloads.graphs import CORA_EDGES, CORA_NODES, cora_like_graph, synthetic_graph
from repro.workloads.images import random_conv_weights, random_feature_map, random_image
from repro.workloads.points import random_points
from repro.workloads.problems import (
    PAPER_PROBLEM_NAMES,
    SIZEABLE_PROBLEMS,
    UnknownProblemError,
    available_problems,
    make_problem,
    problem_global_size,
)
from repro.workloads.tensors import random_matrix, random_vector


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
class TestTensors:
    def test_vectors_are_reproducible_and_bounded(self):
        a = random_vector(100, seed=3)
        b = random_vector(100, seed=3)
        c = random_vector(100, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        assert a.shape == (100,)
        assert (a >= -1).all() and (a < 1).all()

    def test_matrix_shape_and_reproducibility(self):
        m = random_matrix(5, 7, seed=1)
        assert m.shape == (5, 7)
        np.testing.assert_array_equal(m, random_matrix(5, 7, seed=1))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            random_vector(0)
        with pytest.raises(ValueError):
            random_matrix(0, 3)


class TestPointsAndImages:
    def test_points_have_geographic_ranges(self):
        lat, lng = random_points(500, seed=2)
        assert len(lat) == len(lng) == 500
        assert (np.abs(lat) <= 90).all()
        assert (np.abs(lng) <= 180).all()

    def test_image_and_feature_map_shapes(self):
        assert random_image(12, 10).shape == (12, 10)
        assert random_feature_map(3, 8, 8).shape == (3, 8, 8)
        assert random_conv_weights(4, 3).shape == (4, 3, 3, 3)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            random_points(0)
        with pytest.raises(ValueError):
            random_image(0, 5)
        with pytest.raises(ValueError):
            random_feature_map(1, 1, 0)


class TestGraphs:
    def test_synthetic_graph_is_valid_csr(self):
        graph = synthetic_graph(100, 400, seed=5)
        assert graph.num_nodes == 100
        assert graph.num_edges == 400
        assert graph.row_ptr[0] == 0
        assert graph.row_ptr[-1] == 400
        assert (np.diff(graph.row_ptr) >= 0).all()
        assert (graph.col_idx >= 0).all() and (graph.col_idx < 100).all()
        # degrees sum to edge count and match the accessors
        assert sum(graph.degree(v) for v in range(100)) == 400
        assert len(graph.neighbours(0)) == graph.degree(0)
        assert graph.average_degree == pytest.approx(4.0)

    def test_graph_is_reproducible(self):
        a = synthetic_graph(64, 256, seed=1)
        b = synthetic_graph(64, 256, seed=1)
        np.testing.assert_array_equal(a.row_ptr, b.row_ptr)
        np.testing.assert_array_equal(a.col_idx, b.col_idx)

    def test_cora_like_graph_matches_published_shape(self):
        graph = cora_like_graph(seed=0)
        assert graph.num_nodes == CORA_NODES == 2708
        assert graph.num_edges == CORA_EDGES == 10556
        scaled = cora_like_graph(seed=0, scale=0.1)
        assert scaled.num_nodes == pytest.approx(271, abs=1)

    def test_invalid_graph_parameters(self):
        with pytest.raises(ValueError):
            synthetic_graph(0, 10)
        with pytest.raises(ValueError):
            synthetic_graph(10, -1)
        with pytest.raises(ValueError):
            cora_like_graph(scale=0)


# ----------------------------------------------------------------------
# problems
# ----------------------------------------------------------------------
class TestProblems:
    def test_available_problems_cover_the_paper_list(self):
        names = available_problems()
        assert set(PAPER_PROBLEM_NAMES) == set(names)
        assert len(PAPER_PROBLEM_NAMES) == 9

    def test_unknown_problem_or_scale_raises(self):
        with pytest.raises(UnknownProblemError):
            make_problem("not_a_problem")
        with pytest.raises(UnknownProblemError):
            make_problem("vecadd", scale="gigantic")

    @pytest.mark.parametrize("scale", ["smoke", "bench", "paper"])
    @pytest.mark.parametrize("name", PAPER_PROBLEM_NAMES)
    def test_problem_global_size_matches_the_built_problem(self, name, scale):
        # the size-only view used by scenario planning must agree with the
        # factory, data allocation excluded
        assert problem_global_size(name, scale=scale, seed=3) == \
               make_problem(name, scale=scale, seed=3).global_size

    def test_problem_global_size_honours_overrides_and_validation(self):
        for name in SIZEABLE_PROBLEMS:
            assert problem_global_size(name, scale="bench", size=96) == 96
        with pytest.raises(UnknownProblemError):
            problem_global_size("sgemm", size=96)         # not sizeable
        with pytest.raises(UnknownProblemError):
            problem_global_size("vecadd", size=0)
        with pytest.raises(UnknownProblemError):
            problem_global_size("not_a_problem")
        with pytest.raises(UnknownProblemError):
            problem_global_size("vecadd", scale="gigantic")

    def test_paper_scale_sizes_match_the_paper(self):
        assert make_problem("vecadd", scale="paper").global_size == 4096
        assert make_problem("knn", scale="paper").parameters["points"] == 42764
        sgemm = make_problem("sgemm", scale="paper")
        assert (sgemm.parameters["m"], sgemm.parameters["n"], sgemm.parameters["k"]) == (256, 16, 144)
        gauss = make_problem("gaussian", scale="paper")
        assert gauss.parameters["width"] == 360 and gauss.parameters["height"] == 360
        gcn = make_problem("gcn_aggregate", scale="paper")
        assert gcn.parameters["nodes"] == 2708 and gcn.parameters["hidden"] == 16
        conv = make_problem("conv2d", scale="paper")
        assert conv.parameters["in_channels"] == 16
        assert conv.global_size == 16 * 32 * 32

    @pytest.mark.parametrize("name", PAPER_PROBLEM_NAMES)
    def test_every_problem_has_reference_and_category(self, name):
        problem = make_problem(name, scale="smoke")
        assert problem.category in ("math", "ml")
        assert problem.global_size >= 1
        reference = problem.reference_outputs()
        assert reference
        for key, value in reference.items():
            assert isinstance(value, np.ndarray)
        assert problem.kernel.check_arguments(problem.arguments) is None
        assert name in problem.summary()

    def test_bench_scale_is_smaller_than_paper_scale(self):
        for name in PAPER_PROBLEM_NAMES:
            bench = make_problem(name, scale="bench")
            paper = make_problem(name, scale="paper")
            assert bench.global_size < paper.global_size

    def test_problems_are_deterministic_per_seed(self):
        a = make_problem("vecadd", scale="smoke", seed=7)
        b = make_problem("vecadd", scale="smoke", seed=7)
        c = make_problem("vecadd", scale="smoke", seed=8)
        np.testing.assert_array_equal(a.arguments["a"], b.arguments["a"])
        assert not np.array_equal(a.arguments["a"], c.arguments["a"])

    def test_math_and_ml_categories_match_the_paper_grouping(self):
        math_problems = {n for n in PAPER_PROBLEM_NAMES
                         if make_problem(n, scale="smoke").category == "math"}
        ml_problems = {n for n in PAPER_PROBLEM_NAMES
                       if make_problem(n, scale="smoke").category == "ml"}
        assert {"vecadd", "relu", "saxpy", "sgemm", "knn", "gaussian"} == math_problems
        assert {"gcn_aggregate", "gcn_layer", "conv2d"} == ml_problems
