"""Tests for the Vortex-style dispatcher (repro.runtime.dispatcher).

These tests pin down the mapping semantics the whole paper rests on: how
workgroups are spread across cores, how lanes are filled threads-first, when
multiple kernel calls are needed, and what the three regimes look like.
"""

import math

import pytest

from repro.isa.registers import Csr
from repro.runtime.dispatcher import build_dispatch_plan
from repro.runtime.ndrange import NDRange
from repro.sim.config import ArchConfig


def _plan(gws, lws, cores=1, warps=2, threads=4, args=None):
    config = ArchConfig(cores=cores, warps_per_core=warps, threads_per_warp=threads)
    return build_dispatch_plan(NDRange(gws, lws), config, args or {}), config


# ----------------------------------------------------------------------
# the three regimes of the paper (Figure 1, gws=128, hp=8)
# ----------------------------------------------------------------------
def test_regime_multiple_calls_when_lws_too_small():
    plan, _ = _plan(128, 1)           # 128 workgroups on 8 lanes
    assert plan.num_workgroups == 128
    assert plan.num_calls == 16
    assert plan.regime() == "multiple-calls"
    assert all(call.lane_utilization == 1.0 for call in plan.calls)


def test_regime_balanced_when_lws_matches_eq1():
    plan, _ = _plan(128, 16)          # exactly hp workgroups
    assert plan.num_workgroups == 8
    assert plan.num_calls == 1
    assert plan.regime() == "balanced"
    assert plan.calls[0].lane_utilization == 1.0


def test_regime_under_utilised_when_lws_too_large():
    plan, _ = _plan(128, 32)          # 4 workgroups on 8 lanes
    assert plan.num_workgroups == 4
    assert plan.num_calls == 1
    assert plan.regime() == "under-utilised"
    assert plan.calls[0].lane_utilization == pytest.approx(0.5)

    plan64, _ = _plan(128, 64)
    assert plan64.calls[0].lane_utilization == pytest.approx(0.25)


# ----------------------------------------------------------------------
# placement rules
# ----------------------------------------------------------------------
def test_workgroups_split_equally_across_cores():
    plan, _ = _plan(64, 1, cores=4, warps=2, threads=4)
    first_call = plan.calls[0]
    per_core = {}
    for launch in first_call.launches:
        per_core.setdefault(launch.core_id, 0)
        per_core[launch.core_id] += len(launch.csr.workgroup_ids)
    assert set(per_core) == {0, 1, 2, 3}
    assert all(count == 8 for count in per_core.values())


def test_threads_filled_before_warps():
    # 6 workgroups on a core with 2 warps x 4 threads: warp 0 gets 4, warp 1 gets 2
    plan, _ = _plan(6, 1, cores=1, warps=2, threads=4)
    launches = plan.calls[0].launches
    assert len(launches) == 2
    assert launches[0].warp_id == 0 and launches[0].active_lanes == 4
    assert launches[1].warp_id == 1 and launches[1].active_lanes == 2


def test_every_workgroup_assigned_exactly_once():
    plan, _ = _plan(100, 3, cores=3, warps=2, threads=4)
    seen = []
    for call in plan.calls:
        for launch in call.launches:
            seen.extend(int(w) for w in launch.csr.workgroup_ids)
    assert sorted(seen) == list(range(plan.num_workgroups))


def test_partial_workgroup_gets_reduced_local_count():
    plan, _ = _plan(10, 4, cores=1, warps=2, threads=4)       # groups of 4, 4, 2
    launches = plan.calls[0].launches
    counts = [count for launch in launches for count in launch.csr.local_counts]
    assert sorted(counts) == [2.0, 4.0, 4.0]


def test_csr_contents_describe_the_launch():
    plan, config = _plan(64, 8, cores=2, warps=2, threads=4)
    launch = plan.calls[0].launches[0]
    csr = launch.csr
    assert csr.local_size == 8
    assert csr.global_size == 64
    assert csr.num_groups == 8
    assert csr.num_threads == config.threads_per_warp
    assert csr.num_cores == config.cores
    assert csr.read(Csr.CALL_INDEX, 0) == 0


def test_argument_values_replicated_into_every_warp():
    plan, _ = _plan(32, 1, cores=2, warps=2, threads=4, args={0: 123.0, 1: 7.0})
    for call in plan.calls:
        for launch in call.launches:
            assert launch.csr.args[0] == 123.0
            assert launch.csr.args[1] == 7.0


def test_multiple_calls_partition_workgroups_in_order():
    plan, _ = _plan(40, 1, cores=1, warps=2, threads=4)       # hp = 8 -> 5 calls
    assert plan.num_calls == 5
    assert plan.calls[0].workgroups == tuple(range(8))
    assert plan.calls[-1].workgroups == tuple(range(32, 40))
    assert plan.calls[2].call_index == 2


def test_last_call_may_be_partially_filled():
    plan, _ = _plan(20, 1, cores=1, warps=2, threads=4)       # hp = 8 -> calls of 8, 8, 4
    assert plan.num_calls == 3
    assert plan.calls[-1].active_lanes == 4
    assert plan.calls[-1].lane_utilization == pytest.approx(0.5)
    assert plan.average_lane_utilization == pytest.approx((1 + 1 + 0.5) / 3)


def test_total_warps_spawned_counts_every_call():
    plan, _ = _plan(32, 1, cores=1, warps=2, threads=4)       # 4 calls x 2 warps
    assert plan.total_warps_spawned == 8


def test_cores_used_reflects_under_utilisation():
    plan, _ = _plan(8, 8, cores=4, warps=2, threads=4)        # only 1 workgroup
    assert plan.calls[0].cores_used == 1
    assert plan.calls[0].warps_spawned == 1


def test_describe_mentions_the_regime():
    plan, _ = _plan(128, 1)
    assert "multiple-calls" in plan.describe()


def test_huge_machine_with_tiny_problem_single_call():
    plan, config = _plan(16, 1, cores=8, warps=4, threads=8)
    assert config.hardware_parallelism == 256
    assert plan.num_calls == 1
    # spread equally: ceil(16/8)=2 workgroups per core, 8 cores used
    assert plan.calls[0].cores_used == 8
    assert plan.calls[0].active_lanes == 16
