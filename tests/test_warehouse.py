"""Tests for the results warehouse (repro.warehouse).

Covers backend selection (sqlite default, duckdb import-guarded), the
ingest pipeline's incremental sync + rewrite detection, rebuild parity and
idempotence against hostile journals (half-written tails, superseded
duplicates, in-place compaction), the canned analytics, the raw-SQL guard,
and the warehouse-backed scenario report path.
"""

import json

import pytest

from repro.campaign.cache import CACHE_FILE_NAME, ResultCache
from repro.campaign.journal import iter_journal_entries
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CACHE_SCHEMA_VERSION, simulator_version
from repro.scenarios import Planner, ResultSink, ScenarioContext
from repro.warehouse import (
    BACKEND_ENV,
    BackendUnavailableError,
    KIND_CACHE,
    KIND_SINK,
    WarehouseError,
    WarehouseSinkView,
    journal_synced,
    open_store,
    parity_check,
    rebuild,
    render_status,
    resolve_backend,
    run_canned,
    run_sql,
    sink_records,
    sync,
    table_counts,
)

from tests.test_scenarios import tiny_scenario

SMOKE = ScenarioContext(scale="smoke", sweep="smoke")


# ----------------------------------------------------------------------
# Synthetic journal records (no simulation needed)
# ----------------------------------------------------------------------
def result_dict(job_hash="h0", problem="vecadd", config="1c2w2t",
                cycles=100, lws=1, **overrides):
    data = {
        "job_hash": job_hash, "problem": problem, "category": "math",
        "config_name": config, "hardware_parallelism": 4, "global_size": 64,
        "local_size": lws, "num_workgroups": 64, "num_calls": 1,
        "cycles": cycles, "sim_cycles": cycles, "overhead_cycles": 0,
        "extrapolated": False, "lane_utilization": 1.0,
        "counters": {"cycles": float(cycles), "instructions_executed": 10.0},
        "elapsed_seconds": 0.01,
    }
    data.update(overrides)
    return data


def cache_record(job_hash, **overrides):
    return {
        "hash": job_hash,
        "schema": CACHE_SCHEMA_VERSION,
        "simulator": simulator_version(),
        "spec": {"problem": "vecadd"},
        "result": result_dict(job_hash=job_hash, **overrides),
    }


def sink_line(key, job_hash, scenario="tiny", strategy="ours", **overrides):
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "simulator": simulator_version(),
        "key": key, "hash": job_hash, "scenario": scenario,
        "spec": {"problem": "vecadd"},
        "meta": {"scenario": scenario, "problem": "vecadd", "config": "1c2w2t",
                 "strategy": strategy, "engine": None, "seed": 0,
                 "scale": "smoke", "size": None, "gws": 64},
        "result": result_dict(job_hash=job_hash, **overrides),
    }


def write_journal(path, records):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                            for r in records))
    return path


def dump(store):
    """Every derived row, ordered -- the warehouse's comparable contents."""
    return {table: sorted(map(tuple, store.query(f"SELECT * FROM {table}").rows))
            for table in ("jobs", "scenario_runs", "counters")}


@pytest.fixture
def store(tmp_path):
    with open_store(tmp_path / "wh.sqlite") as handle:
        yield handle


@pytest.fixture
def cache_journal(tmp_path):
    return write_journal(tmp_path / "cache" / CACHE_FILE_NAME, [
        cache_record("h0", cycles=100, lws=1),
        cache_record("h1", cycles=80, lws=16, config="2c2w4t"),
        cache_record("h2", cycles=120, lws=4, problem="sgemm"),
    ])


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestBackends:
    def test_sqlite_is_the_default_and_creates_the_schema(self, store):
        assert store.backend == "sqlite"
        assert table_counts(store) == {"jobs": 0, "scenario_runs": 0,
                                       "counters": 0, "spans": 0, "metrics": 0}

    def test_backend_env_is_honoured(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "duckdb")
        assert resolve_backend() == "duckdb"
        assert resolve_backend("sqlite") == "sqlite"   # argument wins

    def test_unknown_backend_is_an_explicit_error(self):
        with pytest.raises(WarehouseError, match="unknown warehouse backend"):
            resolve_backend("postgres")

    def test_missing_duckdb_errors_instead_of_falling_back(self, tmp_path,
                                                           monkeypatch):
        import repro.warehouse.duckdb_backend as backend

        monkeypatch.setattr(backend, "duckdb", None)
        with pytest.raises(BackendUnavailableError, match="duckdb"):
            open_store(tmp_path / "wh.duckdb", backend="duckdb")

    def test_duckdb_backend_round_trips(self, tmp_path, cache_journal):
        pytest.importorskip("duckdb")
        with open_store(tmp_path / "wh.duckdb", backend="duckdb") as handle:
            report = sync(handle, journals=[(cache_journal, KIND_CACHE)])
            assert report.ingested == 3
            assert parity_check(
                handle, journals=[(cache_journal, KIND_CACHE)]) == []
            assert run_canned(handle, "best-lws").rows

    def test_schema_version_bump_resets_the_store(self, tmp_path,
                                                  cache_journal):
        path = tmp_path / "wh.sqlite"
        with open_store(path) as handle:
            sync(handle, journals=[(cache_journal, KIND_CACHE)])
            handle.execute("UPDATE meta SET value = '0' "
                           "WHERE key = 'schema_version'")
        with open_store(path) as handle:
            assert table_counts(handle)["jobs"] == 0    # dropped, rebuildable

    def test_read_only_store_requires_an_existing_database(self, tmp_path):
        with pytest.raises(WarehouseError, match="no warehouse"):
            open_store(tmp_path / "missing.sqlite", read_only=True)


# ----------------------------------------------------------------------
# Incremental sync
# ----------------------------------------------------------------------
class TestSync:
    def test_cold_sync_ingests_every_record_and_counter(self, store,
                                                        cache_journal):
        report = sync(store, journals=[(cache_journal, KIND_CACHE)])
        assert report.ingested == 3
        counts = table_counts(store)
        assert counts["jobs"] == 3
        assert counts["counters"] == 6        # 2 counters per record

    def test_double_sync_is_a_no_op(self, store, cache_journal):
        journals = [(cache_journal, KIND_CACHE)]
        sync(store, journals=journals)
        before = dump(store)
        report = sync(store, journals=journals)
        assert report.ingested == 0
        assert not report.journals[0].resynced
        assert dump(store) == before

    def test_discover_journals_reports_absolute_paths(self, tmp_path,
                                                      monkeypatch):
        from repro.warehouse.ingest import discover_journals

        monkeypatch.chdir(tmp_path)
        for path, _ in discover_journals(cache_dir="cache-rel",
                                         scenario_dir="sinks-rel",
                                         telemetry_dir="tele-rel"):
            assert path.is_absolute()
            assert str(path).startswith(str(tmp_path))

    def test_trailing_blank_lines_do_not_stall_the_offset(self, store,
                                                          cache_journal):
        # Blank lines at the journal tail must be consumed, not skipped:
        # a stalled offset would make every later sync re-hash and re-read
        # the same tail forever.
        with cache_journal.open("a") as journal:
            journal.write("\n\n")
        journals = [(cache_journal, KIND_CACHE)]
        first = sync(store, journals=journals)
        assert first.journals[0].offset == cache_journal.stat().st_size
        second = sync(store, journals=journals)
        assert second.ingested == 0
        assert not second.journals[0].resynced
        assert second.journals[0].offset == first.journals[0].offset

    def test_appends_are_ingested_incrementally(self, store, cache_journal):
        journals = [(cache_journal, KIND_CACHE)]
        first = sync(store, journals=journals)
        with cache_journal.open("a") as journal:
            journal.write(json.dumps(cache_record("h3", cycles=70)) + "\n")
        second = sync(store, journals=journals)
        assert second.ingested == 1           # only the appended record
        assert not second.journals[0].resynced
        assert second.journals[0].offset > first.journals[0].offset
        assert table_counts(store)["jobs"] == 4

    def test_superseded_duplicates_keep_the_last_record(self, store, tmp_path):
        journal = write_journal(tmp_path / "dup" / CACHE_FILE_NAME, [
            cache_record("h0", cycles=100),
            cache_record("h1", cycles=80),
            cache_record("h0", cycles=90),    # concurrent re-simulation wins
        ])
        journals = [(journal, KIND_CACHE)]
        sync(store, journals=journals)
        assert table_counts(store)["jobs"] == 2
        cycles = store.query(
            "SELECT cycles FROM jobs WHERE hash = 'h0'").rows
        assert cycles == [(90,)]
        assert parity_check(store, journals=journals) == []

    def test_half_written_tail_is_invisible_until_terminated(self, store,
                                                             cache_journal):
        journals = [(cache_journal, KIND_CACHE)]
        line = json.dumps(cache_record("h3", cycles=70)) + "\n"
        with cache_journal.open("a") as journal:
            journal.write(line[: len(line) // 2])     # killed writer
        report = sync(store, journals=journals)
        assert report.ingested == 3                   # the tail is not a row
        assert report.journals[0].skipped == 0        # ...nor even seen
        assert parity_check(store, journals=journals) == []

        # The next writer terminates the tail (journal tail-repair); the
        # now-complete-but-corrupt line is skipped, the rest ingests.
        with cache_journal.open("a") as journal:
            journal.write("\n" + json.dumps(cache_record("h4", cycles=60)) + "\n")
        second = sync(store, journals=journals)
        assert second.ingested == 1
        assert second.journals[0].skipped == 1
        assert table_counts(store)["jobs"] == 4
        assert parity_check(store, journals=journals) == []

    def test_inplace_rewrite_triggers_a_clean_resync(self, store,
                                                     cache_journal):
        journals = [(cache_journal, KIND_CACHE)]
        sync(store, journals=journals)
        # Compaction-style rewrite: drop the middle record in place.
        records = [json.loads(line) for line in
                   cache_journal.read_text().splitlines()]
        write_journal(cache_journal, [records[0], records[2]])
        report = sync(store, journals=journals)
        assert report.journals[0].resynced
        assert table_counts(store)["jobs"] == 2
        assert parity_check(store, journals=journals) == []

    def test_deleted_journal_drops_its_rows(self, store, cache_journal):
        journals = [(cache_journal, KIND_CACHE)]
        sync(store, journals=journals)
        cache_journal.unlink()
        sync(store, journals=journals)
        assert table_counts(store) == {"jobs": 0, "scenario_runs": 0,
                                       "counters": 0, "spans": 0, "metrics": 0}

    def test_stale_version_records_are_kept_per_version(self, store, tmp_path):
        old = cache_record("h0", cycles=100)
        old["simulator"] = "0.0.0-ancient"
        journal = write_journal(tmp_path / "mixed" / CACHE_FILE_NAME,
                                [old, cache_record("h0", cycles=90)])
        journals = [(journal, KIND_CACHE)]
        sync(store, journals=journals)
        # Both versions survive side by side (history!), keyed by simulator.
        assert table_counts(store)["jobs"] == 2
        assert parity_check(store, journals=journals) == []
        # ...but current-version analytics only see the current row.
        assert run_canned(store, "best-lws").rows == [("vecadd", "1c2w2t", 1, 90)]


# ----------------------------------------------------------------------
# Rebuild: parity + idempotence
# ----------------------------------------------------------------------
class TestRebuildParity:
    def test_rebuild_equals_incremental_sync(self, store, cache_journal):
        journals = [(cache_journal, KIND_CACHE)]
        sync(store, journals=journals)
        with cache_journal.open("a") as journal:
            journal.write(json.dumps(cache_record("h3", cycles=70)) + "\n")
        sync(store, journals=journals)
        incremental = dump(store)
        rebuild(store, journals=journals)
        assert dump(store) == incremental

    def test_rebuild_is_idempotent(self, store, cache_journal, tmp_path):
        sink_journal = write_journal(tmp_path / "sinks" / "tiny-smoke.jsonl", [
            sink_line("k0", "h0", cycles=100),
            sink_line("k1", "h1", strategy="lws=1", cycles=150),
        ])
        journals = [(cache_journal, KIND_CACHE), (sink_journal, KIND_SINK)]
        rebuild(store, journals=journals)
        first = dump(store)
        rebuild(store, journals=journals)
        assert dump(store) == first
        assert parity_check(store, journals=journals) == []

    def test_rebuild_parity_on_a_tail_damaged_journal(self, store,
                                                      cache_journal):
        with cache_journal.open("a") as journal:
            journal.write('{"hash": "h9", "schema":')     # killed mid-record
        journals = [(cache_journal, KIND_CACHE)]
        rebuild(store, journals=journals)
        assert table_counts(store)["jobs"] == 3
        assert parity_check(store, journals=journals) == []

    def test_rebuild_parity_on_a_superseded_duplicate_journal(self, store,
                                                              tmp_path):
        journal = write_journal(tmp_path / "dup" / CACHE_FILE_NAME, [
            cache_record("h0", cycles=100),
            cache_record("h0", cycles=95),
            cache_record("h0", cycles=90),
        ])
        journals = [(journal, KIND_CACHE)]
        rebuild(store, journals=journals)
        assert table_counts(store)["jobs"] == 1
        assert store.query("SELECT cycles FROM jobs").rows == [(90,)]
        assert parity_check(store, journals=journals) == []

    def test_parity_detects_tampered_rows(self, store, cache_journal):
        journals = [(cache_journal, KIND_CACHE)]
        rebuild(store, journals=journals)
        store.execute("UPDATE jobs SET raw = '{}' WHERE hash = 'h1'")
        mismatches = parity_check(store, journals=journals)
        assert any("differs" in m for m in mismatches)

    def test_parity_detects_missing_and_phantom_rows(self, store,
                                                     cache_journal):
        journals = [(cache_journal, KIND_CACHE)]
        rebuild(store, journals=journals)
        store.execute("DELETE FROM jobs WHERE hash = 'h0'")
        assert any("missing" in m for m in parity_check(store, journals=journals))
        rebuild(store, journals=journals)
        with cache_journal.open("a") as journal:
            journal.write(json.dumps(cache_record("h5")) + "\n")
        # journal moved ahead of the warehouse: h5 is missing until a sync
        assert any("missing" in m for m in parity_check(store, journals=journals))
        sync(store, journals=journals)
        assert parity_check(store, journals=journals) == []


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
class TestQueries:
    def test_best_lws_picks_the_minimum_cycles_row(self, store, tmp_path):
        journal = write_journal(tmp_path / "c" / CACHE_FILE_NAME, [
            cache_record("h0", cycles=100, lws=1),
            cache_record("h1", cycles=80, lws=16),
            cache_record("h2", cycles=95, lws=32),
        ])
        sync(store, journals=[(journal, KIND_CACHE)])
        assert run_canned(store, "best-lws").rows == [("vecadd", "1c2w2t", 16, 80)]

    def test_speedup_compares_baselines_against_ours(self, store, tmp_path):
        journal = write_journal(tmp_path / "s" / "tiny.jsonl", [
            sink_line("k0", "h0", strategy="ours", cycles=100),
            sink_line("k1", "h1", strategy="lws=1", cycles=150),
        ])
        sync(store, journals=[(journal, KIND_SINK)])
        rows = run_canned(store, "speedup").rows
        assert len(rows) == 1
        problem, baseline, points, avg_ratio, worst_ratio = rows[0]
        assert (problem, baseline, points) == ("vecadd", "lws=1", 1)
        assert avg_ratio == pytest.approx(1.5)
        assert worst_ratio == pytest.approx(1.5)

    def test_cache_trends_and_scenarios_summaries(self, store, cache_journal,
                                                  tmp_path):
        sink_journal = write_journal(tmp_path / "s" / "tiny.jsonl",
                                     [sink_line("k0", "h0")])
        sync(store, journals=[(cache_journal, KIND_CACHE),
                              (sink_journal, KIND_SINK)])
        trends = run_canned(store, "cache-trends")
        assert trends.rows[0][0] == simulator_version()
        assert trends.rows[0][1] == 3
        scenarios = run_canned(store, "scenarios")
        assert scenarios.rows[0][0] == "tiny"

    def test_unknown_canned_query_lists_the_names(self, store):
        with pytest.raises(WarehouseError, match="best-lws"):
            run_canned(store, "nope")

    def test_raw_sql_is_select_only(self, store):
        assert run_sql(store, "SELECT 1 AS one").rows == [(1,)]
        assert run_sql(store, "  WITH t AS (SELECT 2 AS v) "
                              "SELECT v FROM t ;").rows == [(2,)]
        for bad in ("DELETE FROM jobs", "DROP TABLE jobs",
                    "SELECT 1; DELETE FROM jobs", ""):
            with pytest.raises(WarehouseError):
                run_sql(store, bad)

    def test_query_result_renders_as_a_table(self, store, cache_journal):
        sync(store, journals=[(cache_journal, KIND_CACHE)])
        text = run_canned(store, "best-lws").render()
        assert "| problem |" in text
        assert "vecadd" in text

    def test_render_status_reports_tables_and_offsets(self, store,
                                                     cache_journal):
        sync(store, journals=[(cache_journal, KIND_CACHE)])
        text = render_status(store)
        assert "jobs            : 3 row(s)" in text
        assert "(synced)" in text
        assert "sqlite backend" in text


# ----------------------------------------------------------------------
# End to end against real scenario runs
# ----------------------------------------------------------------------
class TestScenarioIntegration:
    def test_sink_records_round_trip_through_the_warehouse(self, store,
                                                           tmp_path):
        scenario = tiny_scenario(strategies=("ours", "lws=1"))
        sink = ResultSink(tmp_path / "sinks" / "tiny-smoke.jsonl")
        cache = ResultCache(tmp_path / "cache")
        Planner(runner=CampaignRunner(cache=cache)).run(
            scenario, SMOKE, sink=sink)

        journals = [(cache.journal_path, KIND_CACHE), (sink.path, KIND_SINK)]
        sync(store, journals=journals)
        assert parity_check(store, journals=journals) == []
        assert journal_synced(store, sink.path)

        from_journal = sink.load()
        from_warehouse = sink_records(store, sink.path)
        assert from_warehouse == from_journal

        view = WarehouseSinkView(store, sink.path)
        run = Planner().load(scenario, SMOKE, sink=view)
        journal_run = Planner().load(scenario, SMOKE, sink=sink)
        assert run.report() == journal_run.report()

    def test_meta_tags_become_queryable_columns(self, store, tmp_path):
        scenario = tiny_scenario(strategies=("ours", "lws=1"))
        sink = ResultSink(tmp_path / "sinks" / "tiny-smoke.jsonl")
        Planner().run(scenario, SMOKE, sink=sink)
        sync(store, journals=[(sink.path, KIND_SINK)])
        rows = store.query(
            "SELECT DISTINCT strategy FROM scenario_runs ORDER BY strategy").rows
        assert rows == [("lws=1",), ("ours",)]
        configs = store.query(
            "SELECT COUNT(DISTINCT config_name) FROM scenario_runs").rows
        assert configs == [(2,)]
