"""Shared engine-equivalence fixtures: stress kernels and a program fuzzer.

Two families of *unregistered* kernels back the differential and fuzz suites
(unregistered on purpose: the library registry stays at its nine paper
workloads, and ``test_grid_covers_all_library_kernels`` pins that):

* hand-written divergence-stress kernels -- an irregular nested-branch storm
  and a strided-gather kernel -- built to defeat the batch engine's
  uniform-PC streaming so its per-warp fallback path is exercised hard;
* :func:`make_fuzz_kernel`, a deterministic random-program generator.  A
  small JSON-able *spec* (seed, machine shape, launch geometry, program
  depth) fully determines the kernel, so every case can be replayed
  bit-for-bit from a corpus file or a hypothesis-shrunk example.

The generator only emits programs that are defined for every input: values
are clamped before integer conversion, gather indices are wrapped into
bounds with ``rem``, and no operation that can produce NaN/inf from finite
inputs (div, sqrt, log) is drawn.  Engines must agree on *results*, and a
program whose behaviour is an exception would test exception parity instead
(pinned separately in ``test_integer_ops_keep_exact_python_semantics``).
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

import numpy as np

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.signature import BufferParam
from repro.kernels.values import Value
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.sim.engine import ENGINES


# ----------------------------------------------------------------------
# divergence-stress kernels (hand written, unregistered)
# ----------------------------------------------------------------------
def make_branch_storm_kernel() -> Kernel:
    """Irregular nested branching keyed off ``gid % 3`` and ``gid % 5``.

    Adjacent lanes take different sides of *nested* SPLIT/JOIN pairs and run
    data-dependent loop trip counts, so warps almost never sit at a uniform
    PC -- the batch engine must detect the divergence and fall back to the
    per-warp path without perturbing a single cycle.
    """

    def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
        with b.section("setup"):
            x = b.load(args["a"], gid)
            r3 = b.rem(gid, b.const(3))
            r5 = b.rem(gid, b.const(5))
            acc = b.copy(b.to_float(gid))

        with b.section("storm"):
            def hot():
                def inner():
                    b.move(acc, b.fma(x, b.const(1.5), acc))

                def outer():
                    b.move(acc, b.sub(acc, x))

                b.if_then_else(b.cmp_eq(r5, b.const(0)), inner, outer)

            def cold():
                with b.for_range(b.rem(gid, b.const(4))) as i:
                    b.move(acc, b.add(acc, b.to_float(i)))

            b.if_then_else(b.lt(r3, b.const(1)), hot, cold)
            with b.if_(b.lt(x, acc)):
                b.move(acc, b.mul(acc, b.const(0.5)))

        with b.section("store"):
            b.store(acc, args["c"], gid)

    return Kernel(
        name="branch_storm",
        params=(BufferParam("a"), BufferParam("c", writable=True)),
        body=_body,
        description="nested irregular branches + data-dependent loops "
                    "(divergence stress fixture, not registered)",
        tags=("fixture", "divergence"),
    )


def make_strided_gather_kernel(size: int, stride: int = 7) -> Kernel:
    """Strided gather: each lane loads ``a[(gid * stride) % size]`` plus a
    second shifted index, then mixes them through a ``gid % 3`` loop.

    The scattered addresses span many cache lines per warp, producing ragged
    memory rounds -- exactly the shape where the batch engine's streaming
    window has to respect per-warp LSU hold gaps or give up.
    """

    def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
        with b.section("gather"):
            n = b.const(size)
            idx = b.rem(b.mul(gid, b.const(stride)), n)
            x = b.load(args["a"], idx)
            idx2 = b.rem(b.add(idx, b.const(stride // 2 + 1)), n)
            y = b.load(args["a"], idx2)

        with b.section("mix"):
            acc = b.copy(x)
            with b.for_range(b.rem(gid, b.const(3))) as i:
                b.move(acc, b.fma(y, b.const(0.25), b.add(acc, b.to_float(i))))

        with b.section("store"):
            b.store(acc, args["c"], gid)

    return Kernel(
        name=f"strided_gather_{size}x{stride}",
        params=(BufferParam("a"), BufferParam("c", writable=True)),
        body=_body,
        description="strided multi-line gather (memory-divergence stress "
                    "fixture, not registered)",
        tags=("fixture", "divergence", "memory"),
    )


def stress_arguments(size: int, seed: int = 0):
    """Deterministic input/output buffers for the stress kernels."""
    rng = np.random.default_rng(seed)
    return {
        "a": rng.uniform(-8.0, 8.0, size).astype(np.float64),
        "c": np.zeros(size, dtype=np.float64),
    }


# ----------------------------------------------------------------------
# the fuzz-program generator
# ----------------------------------------------------------------------
#: Bound applied before every integer conversion and between arithmetic
#: steps: keeps chained multiplies finite and F2I always defined.
_CLAMP = 1024.0


def make_fuzz_kernel(spec: Mapping[str, object]) -> Kernel:
    """Build the random kernel fully determined by ``spec``.

    ``spec["seed"]`` drives an isolated :class:`random.Random`, so the same
    spec always emits the identical instruction stream; ``spec["depth"]``
    is the number of random program steps; gather indices wrap at
    ``spec["gws"]`` (the buffer length).
    """
    seed = int(spec["seed"])
    depth = int(spec["depth"])
    size = int(spec["gws"])

    def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
        rng = random.Random(seed)
        buf = args["a"]
        n = b.const(size)

        def clamp(v: Value) -> Value:
            return b.maximum(b.minimum(b.to_float(v), b.const(_CLAMP)),
                             b.const(-_CLAMP))

        vals = [b.to_float(gid), b.load(buf, gid)]

        def pick() -> Value:
            return vals[rng.randrange(len(vals))]

        for _ in range(depth):
            choice = rng.randrange(10)
            if choice <= 2:
                op = rng.choice((b.add, b.sub, b.mul, b.minimum, b.maximum))
                vals.append(clamp(op(pick(), pick())))
            elif choice == 3:
                vals.append(clamp(b.fma(pick(), pick(), pick())))
            elif choice == 4:
                vals.append(b.select(b.lt(pick(), pick()), pick(), pick()))
            elif choice == 5:
                # In-bounds gather: |clamp(v)| is finite, rem wraps into [0, n).
                idx = b.rem(b.abs(b.to_int(clamp(pick()))), n)
                vals.append(b.load(buf, idx))
            elif choice == 6:
                cond = b.lt(pick(), pick())
                acc = b.copy(clamp(pick()))
                t, f = pick(), pick()

                def then_fn():
                    b.move(acc, clamp(b.add(acc, t)))

                def else_fn():
                    b.move(acc, clamp(b.sub(acc, f)))

                b.if_then_else(cond, then_fn, else_fn)
                vals.append(acc)
            elif choice == 7:
                trips = b.rem(b.abs(b.to_int(clamp(pick()))), b.const(4))
                acc = b.copy(clamp(pick()))
                step = pick()
                with b.for_range(trips) as i:
                    b.move(acc, clamp(b.add(acc, b.add(b.to_float(i), step))))
                vals.append(acc)
            elif choice == 8:
                vals.append(b.to_float(
                    b.logical_and(b.le(pick(), pick()), b.lt(pick(), pick()))))
            else:
                unary = rng.choice((b.abs, b.neg))
                vals.append(unary(clamp(pick())))

        out = clamp(pick())
        for _ in range(2):
            out = clamp(b.add(out, pick()))
        b.store(out, args["out"], gid)

    return Kernel(
        name=f"fuzz_{seed}_{depth}",
        params=(BufferParam("a"), BufferParam("out", writable=True)),
        body=_body,
        description="randomly generated fuzz program (deterministic in its spec)",
        tags=("fixture", "fuzz"),
    )


def fuzz_config(spec: Mapping[str, object]) -> ArchConfig:
    """The machine shape a fuzz spec runs on."""
    return ArchConfig(cores=int(spec["cores"]),
                      warps_per_core=int(spec["warps"]),
                      threads_per_warp=int(spec["threads"]),
                      warp_scheduler=str(spec.get("scheduler", "rr")))


def fuzz_arguments(spec: Mapping[str, object]):
    """Deterministic input data for a fuzz spec (seeded off the program seed)."""
    size = int(spec["gws"])
    rng = np.random.default_rng(int(spec["seed"]) ^ 0x5EED)
    return {
        "a": rng.uniform(-8.0, 8.0, size).astype(np.float64),
        "out": np.zeros(size, dtype=np.float64),
    }


# ----------------------------------------------------------------------
# the cross-engine oracle
# ----------------------------------------------------------------------
def run_engines(kernel: Kernel, arguments, config: ArchConfig, global_size: int,
                local_size: Optional[int] = None, engines=ENGINES):
    """Launch ``kernel`` once per engine on fresh devices; return the results."""
    results = {}
    for engine in engines:
        device = Device(config, engine=engine)
        args = {name: value.copy() if isinstance(value, np.ndarray) else value
                for name, value in arguments.items()}
        results[engine] = launch_kernel(device, kernel, args, global_size,
                                        local_size=local_size)
    return results


def assert_engines_identical(results, label: str) -> None:
    """Every engine must match ``reference`` bit-for-bit: cycles, every
    PerfCounters field, per-call cycles and every output buffer."""
    reference = results["reference"]
    ref_counters = reference.counters.as_dict()
    for engine, result in results.items():
        if engine == "reference":
            continue
        assert result.cycles == reference.cycles, (
            f"{label}: {engine} cycles {result.cycles} != "
            f"reference {reference.cycles}")
        assert result.sim_cycles == reference.sim_cycles, f"{label}: {engine}"
        assert result.call_cycles == reference.call_cycles, f"{label}: {engine}"
        counters = result.counters.as_dict()
        for field, ref_value in ref_counters.items():
            assert counters[field] == ref_value, (
                f"{label}: {engine} counter {field!r} diverged "
                f"(reference={ref_value}, {engine}={counters[field]})")
        assert set(result.outputs) == set(reference.outputs)
        for name, ref_array in reference.outputs.items():
            assert np.array_equal(result.outputs[name], ref_array), (
                f"{label}: {engine} output buffer {name!r} diverged")


def run_fuzz_case(spec: Mapping[str, object]) -> None:
    """Build the spec's kernel, run it under all engines, assert identity."""
    kernel = make_fuzz_kernel(spec)
    config = fuzz_config(spec)
    lws = spec.get("lws")
    results = run_engines(kernel, fuzz_arguments(spec), config,
                          int(spec["gws"]),
                          local_size=None if lws is None else int(lws))
    assert_engines_identical(results, f"fuzz spec {dict(spec)!r}")
