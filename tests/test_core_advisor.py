"""Tests for the tuning advisor (repro.core.advisor)."""

import pytest

from repro.core.advisor import TuningAdvisor
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.sim.stats import PerfCounters
from repro.workloads.problems import make_problem

CONFIG = ArchConfig(cores=2, warps_per_core=2, threads_per_warp=4)   # hp = 16


def test_recommendation_matches_eq1_without_measurements():
    advisor = TuningAdvisor(CONFIG)
    report = advisor.advise(global_size=128)
    assert report.recommended_local_size == 8
    assert report.current_local_size is None
    assert not report.mapping_change_needed
    assert report.findings
    assert "lws" in report.render()


def test_report_flags_a_mapping_change_for_naive_lws():
    advisor = TuningAdvisor(CONFIG)
    report = advisor.advise(global_size=128, current_local_size=1)
    assert report.mapping_change_needed
    assert any("extra kernel call" in finding for finding in report.findings)


def test_report_flags_idle_lanes_for_oversized_lws():
    advisor = TuningAdvisor(CONFIG)
    report = advisor.advise(global_size=128, current_local_size=64)
    assert report.mapping_change_needed
    assert any("idle" in finding for finding in report.findings)


def test_report_accepts_matching_mapping():
    advisor = TuningAdvisor(CONFIG)
    report = advisor.advise(global_size=128, current_local_size=8)
    assert not report.mapping_change_needed
    assert any("matches Eq. 1" in finding for finding in report.findings)


def test_boundedness_classification_from_counters():
    advisor = TuningAdvisor(CONFIG)
    memory_heavy = PerfCounters(cycles=1000, warp_instructions=100, memory_instructions=60)
    report = advisor.advise(128, current_local_size=8, counters=memory_heavy)
    assert report.boundedness == "memory-bound"

    compute_heavy = PerfCounters(cycles=1000, warp_instructions=100, memory_instructions=5)
    report2 = advisor.advise(128, current_local_size=8, counters=compute_heavy)
    assert report2.boundedness == "compute-bound"


def test_bandwidth_saturation_flag():
    advisor = TuningAdvisor(CONFIG)
    saturated = PerfCounters(cycles=1000, warp_instructions=100, memory_instructions=60,
                             dram_queue_cycles=400)
    report = advisor.advise(128, counters=saturated)
    assert report.bandwidth_saturated
    assert any("bandwidth" in f.lower() for f in report.findings)


def test_divergence_finding_from_low_simt_efficiency():
    advisor = TuningAdvisor(CONFIG)
    divergent = PerfCounters(cycles=100, warp_instructions=100, lane_instructions=120,
                             memory_instructions=5)
    report = advisor.advise(128, counters=divergent)
    assert any("lanes per instruction" in f for f in report.findings)


def test_advisor_on_real_measurements_end_to_end():
    device = Device(CONFIG)
    problem = make_problem("vecadd", scale="smoke")
    measured = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                             local_size=1)
    advisor = TuningAdvisor(CONFIG)
    report = advisor.advise(problem.global_size, current_local_size=1,
                            counters=measured.counters)
    assert report.recommended_local_size == 4          # 64 / 16
    assert report.mapping_change_needed
    assert report.boundedness in ("memory-bound", "compute-bound")
    rendered = report.render()
    assert "recommended lws : 4" in rendered
