"""End-to-end integration tests.

These exercise the complete stack (kernel DSL -> runtime -> simulator -> core
contribution) the way the paper uses it, and pin the qualitative results the
reproduction is supposed to show:

* the hardware-aware mapping never issues more kernel calls than either
  baseline and never uses fewer lanes;
* the hardware-aware mapping is at least as fast as both baselines on machines
  where the regimes differ, and never more than marginally slower anywhere;
* Eq. 1 degenerates to lws=1 on machines larger than the problem;
* the advisor + trace pipeline produces consistent observations.
"""

import numpy as np
import pytest

from repro.core.mapper import PAPER_STRATEGIES
from repro.core.optimizer import optimal_local_size
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.trace.analysis import analyze_trace
from repro.trace.tracer import Tracer
from repro.workloads.problems import make_problem

CONFIGS = [
    ArchConfig.from_name("1c2w2t"),
    ArchConfig.from_name("1c2w4t"),
    ArchConfig.from_name("2c4w4t"),
    ArchConfig.from_name("4c4w8t"),
    ArchConfig.from_name("16c8w8t"),
]


def _run(problem, config, lws):
    device = Device(config)
    return launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                         local_size=lws, call_simulation_limit=3)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("problem_name", ["vecadd", "sgemm"])
def test_hardware_aware_mapping_dominates_structurally(problem_name, config):
    """Fewer-or-equal kernel calls and greater-or-equal utilisation than both baselines."""
    problem = make_problem(problem_name, scale="smoke")
    results = {label: _run(problem, config,
                           strategy.select_local_size(problem.global_size, config))
               for label, strategy in PAPER_STRATEGIES.items()}
    ours = results["ours"]
    for label in ("lws=1", "lws=32"):
        other = results[label]
        assert ours.num_calls <= other.num_calls
        assert (ours.dispatch.average_lane_utilization
                >= other.dispatch.average_lane_utilization - 1e-9)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_hardware_aware_mapping_is_never_substantially_slower(config):
    problem = make_problem("vecadd", scale="smoke")
    results = {label: _run(problem, config,
                           strategy.select_local_size(problem.global_size, config))
               for label, strategy in PAPER_STRATEGIES.items()}
    ours = results["ours"].cycles
    for label in ("lws=1", "lws=32"):
        ratio = results[label].cycles / ours
        assert ratio >= 0.85, f"{label} unexpectedly beat ours by >15% on {config.name}"


def test_hardware_aware_mapping_wins_clearly_in_the_multiple_call_regime():
    """On a small machine the naive mapping pays per-call overhead repeatedly."""
    problem = make_problem("vecadd", scale="smoke")          # gws = 64
    config = ArchConfig.from_name("1c2w2t")                  # hp = 4 -> 16 calls at lws=1
    naive = _run(problem, config, 1)
    ours = _run(problem, config, None)
    assert naive.num_calls == 16 and ours.num_calls == 1
    assert naive.cycles / ours.cycles > 1.3


def test_hardware_aware_mapping_wins_clearly_in_the_under_utilised_regime():
    """On a large machine a fixed lws=32 leaves most lanes idle."""
    problem = make_problem("vecadd", scale="bench")          # gws = 512
    config = ArchConfig.from_name("16c8w8t")                 # hp = 1024
    fixed = _run(problem, config, 32)
    ours = _run(problem, config, None)
    assert ours.local_size == 1                              # hp > gws -> Eq. 1 degenerates
    assert fixed.cycles / ours.cycles > 1.5


def test_eq1_degenerates_to_lws1_when_machine_exceeds_problem():
    problem = make_problem("relu", scale="smoke")            # gws = 64
    config = ArchConfig.from_name("16c8w8t")                 # hp = 1024
    assert optimal_local_size(problem.global_size, config) == 1
    result = _run(problem, config, None)
    assert result.local_size == 1
    assert result.num_calls == 1


def test_results_identical_across_all_three_mappings():
    problem = make_problem("sgemm", scale="smoke")
    config = ArchConfig.from_name("2c4w4t")
    outputs = {}
    for label, strategy in PAPER_STRATEGIES.items():
        lws = strategy.select_local_size(problem.global_size, config)
        outputs[label] = _run(problem, config, lws).outputs["c"]
    np.testing.assert_array_equal(outputs["ours"], outputs["lws=1"])
    np.testing.assert_array_equal(outputs["ours"], outputs["lws=32"])


def test_trace_counters_and_launch_agree_on_instruction_counts():
    problem = make_problem("vecadd", scale="smoke")
    config = ArchConfig.from_name("1c2w4t")
    tracer = Tracer()
    device = Device(config, tracer=tracer)
    result = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                           local_size=None)
    assert len(tracer.events) == result.counters.warp_instructions
    analysis = analyze_trace(tracer.events, result.counters,
                             threads_per_warp=config.threads_per_warp)
    assert analysis.warps_seen == result.counters.warps_launched
    assert analysis.boundedness == "memory-bound"            # vecadd is memory bound


def test_overall_cycle_count_is_deterministic():
    problem = make_problem("gaussian", scale="smoke")
    config = ArchConfig.from_name("2c2w4t")
    first = _run(problem, config, None)
    second = _run(problem, config, None)
    assert first.cycles == second.cycles
    assert first.counters.as_dict() == second.counters.as_dict()


def test_larger_machines_never_run_slower_with_the_hardware_aware_mapping():
    """Cycle count with Eq. 1 must be monotonically non-increasing in machine size."""
    problem = make_problem("vecadd", scale="bench")
    sizes = ["1c2w2t", "1c4w4t", "2c4w8t", "8c8w8t"]
    cycles = [_run(problem, ArchConfig.from_name(name), None).cycles for name in sizes]
    for smaller, larger in zip(cycles, cycles[1:]):
        assert larger <= smaller * 1.05       # 5% tolerance for cache artefacts
