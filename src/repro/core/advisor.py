"""Tuning advisor: turns analysis + measurements into recommendations.

The paper's workflow is: observe execution traces, relate them to the
micro-architecture parameters, and adjust the mapping.  The advisor automates
that loop -- given the machine configuration, the launch geometry and
(optionally) the measured performance counters of a run, it produces a
:class:`TuningReport` containing the recommended ``lws``, the predicted
execution shape, a memory/compute boundedness classification and a list of
human-readable findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.analysis import MappingAnalysis, MappingAnalyzer
from repro.core.optimizer import optimal_local_size
from repro.sim.config import ArchConfig
from repro.sim.stats import PerfCounters

#: Memory-instruction share above which a kernel is called memory bound.
MEMORY_BOUND_THRESHOLD = 0.30
#: DRAM queueing share of cycles above which bandwidth is flagged as saturated.
BANDWIDTH_SATURATION_THRESHOLD = 0.25


@dataclass
class TuningReport:
    """Everything the advisor concluded about one launch."""

    config_name: str
    global_size: int
    current_local_size: Optional[int]
    recommended_local_size: int
    analysis_current: Optional[MappingAnalysis]
    analysis_recommended: MappingAnalysis
    boundedness: str = "unknown"          # "memory-bound" | "compute-bound" | "unknown"
    bandwidth_saturated: bool = False
    findings: List[str] = field(default_factory=list)

    @property
    def mapping_change_needed(self) -> bool:
        """True when the measured/declared lws differs from the recommendation."""
        return (self.current_local_size is not None
                and self.current_local_size != self.recommended_local_size)

    def render(self) -> str:
        """Multi-line human readable report."""
        lines = [
            f"Tuning report for {self.config_name} (gws={self.global_size})",
            f"  recommended lws : {self.recommended_local_size}"
            f"  ({self.analysis_recommended.regime}, "
            f"{self.analysis_recommended.num_calls} call(s), "
            f"lanes {self.analysis_recommended.lane_utilization:.1%})",
        ]
        if self.current_local_size is not None and self.analysis_current is not None:
            lines.append(
                f"  current lws     : {self.current_local_size}"
                f"  ({self.analysis_current.regime}, "
                f"{self.analysis_current.num_calls} call(s), "
                f"lanes {self.analysis_current.lane_utilization:.1%})"
            )
        if self.boundedness != "unknown":
            saturated = " (DRAM bandwidth saturated)" if self.bandwidth_saturated else ""
            lines.append(f"  boundedness     : {self.boundedness}{saturated}")
        for finding in self.findings:
            lines.append(f"  - {finding}")
        return "\n".join(lines)


class TuningAdvisor:
    """Produces :class:`TuningReport` objects for launches on one machine."""

    def __init__(self, config: ArchConfig):
        self.config = config
        self._analyzer = MappingAnalyzer(config)

    def advise(self, global_size: int, current_local_size: Optional[int] = None,
               counters: Optional[PerfCounters] = None) -> TuningReport:
        """Analyse a launch and recommend a mapping.

        ``counters`` may come from a previous run with any mapping; they only
        influence the boundedness classification and the findings, not the
        recommended lws (which is the pure Eq.-1 value).
        """
        recommended = optimal_local_size(global_size, self.config)
        analysis_rec = self._analyzer.analyze(global_size, recommended)
        analysis_cur = (self._analyzer.analyze(global_size, current_local_size)
                        if current_local_size is not None else None)

        report = TuningReport(
            config_name=self.config.name,
            global_size=global_size,
            current_local_size=current_local_size,
            recommended_local_size=recommended,
            analysis_current=analysis_cur,
            analysis_recommended=analysis_rec,
        )
        self._add_mapping_findings(report)
        if counters is not None:
            self._add_counter_findings(report, counters)
        return report

    # ------------------------------------------------------------------
    def _add_mapping_findings(self, report: TuningReport) -> None:
        cur = report.analysis_current
        rec = report.analysis_recommended
        if cur is None:
            report.findings.append(
                f"use lws={report.recommended_local_size} to fill the machine in a single call"
            )
            return
        if cur.local_size == rec.local_size:
            report.findings.append("the current mapping already matches Eq. 1")
            return
        if cur.num_calls > rec.num_calls:
            extra = cur.num_calls - rec.num_calls
            report.findings.append(
                f"current lws issues {extra} extra kernel call(s); each pays "
                f"{self.config.kernel_launch_overhead} cycles of launch overhead"
            )
        if cur.lane_utilization < rec.lane_utilization - 1e-9:
            report.findings.append(
                f"current lws leaves {1 - cur.lane_utilization:.1%} of hardware lanes idle "
                f"(recommended mapping leaves {1 - rec.lane_utilization:.1%})"
            )
        if cur.core_utilization < 1.0 and rec.core_utilization > cur.core_utilization:
            report.findings.append(
                f"only {cur.core_utilization:.1%} of cores receive work under the current "
                f"mapping; the recommended lws spreads workgroups over "
                f"{rec.core_utilization:.1%} of cores"
            )

    def _add_counter_findings(self, report: TuningReport, counters: PerfCounters) -> None:
        intensity = counters.memory_intensity
        report.boundedness = (
            "memory-bound" if intensity >= MEMORY_BOUND_THRESHOLD else "compute-bound"
        )
        if counters.cycles:
            queue_share = counters.dram_queue_cycles / counters.cycles
            report.bandwidth_saturated = queue_share >= BANDWIDTH_SATURATION_THRESHOLD
        if report.boundedness == "memory-bound":
            report.findings.append(
                f"memory instructions are {intensity:.1%} of the issue stream; beyond the "
                f"bandwidth saturation point extra parallelism will not reduce latency"
            )
        if report.bandwidth_saturated:
            report.findings.append(
                "DRAM bandwidth is saturated: the mapping is not the bottleneck for this kernel"
            )
        if counters.warp_instructions and counters.lanes_per_instruction < (
                self.config.threads_per_warp * 0.5):
            report.findings.append(
                f"average active lanes per instruction is "
                f"{counters.lanes_per_instruction:.1f} of {self.config.threads_per_warp}; "
                f"control divergence or partial workgroups are wasting SIMT width"
            )
