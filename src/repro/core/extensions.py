"""Extensions beyond Equation 1 (the paper's future-work directions).

The paper observes that "in a few specific hw configurations, spawning more or
less warps can bring small benefits to the execution (because of e.g., reduced
overhead, improved memory bandwidth utilization)" and leaves exploiting those
second-order effects to future work.  This module provides one such
extension as a worked example:

:class:`BandwidthAwareMapping` -- for memory-bound kernels the useful
parallelism is capped by the DRAM bandwidth: once enough lanes are in flight
to keep the memory system saturated, additional warps only add spawn overhead
and cache pressure.  The strategy estimates the lane count needed to saturate
bandwidth (from a static per-item profile or from the counters of a previous
run) and enlarges the local work size accordingly, never dropping below the
Eq.-1 value's single-call guarantee.

The extension deliberately degrades to Eq. 1 whenever the kernel is not
clearly memory bound or the estimate is unavailable -- the paper's formula
remains the default answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.mapper import MappingStrategy
from repro.core.optimizer import optimal_local_size
from repro.sim.config import ArchConfig
from repro.sim.stats import PerfCounters

#: Extra parallelism kept beyond the bare bandwidth-saturation point so DRAM
#: latency can still be hidden (2x is a conventional rule of thumb).
DEFAULT_LATENCY_HEADROOM = 2.0


@dataclass(frozen=True)
class MemoryProfile:
    """Per-work-item memory behaviour of a kernel, used to size the mapping.

    ``lines_per_item`` counts DRAM line transfers per work-item;
    ``cycles_per_item`` is the issue time of one work-item on one lane
    (both are averages; they come from a profiling run or a static estimate).
    """

    lines_per_item: float
    cycles_per_item: float

    def __post_init__(self):
        if self.lines_per_item < 0:
            raise ValueError("lines_per_item cannot be negative")
        if self.cycles_per_item <= 0:
            raise ValueError("cycles_per_item must be positive")

    @classmethod
    def from_counters(cls, counters: PerfCounters, global_size: int) -> "MemoryProfile":
        """Derive a profile from the counters of a previous run of the kernel."""
        if global_size < 1:
            raise ValueError("global_size must be positive")
        lines = counters.dram_lines / global_size if global_size else 0.0
        cycles = (counters.lane_instructions / global_size) if global_size else 1.0
        return cls(lines_per_item=lines, cycles_per_item=max(1.0, cycles))

    def saturating_lanes(self, config: ArchConfig,
                         headroom: float = DEFAULT_LATENCY_HEADROOM) -> int:
        """Number of active lanes that saturates the DRAM bandwidth."""
        if self.lines_per_item == 0:
            return config.hardware_parallelism
        lanes = config.dram_lines_per_cycle * self.cycles_per_item / self.lines_per_item
        return max(1, int(math.ceil(lanes * headroom)))


class BandwidthAwareMapping(MappingStrategy):
    """Eq. 1 extended with a DRAM-bandwidth cap on the spawned parallelism.

    With a :class:`MemoryProfile` (or the counters of a prior run via
    :meth:`from_profile_run`), the strategy computes how many lanes are needed
    to keep DRAM busy and chooses ``lws = ceil(gws / lanes)`` -- i.e. fewer,
    longer-running workgroups -- whenever that cap is *below* the machine's
    hardware parallelism.  Otherwise it returns exactly the Eq.-1 value.
    """

    name = "bandwidth-aware"

    def __init__(self, profile: Optional[MemoryProfile] = None,
                 headroom: float = DEFAULT_LATENCY_HEADROOM):
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        self.profile = profile
        self.headroom = headroom

    @classmethod
    def from_profile_run(cls, counters: PerfCounters, global_size: int,
                         headroom: float = DEFAULT_LATENCY_HEADROOM) -> "BandwidthAwareMapping":
        """Build the strategy from a previous run's performance counters."""
        return cls(MemoryProfile.from_counters(counters, global_size), headroom=headroom)

    def select_local_size(self, global_size: int, config: ArchConfig) -> int:
        baseline = optimal_local_size(global_size, config)
        if self.profile is None:
            return baseline
        lanes = self.profile.saturating_lanes(config, self.headroom)
        if lanes >= config.hardware_parallelism:
            return baseline                      # compute bound (or bandwidth not limiting)
        capped = max(1, math.ceil(global_size / lanes))
        # Never fall below Eq. 1: that would reintroduce multiple kernel calls.
        return max(baseline, capped)

    def describe(self) -> str:
        if self.profile is None:
            return "bandwidth-aware mapping (no profile: identical to Eq. 1)"
        return (f"bandwidth-aware mapping ({self.profile.lines_per_item:.3f} lines/item, "
                f"{self.profile.cycles_per_item:.1f} cycles/item, "
                f"headroom {self.headroom:g}x)")
