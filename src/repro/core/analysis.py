"""Static mapping analysis: what a (gws, lws, machine) triple implies.

Before running anything, the relation between the local work size, the global
work size and the hardware parallelism already determines the execution shape:
how many sequential kernel calls the runtime will issue, how many lanes, warps
and cores stay busy, and which of the paper's three regimes the launch falls
into.  :class:`MappingAnalyzer` computes exactly that -- it is the "runtime
micro-architecture parameter analysis" of the title, in its predictive form.
The trace-driven, after-the-fact form lives in :mod:`repro.trace.analysis` and
both are combined by :mod:`repro.core.advisor`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.optimizer import optimal_local_size
from repro.sim.config import ArchConfig


@dataclass(frozen=True)
class MappingAnalysis:
    """Predicted execution shape of one launch mapping."""

    config_name: str
    hardware_parallelism: int
    global_size: int
    local_size: int
    num_workgroups: int
    num_calls: int
    lane_utilization: float       # average over calls
    warp_utilization: float       # fraction of warp slots holding at least one workgroup
    core_utilization: float       # fraction of cores receiving work (first call)
    regime: str                   # "multiple-calls" | "balanced" | "under-utilised"
    optimal_local_size: int       # what Eq. 1 would pick
    is_optimal: bool

    def summary(self) -> str:
        """One-line description used in reports."""
        return (
            f"lws={self.local_size} on {self.config_name} (hp={self.hardware_parallelism}): "
            f"{self.num_workgroups} groups in {self.num_calls} call(s), "
            f"lanes {self.lane_utilization:.1%}, cores {self.core_utilization:.1%} "
            f"[{self.regime}]"
            + ("" if self.is_optimal else f" -- Eq.1 suggests lws={self.optimal_local_size}")
        )


class MappingAnalyzer:
    """Analyses launch mappings against one machine configuration."""

    def __init__(self, config: ArchConfig):
        self.config = config

    # ------------------------------------------------------------------
    def analyze(self, global_size: int, local_size: int) -> MappingAnalysis:
        """Predict the execution shape of launching ``gws`` work-items with ``lws``."""
        if global_size < 1:
            raise ValueError(f"global size must be positive, got {global_size}")
        if local_size < 1:
            raise ValueError(f"local size must be positive, got {local_size}")
        config = self.config
        hp = config.hardware_parallelism
        local_size = min(local_size, global_size)
        workgroups = math.ceil(global_size / local_size)
        calls = math.ceil(workgroups / hp)
        lane_util = workgroups / (calls * hp)

        # Utilisation detail of the first (fullest) call.
        first_call_groups = min(workgroups, hp)
        lanes_per_core = config.warps_per_core * config.threads_per_warp
        per_core = math.ceil(first_call_groups / config.cores)
        cores_used = min(config.cores, math.ceil(first_call_groups / per_core)) if per_core else 0
        warps_used_per_core = math.ceil(per_core / config.threads_per_warp)
        warp_util = min(1.0, warps_used_per_core / config.warps_per_core)

        best = optimal_local_size(global_size, config)
        regime = self._classify(global_size, local_size, hp, workgroups)
        return MappingAnalysis(
            config_name=config.name,
            hardware_parallelism=hp,
            global_size=global_size,
            local_size=local_size,
            num_workgroups=workgroups,
            num_calls=calls,
            lane_utilization=lane_util,
            warp_utilization=warp_util,
            core_utilization=cores_used / config.cores,
            regime=regime,
            optimal_local_size=best,
            is_optimal=(local_size == best),
        )

    def analyze_optimal(self, global_size: int) -> MappingAnalysis:
        """Analysis of the Eq.-1 mapping for ``global_size``."""
        return self.analyze(global_size, optimal_local_size(global_size, self.config))

    # ------------------------------------------------------------------
    @staticmethod
    def _classify(global_size: int, local_size: int, hp: int, workgroups: int) -> str:
        if workgroups > hp:
            return "multiple-calls"
        if workgroups == min(hp, global_size):
            return "balanced"
        return "under-utilised"

    def compare(self, global_size: int, candidate_lws: int,
                reference_lws: Optional[int] = None) -> str:
        """Human-readable comparison of ``candidate_lws`` against the Eq.-1 choice."""
        reference = reference_lws if reference_lws is not None else optimal_local_size(
            global_size, self.config)
        cand = self.analyze(global_size, candidate_lws)
        ref = self.analyze(global_size, reference)
        lines = [
            f"candidate: {cand.summary()}",
            f"reference: {ref.summary()}",
        ]
        if cand.num_calls > ref.num_calls:
            lines.append(
                f"candidate issues {cand.num_calls - ref.num_calls} extra kernel call(s), "
                f"each paying the launch overhead"
            )
        if cand.lane_utilization < ref.lane_utilization:
            lines.append(
                f"candidate leaves {1 - cand.lane_utilization:.1%} of lanes idle "
                f"(reference leaves {1 - ref.lane_utilization:.1%})"
            )
        return "\n".join(lines)
