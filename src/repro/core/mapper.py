"""Mapping strategies: the paper's technique and the baselines it is compared to.

A :class:`MappingStrategy` turns a (global work size, machine) pair into a
``local_work_size``.  The paper's Figure 2 compares three of them:

* :class:`NaiveMapping` -- ``lws = 1``: never unroll the kernel temporally over
  one thread; every work-item is its own workgroup.
* :class:`FixedMapping` -- a hardware-agnostic constant, ``lws = 32`` in the
  paper (the habit inherited from warp-sized workgroups on discrete GPUs).
* :class:`HardwareAwareMapping` -- the paper's Equation 1, evaluated at
  runtime from the device's micro-architecture parameters.

An exhaustive-search oracle (see :mod:`repro.core.autotuner`) provides an
upper bound for validation.
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple, Union

from repro.core.optimizer import optimal_local_size
from repro.sim.config import ArchConfig


class MappingStrategy(abc.ABC):
    """Chooses the local work size for a launch."""

    #: Short identifier used in reports, result tables and the CLI of benches.
    name: str = "strategy"

    @abc.abstractmethod
    def select_local_size(self, global_size: int, config: ArchConfig) -> int:
        """Return the lws this strategy uses for ``global_size`` on ``config``."""

    def describe(self) -> str:
        """One-line human readable description."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{type(self).__name__}({self.describe()!r})"


class NaiveMapping(MappingStrategy):
    """The paper's naive baseline: ``lws = 1`` regardless of hardware."""

    name = "naive-lws1"

    def select_local_size(self, global_size: int, config: ArchConfig) -> int:
        return 1

    def describe(self) -> str:
        return "naive mapping (lws = 1, one work-item per workgroup)"


class FixedMapping(MappingStrategy):
    """A hardware-agnostic constant lws (the paper uses 32)."""

    def __init__(self, local_size: int = 32):
        if local_size < 1:
            raise ValueError(f"fixed local size must be positive, got {local_size}")
        self.local_size = local_size
        self.name = f"fixed-lws{local_size}"

    def select_local_size(self, global_size: int, config: ArchConfig) -> int:
        # OpenCL requires lws <= gws; the runtime clamps exactly like NDRange does.
        return min(self.local_size, max(1, global_size))

    def describe(self) -> str:
        return f"fixed mapping (lws = {self.local_size} independent of hardware)"


class HardwareAwareMapping(MappingStrategy):
    """The paper's contribution: Equation 1 evaluated at runtime."""

    name = "hardware-aware"

    def select_local_size(self, global_size: int, config: ArchConfig) -> int:
        return optimal_local_size(global_size, config)

    def describe(self) -> str:
        return "hardware-aware runtime mapping (lws = ceil(gws / hp), Eq. 1)"


#: The three strategies of the paper's Figure 2, keyed by the labels used there.
PAPER_STRATEGIES: Dict[str, MappingStrategy] = {
    "lws=1": NaiveMapping(),
    "lws=32": FixedMapping(32),
    "ours": HardwareAwareMapping(),
}


def strategy_by_name(name: str) -> MappingStrategy:
    """Look up a strategy by report label (``"lws=1"``, ``"lws=32"``, ``"ours"``)
    or by strategy name (``"naive-lws1"``, ``"fixed-lws32"``, ``"hardware-aware"``,
    ``"fixed-lws<N>"`` for any N)."""
    if name in PAPER_STRATEGIES:
        return PAPER_STRATEGIES[name]
    for strategy in PAPER_STRATEGIES.values():
        if strategy.name == name:
            return strategy
    if name.startswith("fixed-lws"):
        return FixedMapping(int(name[len("fixed-lws"):]))
    if name.startswith("lws="):
        return FixedMapping(int(name[len("lws="):]))
    raise KeyError(f"unknown mapping strategy {name!r}")
