"""Exhaustive-search oracle.

The paper's claim is that Equation 1 picks a near-optimal ``lws`` *without*
searching.  To validate that claim (and to quantify the residual gap the paper
attributes to second-order effects such as launch overhead amortisation and
memory-bandwidth utilisation), this module brute-forces the lws space on the
simulator and reports the best value found.  It is an offline tool -- the
whole point of the paper is that production launches should not need it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.optimizer import optimal_local_size
from repro.sim.config import ArchConfig


@dataclass(frozen=True)
class ExhaustiveSearchResult:
    """Outcome of brute-forcing the lws space for one launch.

    ``truncated``/``dropped_candidates`` make an under-searched oracle
    explicit: when the candidate set was capped (``max_candidates``), the
    "oracle" gap is really a lower bound -- a dropped candidate could have
    been faster -- and any report quoting ``eq1_gap`` can now say so instead
    of silently presenting a subsampled search as exhaustive.
    """

    config_name: str
    global_size: int
    cycles_by_lws: Mapping[int, int]
    best_local_size: int
    best_cycles: int
    eq1_local_size: int
    eq1_cycles: int
    truncated: bool = False
    dropped_candidates: Tuple[int, ...] = ()

    @property
    def eq1_gap(self) -> float:
        """How far Eq. 1 is from the oracle (1.0 = identical, 1.1 = 10% slower)."""
        if self.best_cycles == 0:
            return 1.0
        return self.eq1_cycles / self.best_cycles

    @property
    def search_coverage(self) -> float:
        """Fraction of the intended candidate set that was actually searched."""
        total = len(self.cycles_by_lws) + len(self.dropped_candidates)
        return len(self.cycles_by_lws) / total if total else 1.0

    def ranked(self) -> List[Tuple[int, int]]:
        """(lws, cycles) pairs sorted from fastest to slowest."""
        return sorted(self.cycles_by_lws.items(), key=lambda item: item[1])


@dataclass(frozen=True)
class CandidateSet:
    """The lws candidates to search, with the truncation made explicit."""

    candidates: Tuple[int, ...]
    truncated: bool = False
    dropped: Tuple[int, ...] = ()        # candidates the cap excluded


def candidate_set(global_size: int, config: ArchConfig,
                  max_candidates: int = 24) -> CandidateSet:
    """The default lws candidate set: powers of two, the Eq.-1 value, gws.

    When the full set exceeds ``max_candidates`` it is subsampled (extremes
    and the Eq.-1 value always survive) and the result says so: ``truncated``
    is set and ``dropped`` lists exactly which candidates were not searched.
    """
    candidates = {1, global_size}
    value = 1
    while value < global_size:
        candidates.add(value)
        value *= 2
    candidates.add(optimal_local_size(global_size, config))
    ordered = sorted(c for c in candidates if 1 <= c <= global_size)
    if len(ordered) <= max_candidates:
        return CandidateSet(candidates=tuple(ordered))
    # Keep the extremes and a uniform subsample in between.
    step = (len(ordered) - 1) / (max_candidates - 1)
    picked = {ordered[round(i * step)] for i in range(max_candidates)}
    picked.add(optimal_local_size(global_size, config))
    return CandidateSet(
        candidates=tuple(sorted(picked)),
        truncated=True,
        dropped=tuple(c for c in ordered if c not in picked),
    )


def default_candidates(global_size: int, config: ArchConfig,
                       max_candidates: int = 24) -> List[int]:
    """The candidate values of :func:`candidate_set` (compatibility shim)."""
    return list(candidate_set(global_size, config, max_candidates).candidates)


def exhaustive_search(device, kernel, arguments: Mapping[str, object], global_size,
                      candidates: Optional[Sequence[int]] = None) -> ExhaustiveSearchResult:
    """Run ``kernel`` once per candidate lws on ``device`` and report the best.

    ``device`` is a :class:`repro.runtime.device.Device`; the import is local
    to keep this module importable without the runtime layer.
    """
    from repro.runtime.launcher import launch_kernel  # deferred: avoids an import cycle
    from repro.runtime.ndrange import NDRange

    flat_gws = NDRange(global_size, 1).global_size
    if candidates is not None:
        chosen = CandidateSet(candidates=tuple(candidates))
    else:
        chosen = candidate_set(flat_gws, device.config)
    lws_candidates = list(chosen.candidates)
    eq1 = optimal_local_size(flat_gws, device.config)
    if eq1 not in lws_candidates:
        lws_candidates.append(eq1)

    cycles_by_lws: Dict[int, int] = {}
    for lws in sorted(set(lws_candidates)):
        result = launch_kernel(device, kernel, arguments, global_size, local_size=lws)
        cycles_by_lws[lws] = result.cycles

    best_lws = min(cycles_by_lws, key=cycles_by_lws.get)
    return ExhaustiveSearchResult(
        config_name=device.config.name,
        global_size=flat_gws,
        cycles_by_lws=cycles_by_lws,
        best_local_size=best_lws,
        best_cycles=cycles_by_lws[best_lws],
        eq1_local_size=eq1,
        eq1_cycles=cycles_by_lws[eq1],
        truncated=chosen.truncated,
        dropped_candidates=chosen.dropped,
    )
