"""Equation 1: the runtime, hardware-aware local-work-size choice.

The paper derives the optimal ``local_work_size`` as

.. math::

    lws = \\frac{gws}{hp}, \\qquad hp = cores \\times warps \\times threads

so that the number of software workgroups exactly matches the number of
hardware lanes: a single kernel call with every lane busy.  Two practical
details matter when ``gws`` is not a multiple of ``hp``:

* the division must round *up* -- rounding down would create more workgroups
  than lanes and silently fall back into the multiple-call regime;
* when the machine is larger than the problem (``hp >= gws``) the formula
  degenerates to ``lws = 1``: every work-item becomes its own workgroup and
  utilisation is bounded by the problem, not the mapping (the "peaks around 0"
  the paper notes on the yellow side of its violin plots).

Everything here is integer arithmetic on values available at runtime (the
device query and the launch size), which is what makes the technique a
*runtime* mapping decision that needs no programmer input and no recompilation.
"""

from __future__ import annotations

import math
from typing import Union

from repro.sim.config import ArchConfig


def hardware_parallelism(config: Union[ArchConfig, int]) -> int:
    """Return ``hp = cores * warps * threads`` for a config (or pass an int through)."""
    if isinstance(config, int):
        if config < 1:
            raise ValueError(f"hardware parallelism must be positive, got {config}")
        return config
    return config.hardware_parallelism


def optimal_local_size(global_size: int, config: Union[ArchConfig, int]) -> int:
    """Equation 1 of the paper: the lws that fills the machine with one kernel call.

    Parameters
    ----------
    global_size:
        Flattened global work size of the launch (``gws``).
    config:
        Either an :class:`~repro.sim.config.ArchConfig` or the hardware
        parallelism ``hp`` directly.

    Returns
    -------
    int
        ``max(1, ceil(gws / hp))``.
    """
    if global_size < 1:
        raise ValueError(f"global size must be positive, got {global_size}")
    hp = hardware_parallelism(config)
    return max(1, math.ceil(global_size / hp))


def workgroups_for(global_size: int, local_size: int) -> int:
    """Number of workgroups a launch decomposes into."""
    if local_size < 1:
        raise ValueError(f"local size must be positive, got {local_size}")
    return math.ceil(global_size / local_size)


def kernel_calls_for(global_size: int, local_size: int, config: Union[ArchConfig, int]) -> int:
    """Number of sequential kernel calls the Vortex runtime will issue."""
    hp = hardware_parallelism(config)
    return math.ceil(workgroups_for(global_size, local_size) / hp)


def lane_utilization_for(global_size: int, local_size: int,
                         config: Union[ArchConfig, int]) -> float:
    """Average fraction of hardware lanes that receive a workgroup per call."""
    hp = hardware_parallelism(config)
    workgroups = workgroups_for(global_size, local_size)
    calls = math.ceil(workgroups / hp)
    return workgroups / (calls * hp)
