"""The paper's contribution: runtime micro-architecture parameter analysis.

This package implements the hardware-aware, runtime mapping technique the
paper proposes, together with the baselines it is compared against:

* :func:`~repro.core.optimizer.optimal_local_size` -- Equation 1 of the paper,
  ``lws = gws / hp`` (with the integer/clamping details spelled out), computed
  at runtime from the device's micro-architecture parameters.
* :class:`~repro.core.mapper.HardwareAwareMapping` and the baseline
  :class:`~repro.core.mapper.NaiveMapping` (``lws = 1``) and
  :class:`~repro.core.mapper.FixedMapping` (``lws = 32``) strategies used in
  the paper's Figure 2, plus an exhaustive-search oracle.
* :class:`~repro.core.analysis.MappingAnalyzer` -- static analysis of a
  (kernel, machine, lws) triple: regime, number of kernel calls, utilisation.
* :class:`~repro.core.advisor.TuningAdvisor` -- combines the static analysis
  with trace/counter observations into an actionable tuning report.
"""

from repro.core.advisor import TuningAdvisor, TuningReport
from repro.core.analysis import MappingAnalysis, MappingAnalyzer
from repro.core.autotuner import ExhaustiveSearchResult, exhaustive_search
from repro.core.extensions import BandwidthAwareMapping, MemoryProfile
from repro.core.mapper import (
    FixedMapping,
    HardwareAwareMapping,
    MappingStrategy,
    NaiveMapping,
    PAPER_STRATEGIES,
    strategy_by_name,
)
from repro.core.optimizer import hardware_parallelism, optimal_local_size

__all__ = [
    "BandwidthAwareMapping",
    "ExhaustiveSearchResult",
    "FixedMapping",
    "MemoryProfile",
    "HardwareAwareMapping",
    "MappingAnalysis",
    "MappingAnalyzer",
    "MappingStrategy",
    "NaiveMapping",
    "PAPER_STRATEGIES",
    "TuningAdvisor",
    "TuningReport",
    "exhaustive_search",
    "hardware_parallelism",
    "optimal_local_size",
    "strategy_by_name",
]
