"""Figure 2: the hardware-configuration sweep.

For every workload and every hardware configuration the launch is executed
three times -- with the naive ``lws=1`` mapping, with the fixed ``lws=32``
mapping and with the paper's hardware-aware mapping -- and the cycle counts
are compared as ratios ``baseline / ours``.  The per-kernel distributions of
those ratios (over all configurations) are the violins of the paper's
Figure 2; their summary statistics (average, worst, %-worse) are the numbers
printed in its data tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.mapper import MappingStrategy, PAPER_STRATEGIES
from repro.experiments.stats import RatioStats, ratio_stats
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.workloads.problems import Problem, make_problem

#: The label of the paper's proposed mapping inside result tables.
OURS = "ours"
#: Baseline labels, in the order the paper's violins show them (left, right).
BASELINES = ("lws=1", "lws=32")

#: Default number of kernel calls simulated exactly before extrapolating the
#: rest; keeps the lws=1 arm of the sweep tractable (see launcher docs).
DEFAULT_CALL_SIMULATION_LIMIT = 3


@dataclass(frozen=True)
class SweepRecord:
    """One (problem, configuration, strategy) measurement."""

    problem: str
    category: str
    config_name: str
    hardware_parallelism: int
    strategy: str
    local_size: int
    global_size: int
    num_calls: int
    cycles: int
    lane_utilization: float
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Serialise to plain types."""
        return {
            "problem": self.problem,
            "category": self.category,
            "config": self.config_name,
            "hp": self.hardware_parallelism,
            "strategy": self.strategy,
            "lws": self.local_size,
            "gws": self.global_size,
            "calls": self.num_calls,
            "cycles": self.cycles,
            "lane_utilization": self.lane_utilization,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepRecord":
        """Inverse of :meth:`as_dict`."""
        return cls(
            problem=str(data["problem"]),
            category=str(data["category"]),
            config_name=str(data["config"]),
            hardware_parallelism=int(data["hp"]),
            strategy=str(data["strategy"]),
            local_size=int(data["lws"]),
            global_size=int(data["gws"]),
            num_calls=int(data["calls"]),
            cycles=int(data["cycles"]),
            lane_utilization=float(data["lane_utilization"]),
        )


@dataclass
class Figure2Result:
    """All sweep measurements plus the derived per-kernel ratio statistics."""

    records: List[SweepRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ queries
    def problems(self) -> List[str]:
        """Problem names present in the result, in first-seen order."""
        seen: List[str] = []
        for record in self.records:
            if record.problem not in seen:
                seen.append(record.problem)
        return seen

    def cycles(self, problem: str, config_name: str, strategy: str) -> int:
        """Cycle count of one measurement."""
        for record in self.records:
            if (record.problem == problem and record.config_name == config_name
                    and record.strategy == strategy):
                return record.cycles
        raise KeyError(f"no record for {problem}/{config_name}/{strategy}")

    def ratios(self, problem: str, baseline: str) -> List[float]:
        """``baseline / ours`` cycle ratios of ``problem`` over every configuration."""
        ours: Dict[str, int] = {}
        base: Dict[str, int] = {}
        for record in self.records:
            if record.problem != problem:
                continue
            if record.strategy == OURS:
                ours[record.config_name] = record.cycles
            elif record.strategy == baseline:
                base[record.config_name] = record.cycles
        shared = sorted(set(ours) & set(base))
        if not shared:
            raise KeyError(f"no overlapping configurations for {problem}/{baseline}")
        return [base[name] / ours[name] for name in shared]

    def stats(self, problem: str, baseline: str) -> RatioStats:
        """Violin statistics of one (problem, baseline) pair."""
        return ratio_stats(self.ratios(problem, baseline))

    def stats_table(self) -> Dict[str, Dict[str, RatioStats]]:
        """``{problem: {baseline: RatioStats}}`` for every problem in the result."""
        table: Dict[str, Dict[str, RatioStats]] = {}
        for problem in self.problems():
            table[problem] = {}
            for baseline in BASELINES:
                try:
                    table[problem][baseline] = self.stats(problem, baseline)
                except KeyError:
                    continue
        return table

    # ------------------------------------------------------------------ headline claims
    def average_speedup(self, baseline: str, category: Optional[str] = None) -> float:
        """Mean of per-problem average ratios against ``baseline``.

        With ``category="math"`` this reproduces the paper's headline numbers
        (1.3x over lws=1 and 3.7x over lws=32 for the math kernels).
        """
        averages: List[float] = []
        for problem in self.problems():
            if category is not None:
                problem_category = next(r.category for r in self.records
                                        if r.problem == problem)
                if problem_category != category:
                    continue
            try:
                averages.append(self.stats(problem, baseline).average)
            except KeyError:
                continue
        if not averages:
            raise ValueError(f"no problems with category {category!r} and baseline {baseline!r}")
        return sum(averages) / len(averages)

    def worst_case_slowdown(self, baseline: str) -> float:
        """Largest ratio observed anywhere (the paper notes "up to 20x slower")."""
        worst = 0.0
        for problem in self.problems():
            try:
                worst = max(worst, self.stats(problem, baseline).best)
            except KeyError:
                continue
        return worst

    def as_rows(self) -> List[Dict[str, object]]:
        """Every record as a dictionary (for CSV/JSON export)."""
        return [record.as_dict() for record in self.records]

    # ------------------------------------------------------------------ persistence
    def save_json(self, path) -> None:
        """Write every sweep record to a JSON file (re-loadable with :meth:`load_json`).

        Long sweeps are expensive on a pure-Python simulator; persisting the
        raw records lets reports and claims be recomputed without re-running.
        """
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.as_rows(), indent=1))

    @classmethod
    def load_json(cls, path) -> "Figure2Result":
        """Load a result previously written by :meth:`save_json`."""
        import json
        from pathlib import Path

        rows = json.loads(Path(path).read_text())
        return cls(records=[SweepRecord.from_dict(row) for row in rows])


# ----------------------------------------------------------------------
def run_figure2(problem_names: Sequence[str], configs: Sequence[ArchConfig],
                scale: str = "bench",
                strategies: Optional[Mapping[str, MappingStrategy]] = None,
                call_simulation_limit: Optional[int] = DEFAULT_CALL_SIMULATION_LIMIT,
                seed: int = 0,
                progress: Optional[callable] = None) -> Figure2Result:
    """Execute the Figure-2 sweep.

    Parameters
    ----------
    problem_names:
        Which workloads to sweep (names from :mod:`repro.workloads.problems`).
    configs:
        Hardware configurations (e.g. from :func:`repro.experiments.configs.paper_sweep`).
    scale:
        Problem scale: ``"paper"``, ``"bench"`` or ``"smoke"``.
    strategies:
        Mapping strategies keyed by report label; defaults to the paper's three.
    call_simulation_limit:
        Passed to the launcher; ``None`` simulates every kernel call exactly.
    progress:
        Optional callback ``progress(problem, config, strategy, cycles)`` invoked
        after every measurement (used for logging in long sweeps).
    """
    chosen = dict(strategies) if strategies is not None else dict(PAPER_STRATEGIES)
    if OURS not in chosen:
        raise ValueError(f"strategies must include the {OURS!r} mapping")
    result = Figure2Result()
    for problem_name in problem_names:
        problem = make_problem(problem_name, scale=scale, seed=seed)
        for config in configs:
            device = Device(config)
            for label, strategy in chosen.items():
                lws = strategy.select_local_size(problem.global_size, config)
                started = time.perf_counter()
                launch = launch_kernel(
                    device, problem.kernel, problem.arguments, problem.global_size,
                    local_size=lws, call_simulation_limit=call_simulation_limit,
                )
                elapsed = time.perf_counter() - started
                record = SweepRecord(
                    problem=problem.name,
                    category=problem.category,
                    config_name=config.name,
                    hardware_parallelism=config.hardware_parallelism,
                    strategy=label,
                    local_size=launch.local_size,
                    global_size=launch.global_size,
                    num_calls=launch.num_calls,
                    cycles=launch.cycles,
                    lane_utilization=(launch.dispatch.average_lane_utilization
                                      if launch.dispatch else 0.0),
                    elapsed_seconds=elapsed,
                )
                result.records.append(record)
                if progress is not None:
                    progress(problem.name, config.name, label, launch.cycles)
    return result
