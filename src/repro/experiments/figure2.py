"""Figure 2: the hardware-configuration sweep.

For every workload and every hardware configuration the launch is executed
three times -- with the naive ``lws=1`` mapping, with the fixed ``lws=32``
mapping and with the paper's hardware-aware mapping -- and the cycle counts
are compared as ratios ``baseline / ours``.  The per-kernel distributions of
those ratios (over all configurations) are the violins of the paper's
Figure 2; their summary statistics (average, worst, %-worse) are the numbers
printed in its data tables.

The sweep grid is submitted through the campaign engine
(:mod:`repro.campaign`): pass a :class:`~repro.campaign.runner.CampaignRunner`
with a cache and/or multiple workers to reuse previously simulated points and
fan fresh ones out across processes.  Each grid point resolves its mapping
strategy to a concrete lws *before* submission, so the job's content hash
names exactly what is simulated -- two strategies that pick the same lws on
some machine share one simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Campaign, JobSpec
from repro.core.mapper import MappingStrategy, PAPER_STRATEGIES
from repro.experiments.stats import RatioStats, ratio_stats
from repro.sim.config import ArchConfig
from repro.workloads.problems import Problem, make_problem

#: The label of the paper's proposed mapping inside result tables.
OURS = "ours"
#: Baseline labels, in the order the paper's violins show them (left, right).
BASELINES = ("lws=1", "lws=32")

#: Default number of kernel calls simulated exactly before extrapolating the
#: rest; keeps the lws=1 arm of the sweep tractable (see launcher docs).
DEFAULT_CALL_SIMULATION_LIMIT = 3


@dataclass(frozen=True)
class SweepRecord:
    """One (problem, configuration, strategy) measurement."""

    problem: str
    category: str
    config_name: str
    hardware_parallelism: int
    strategy: str
    local_size: int
    global_size: int
    num_calls: int
    cycles: int
    lane_utilization: float
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Serialise to plain types."""
        return {
            "problem": self.problem,
            "category": self.category,
            "config": self.config_name,
            "hp": self.hardware_parallelism,
            "strategy": self.strategy,
            "lws": self.local_size,
            "gws": self.global_size,
            "calls": self.num_calls,
            "cycles": self.cycles,
            "lane_utilization": self.lane_utilization,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepRecord":
        """Inverse of :meth:`as_dict`."""
        return cls(
            problem=str(data["problem"]),
            category=str(data["category"]),
            config_name=str(data["config"]),
            hardware_parallelism=int(data["hp"]),
            strategy=str(data["strategy"]),
            local_size=int(data["lws"]),
            global_size=int(data["gws"]),
            num_calls=int(data["calls"]),
            cycles=int(data["cycles"]),
            lane_utilization=float(data["lane_utilization"]),
        )


@dataclass
class Figure2Result:
    """All sweep measurements plus the derived per-kernel ratio statistics."""

    records: List[SweepRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ queries
    def problems(self) -> List[str]:
        """Problem names present in the result, in first-seen order."""
        seen: List[str] = []
        for record in self.records:
            if record.problem not in seen:
                seen.append(record.problem)
        return seen

    def cycles(self, problem: str, config_name: str, strategy: str) -> int:
        """Cycle count of one measurement."""
        for record in self.records:
            if (record.problem == problem and record.config_name == config_name
                    and record.strategy == strategy):
                return record.cycles
        raise KeyError(f"no record for {problem}/{config_name}/{strategy}")

    def ratios(self, problem: str, baseline: str) -> List[float]:
        """``baseline / ours`` cycle ratios of ``problem`` over every configuration."""
        ours: Dict[str, int] = {}
        base: Dict[str, int] = {}
        for record in self.records:
            if record.problem != problem:
                continue
            if record.strategy == OURS:
                ours[record.config_name] = record.cycles
            elif record.strategy == baseline:
                base[record.config_name] = record.cycles
        shared = sorted(set(ours) & set(base))
        if not shared:
            raise KeyError(f"no overlapping configurations for {problem}/{baseline}")
        return [base[name] / ours[name] for name in shared]

    def stats(self, problem: str, baseline: str) -> RatioStats:
        """Violin statistics of one (problem, baseline) pair."""
        return ratio_stats(self.ratios(problem, baseline))

    def stats_table(self) -> Dict[str, Dict[str, RatioStats]]:
        """``{problem: {baseline: RatioStats}}`` for every problem in the result."""
        table: Dict[str, Dict[str, RatioStats]] = {}
        for problem in self.problems():
            table[problem] = {}
            for baseline in BASELINES:
                try:
                    table[problem][baseline] = self.stats(problem, baseline)
                except KeyError:
                    continue
        return table

    # ------------------------------------------------------------------ headline claims
    def average_speedup(self, baseline: str, category: Optional[str] = None) -> float:
        """Mean of per-problem average ratios against ``baseline``.

        With ``category="math"`` this reproduces the paper's headline numbers
        (1.3x over lws=1 and 3.7x over lws=32 for the math kernels).
        """
        averages: List[float] = []
        for problem in self.problems():
            if category is not None:
                problem_category = next(r.category for r in self.records
                                        if r.problem == problem)
                if problem_category != category:
                    continue
            try:
                averages.append(self.stats(problem, baseline).average)
            except KeyError:
                continue
        if not averages:
            raise ValueError(f"no problems with category {category!r} and baseline {baseline!r}")
        return sum(averages) / len(averages)

    def worst_case_slowdown(self, baseline: str) -> float:
        """Largest ratio observed anywhere (the paper notes "up to 20x slower")."""
        worst = 0.0
        for problem in self.problems():
            try:
                worst = max(worst, self.stats(problem, baseline).best)
            except KeyError:
                continue
        return worst

    def as_rows(self) -> List[Dict[str, object]]:
        """Every record as a dictionary (for CSV/JSON export)."""
        return [record.as_dict() for record in self.records]

    # ------------------------------------------------------------------ persistence
    def save_json(self, path) -> None:
        """Write every sweep record to a JSON file (re-loadable with :meth:`load_json`).

        Long sweeps are expensive on a pure-Python simulator; persisting the
        raw records lets reports and claims be recomputed without re-running.
        """
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.as_rows(), indent=1))

    @classmethod
    def load_json(cls, path) -> "Figure2Result":
        """Load a result previously written by :meth:`save_json`."""
        import json
        from pathlib import Path

        rows = json.loads(Path(path).read_text())
        return cls(records=[SweepRecord.from_dict(row) for row in rows])


# ----------------------------------------------------------------------
def sweep_record_from_job(job, strategy: str,
                          category: Optional[str] = None) -> SweepRecord:
    """One :class:`SweepRecord` from a campaign :class:`JobResult`.

    The single conversion point shared by :func:`run_figure2` and the
    registered ``figure2``/``claims`` scenarios (whose analyses rebuild the
    result from sink records) -- the numbers cannot diverge because they are
    copied by the same code.
    """
    return SweepRecord(
        problem=job.problem,
        category=category if category is not None else job.category,
        config_name=job.config_name,
        hardware_parallelism=job.hardware_parallelism,
        strategy=strategy,
        local_size=job.local_size,
        global_size=job.global_size,
        num_calls=job.num_calls,
        cycles=job.cycles,
        lane_utilization=job.lane_utilization,
        elapsed_seconds=job.elapsed_seconds,
    )


def build_figure2_campaign(problem_names: Sequence[str],
                           configs: Sequence[ArchConfig],
                           scale: str = "bench",
                           strategies: Optional[Mapping[str, MappingStrategy]] = None,
                           call_simulation_limit: Optional[int] = DEFAULT_CALL_SIMULATION_LIMIT,
                           seed: int = 0) -> Tuple[Campaign, List[Tuple[Problem, str]]]:
    """Build the sweep grid as a campaign.

    Returns the campaign plus, per submitted job, the ``(problem, label)``
    pair it measures -- strategies are resolved to concrete lws values here,
    so the specs are pure content-addressed simulation points.
    """
    chosen = dict(strategies) if strategies is not None else dict(PAPER_STRATEGIES)
    if OURS not in chosen:
        raise ValueError(f"strategies must include the {OURS!r} mapping")
    campaign = Campaign(name="figure2")
    jobs: List[Tuple[Problem, str]] = []
    for problem_name in problem_names:
        problem = make_problem(problem_name, scale=scale, seed=seed)
        for config in configs:
            for label, strategy in chosen.items():
                lws = strategy.select_local_size(problem.global_size, config)
                campaign.add(JobSpec(
                    problem=problem_name,
                    config=config,
                    scale=scale,
                    seed=seed,
                    local_size=lws,
                    call_simulation_limit=call_simulation_limit,
                    label=f"{problem_name}/{config.name}/{label}",
                ))
                jobs.append((problem, label))
    return campaign, jobs


def run_figure2(problem_names: Sequence[str], configs: Sequence[ArchConfig],
                scale: str = "bench",
                strategies: Optional[Mapping[str, MappingStrategy]] = None,
                call_simulation_limit: Optional[int] = DEFAULT_CALL_SIMULATION_LIMIT,
                seed: int = 0,
                progress: Optional[callable] = None,
                runner: Optional[CampaignRunner] = None) -> Figure2Result:
    """Execute the Figure-2 sweep through the campaign engine.

    Parameters
    ----------
    problem_names:
        Which workloads to sweep (names from :mod:`repro.workloads.problems`).
    configs:
        Hardware configurations (e.g. from :func:`repro.experiments.configs.paper_sweep`).
    scale:
        Problem scale: ``"paper"``, ``"bench"`` or ``"smoke"``.
    strategies:
        Mapping strategies keyed by report label; defaults to the paper's three.
    call_simulation_limit:
        Passed to the launcher; ``None`` simulates every kernel call exactly.
    seed:
        Single RNG seed threaded into every job spec; the input data of every
        grid point is a pure function of ``(problem, scale, seed)``, so cached
        and fresh runs of the same grid are bit-identical.
    progress:
        Optional callback ``progress(problem, config, strategy, cycles)`` invoked
        after every measurement (used for logging in long sweeps).
    runner:
        The campaign runner to submit through; defaults to a serial runner
        without a cache (hermetic).  Pass ``CampaignRunner(workers=N,
        cache=ResultCache())`` for parallel, cache-served sweeps.
    """
    campaign, jobs = build_figure2_campaign(
        problem_names, configs, scale=scale, strategies=strategies,
        call_simulation_limit=call_simulation_limit, seed=seed)
    runner = runner if runner is not None else CampaignRunner()

    campaign_progress = None
    if progress is not None:
        def campaign_progress(index, total, spec, outcome):
            if outcome.ok:
                problem, label = jobs[index]
                progress(problem.name, spec.config.name, label, outcome.cycles)

    outcome = runner.run(campaign, progress=campaign_progress)
    outcome.raise_on_failure()

    result = Figure2Result()
    for (problem, label), job in zip(jobs, outcome.results):
        result.records.append(
            sweep_record_from_job(job, label, category=problem.category))
    return result
