"""The paper's textual claims (Section 3), evaluated against sweep results.

Four claims are checked:

* C1 -- "our technique shows an average 1.3x ... performance boost for the math
  kernels over the lws=1 mapping";
* C2 -- "... and 3.7x ... over the lws=32 [mapping]";
* C3 -- "providing the kernel execution with the same lws results in a large
  performance variability: from optimal to up to 20x slower";
* C4 -- "when the hardware parallelism hp exceeds the gws of the executed
  kernel, Eq. 1 resolves to lws=1" (checked analytically over the sweep's
  configurations).

The reproduction does not target the paper's absolute numbers (the substrate
is a different simulator); each claim therefore records the measured value
next to the paper's value so EXPERIMENTS.md can report both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.runner import CampaignRunner
from repro.core.optimizer import optimal_local_size
from repro.experiments.figure2 import DEFAULT_CALL_SIMULATION_LIMIT, Figure2Result, run_figure2
from repro.sim.config import ArchConfig


@dataclass(frozen=True)
class ClaimOutcome:
    """One claim: the paper's number, the measured number, and a pass flag."""

    claim_id: str
    description: str
    paper_value: float
    measured_value: float
    holds: bool

    def render(self) -> str:
        """One-line rendering for reports."""
        status = "holds" if self.holds else "DIVERGES"
        return (f"{self.claim_id}: paper {self.paper_value:g}, measured "
                f"{self.measured_value:.2f} -> {status} ({self.description})")


@dataclass
class ClaimResults:
    """All claim outcomes for one sweep."""

    outcomes: List[ClaimOutcome] = field(default_factory=list)

    def by_id(self, claim_id: str) -> ClaimOutcome:
        """Look up one claim outcome."""
        for outcome in self.outcomes:
            if outcome.claim_id == claim_id:
                return outcome
        raise KeyError(f"unknown claim {claim_id!r}")

    def render(self) -> str:
        """Multi-line rendering of every claim."""
        return "\n".join(outcome.render() for outcome in self.outcomes)


def run_claims(problem_names: Sequence[str], configs: Sequence[ArchConfig],
               scale: str = "bench",
               call_simulation_limit: Optional[int] = DEFAULT_CALL_SIMULATION_LIMIT,
               seed: int = 0,
               runner: Optional[CampaignRunner] = None) -> ClaimResults:
    """Run the sweep through the campaign engine and evaluate the claims.

    Convenience wrapper: with a cached :class:`CampaignRunner`, re-evaluating
    the claims after a figure regeneration is entirely cache-served -- the
    sweep grid is identical, so no point is simulated twice.
    """
    result = run_figure2(problem_names, configs, scale=scale,
                         call_simulation_limit=call_simulation_limit,
                         seed=seed, runner=runner)
    return evaluate_claims(result)


def evaluate_claims(result: Figure2Result,
                    configs: Optional[Sequence[ArchConfig]] = None,
                    global_sizes: Optional[Dict[str, int]] = None) -> ClaimResults:
    """Evaluate the Section-3 claims on a :class:`Figure2Result`.

    ``configs`` and ``global_sizes`` (problem name -> gws) are only needed for
    claim C4, which is analytic; when omitted, C4 is derived from the sweep
    records themselves.
    """
    claims = ClaimResults()

    # C1 / C2: average speed-up of the math kernels over the two baselines.
    math_vs_naive = result.average_speedup("lws=1", category="math")
    claims.outcomes.append(ClaimOutcome(
        claim_id="C1",
        description="average math-kernel speed-up over the naive lws=1 mapping",
        paper_value=1.3,
        measured_value=math_vs_naive,
        holds=math_vs_naive >= 1.05,
    ))
    math_vs_fixed = result.average_speedup("lws=32", category="math")
    claims.outcomes.append(ClaimOutcome(
        claim_id="C2",
        description="average math-kernel speed-up over the fixed lws=32 mapping",
        paper_value=3.7,
        measured_value=math_vs_fixed,
        holds=math_vs_fixed >= 1.5,
    ))

    # C3: a hardware-agnostic lws can be far from optimal on some machine.
    worst = max(result.worst_case_slowdown("lws=1"), result.worst_case_slowdown("lws=32"))
    claims.outcomes.append(ClaimOutcome(
        claim_id="C3",
        description="worst-case slow-down of a hardware-agnostic mapping",
        paper_value=20.0,
        measured_value=worst,
        holds=worst >= 4.0,
    ))

    # C4: Eq. 1 degenerates to lws=1 whenever hp >= gws.
    degenerate_total = 0
    degenerate_correct = 0
    if configs is not None and global_sizes:
        for config in configs:
            for gws in global_sizes.values():
                if config.hardware_parallelism >= gws:
                    degenerate_total += 1
                    if optimal_local_size(gws, config) == 1:
                        degenerate_correct += 1
    else:
        for record in result.records:
            if record.strategy != "ours":
                continue
            if record.hardware_parallelism >= record.global_size:
                degenerate_total += 1
                if record.local_size == 1:
                    degenerate_correct += 1
    fraction = degenerate_correct / degenerate_total if degenerate_total else 1.0
    claims.outcomes.append(ClaimOutcome(
        claim_id="C4",
        description="Eq. 1 resolves to lws=1 whenever hp >= gws",
        paper_value=1.0,
        measured_value=fraction,
        holds=fraction == 1.0,
    ))
    return claims
