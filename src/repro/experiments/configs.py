"""Hardware-configuration sweeps.

The paper validates its mapping on "450 different hardware GPU configurations,
spanning from 1 core, 2 warps, and 2 threads (1c2w2t) to 64c32w32t".  The exact
grid is not published, so the reproduction uses a Cartesian grid with the same
corner points and the same count:

* 18 core counts: 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 56, 60, 64
* 5 warp counts per core: 2, 4, 8, 16, 32
* 5 thread counts per warp: 2, 4, 8, 16, 32

18 x 5 x 5 = 450 configurations.  Reduced grids (``bench``, ``smoke``) keep the
same span (including both corner machines) with fewer intermediate points so
the sweep fits in CI time on the pure-Python simulator.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.sim.config import ArchConfig

#: Core counts of the full sweep (18 values).
PAPER_CORE_COUNTS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 56, 60, 64)
#: Warp counts per core of the full sweep.
PAPER_WARP_COUNTS = (2, 4, 8, 16, 32)
#: Thread counts per warp of the full sweep.
PAPER_THREAD_COUNTS = (2, 4, 8, 16, 32)

#: Size of the paper's sweep.
PAPER_SWEEP_SIZE = len(PAPER_CORE_COUNTS) * len(PAPER_WARP_COUNTS) * len(PAPER_THREAD_COUNTS)

# Reduced grids: same corners (1c2w2t and 64c32w32t), fewer interior points.
BENCH_CORE_COUNTS = (1, 4, 16, 64)
BENCH_WARP_COUNTS = (2, 8, 32)
BENCH_THREAD_COUNTS = (2, 8, 32)

SMOKE_CORE_COUNTS = (1, 4)
SMOKE_WARP_COUNTS = (2, 8)
SMOKE_THREAD_COUNTS = (2, 8)


def grid_sweep(cores: Sequence[int], warps: Sequence[int], threads: Sequence[int],
               **overrides) -> List[ArchConfig]:
    """Cartesian product of the three shape axes as :class:`ArchConfig` objects."""
    configs: List[ArchConfig] = []
    for core_count in cores:
        for warp_count in warps:
            for thread_count in threads:
                configs.append(ArchConfig(cores=core_count, warps_per_core=warp_count,
                                          threads_per_warp=thread_count, **overrides))
    return configs


def paper_sweep(**overrides) -> List[ArchConfig]:
    """The full 450-configuration sweep."""
    return grid_sweep(PAPER_CORE_COUNTS, PAPER_WARP_COUNTS, PAPER_THREAD_COUNTS, **overrides)


def bench_sweep(**overrides) -> List[ArchConfig]:
    """A 36-configuration grid with the same span, used by the benchmark harness."""
    return grid_sweep(BENCH_CORE_COUNTS, BENCH_WARP_COUNTS, BENCH_THREAD_COUNTS, **overrides)


def smoke_sweep(**overrides) -> List[ArchConfig]:
    """An 8-configuration grid for tests and quick sanity runs."""
    return grid_sweep(SMOKE_CORE_COUNTS, SMOKE_WARP_COUNTS, SMOKE_THREAD_COUNTS, **overrides)


def sweep_by_name(name: str, **overrides) -> List[ArchConfig]:
    """Look up a sweep by name: ``"paper"``, ``"bench"`` or ``"smoke"``."""
    sweeps = {"paper": paper_sweep, "bench": bench_sweep, "smoke": smoke_sweep}
    try:
        return sweeps[name](**overrides)
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; expected one of {sorted(sweeps)}") from None
