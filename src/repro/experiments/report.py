"""Report rendering: the paper's data tables and a full markdown report.

The Figure-2 data tables print, per workload and per baseline, the average
ratio, the fraction of configurations where the baseline was faster ("worse")
and the worst ratio.  :func:`render_figure2_table` reproduces that table in
markdown/ASCII; :func:`render_markdown_report` assembles the complete
experiment report (figures, claims, ablations) that EXPERIMENTS.md is built
from.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.claims import ClaimResults
from repro.experiments.figure2 import BASELINES, Figure2Result
from repro.experiments.stats import RatioStats


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "| " + " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)) + " |"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a markdown table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [_format_row(headers, widths),
             "|" + "|".join("-" * (width + 2) for width in widths) + "|"]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def render_figure2_table(result: Figure2Result,
                         baselines: Sequence[str] = BASELINES) -> str:
    """The per-kernel avg / worse% / worst table of the paper's Figure 2."""
    headers = ["kernel", "category"]
    for baseline in baselines:
        headers.extend([f"{baseline}/ours avg", f"{baseline}/ours worse%", f"{baseline}/ours worst"])
    rows: List[List[str]] = []
    table = result.stats_table()
    for problem in result.problems():
        category = next(r.category for r in result.records if r.problem == problem)
        row = [problem, category]
        for baseline in baselines:
            stats: Optional[RatioStats] = table.get(problem, {}).get(baseline)
            if stats is None:
                row.extend(["-", "-", "-"])
            else:
                row.extend([f"{stats.average:.2f}", f"{stats.percent_below_one:.1f}",
                            f"{stats.worst:.2f}"])
        rows.append(row)
    return render_table(headers, rows)


def render_speedup_summary(result: Figure2Result) -> str:
    """The Section-3 headline numbers (math-kernel average speed-ups)."""
    lines = []
    for baseline in BASELINES:
        try:
            math_avg = result.average_speedup(baseline, category="math")
            lines.append(f"math kernels, average speed-up over {baseline}: {math_avg:.2f}x")
        except ValueError:
            continue
        try:
            overall = result.average_speedup(baseline)
            lines.append(f"all workloads, average speed-up over {baseline}: {overall:.2f}x")
        except ValueError:
            continue
    return "\n".join(lines)


def render_markdown_report(figure2: Figure2Result,
                           claims: Optional[ClaimResults] = None,
                           figure1_text: Optional[str] = None,
                           title: str = "Experiment report") -> str:
    """Assemble a complete markdown report from experiment results."""
    sections: List[str] = [f"# {title}", ""]
    if figure1_text:
        sections.extend(["## Figure 1 -- execution traces", "", "```", figure1_text, "```", ""])
    sections.extend([
        "## Figure 2 -- mapping comparison across hardware configurations", "",
        render_figure2_table(figure2), "",
        render_speedup_summary(figure2), "",
    ])
    if claims is not None:
        sections.extend(["## Section-3 claims", "", "```", claims.render(), "```", ""])
    return "\n".join(sections)
