"""Figure 1: execution traces of ``vecadd`` under different lws values.

The paper's Figure 1 traces a 128-element vector addition on a
1-core / 2-warp / 4-thread machine (hardware parallelism 8) for
``lws in {1, 16, 32, 64}`` and shows, per warp, which tagged code section
issues at which time.  ``run_figure1`` reproduces the study: it runs the same
four launches with tracing enabled and returns, per lws, the trace, the cycle
count, the number of kernel calls and the rendered ASCII timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.device import Device
from repro.runtime.launcher import LaunchResult, launch_kernel
from repro.sim.config import ArchConfig, FIGURE1_CONFIG
from repro.trace.analysis import TraceAnalysis, analyze_trace
from repro.trace.render import render_issue_timeline, render_section_waveform
from repro.trace.tracer import Tracer
from repro.workloads.problems import make_problem
from repro.workloads.tensors import random_vector

import numpy as np

#: The lws values traced in the paper's Figure 1.
FIGURE1_LWS_VALUES = (1, 16, 32, 64)
#: The vector length used in the paper's Figure 1.
FIGURE1_LENGTH = 128


@dataclass
class Figure1Trace:
    """One traced launch of the Figure-1 study."""

    local_size: int
    cycles: int
    num_calls: int
    num_workgroups: int
    lane_utilization: float
    events: tuple
    analysis: TraceAnalysis
    timeline: str
    waveform: str

    def summary(self) -> str:
        """One-line summary mirroring the paper's per-plot caption."""
        return (f"lws={self.local_size:>3}: {self.cycles:>6} cycles, "
                f"{self.num_calls} kernel call(s), "
                f"{self.num_workgroups} workgroups, "
                f"lane utilisation {self.lane_utilization:.0%}")


@dataclass
class Figure1Result:
    """All traced launches of the Figure-1 study."""

    config_name: str
    global_size: int
    traces: Dict[int, Figure1Trace] = field(default_factory=dict)

    def best_local_size(self) -> int:
        """The lws with the lowest cycle count (the paper's Eq.-1 value, 16)."""
        return min(self.traces, key=lambda lws: self.traces[lws].cycles)

    def render(self) -> str:
        """Full multi-plot text rendering (one block per lws, like Figure 1)."""
        blocks: List[str] = [
            f"Figure 1 reproduction: vecadd, {self.global_size} elements on {self.config_name}",
            "",
        ]
        for lws in sorted(self.traces):
            trace = self.traces[lws]
            blocks.append(trace.summary())
            blocks.append(trace.waveform)
            blocks.append(trace.timeline)
            blocks.append("")
        return "\n".join(blocks)


def run_figure1(lws_values: Sequence[int] = FIGURE1_LWS_VALUES,
                length: int = FIGURE1_LENGTH,
                config: Optional[ArchConfig] = None,
                max_trace_events: int = 200_000,
                timeline_width: int = 96) -> Figure1Result:
    """Trace ``vecadd`` under each lws in ``lws_values`` on the Figure-1 machine."""
    config = config if config is not None else FIGURE1_CONFIG
    a = random_vector(length, seed=11)
    b = random_vector(length, seed=12)
    arguments = {"a": a, "b": b, "c": np.zeros(length)}
    from repro.kernels.library import VECADD

    result = Figure1Result(config_name=config.name, global_size=length)
    for lws in lws_values:
        tracer = Tracer(max_events=max_trace_events)
        device = Device(config, tracer=tracer)
        launch = launch_kernel(device, VECADD, arguments, length, local_size=lws)
        events = tracer.events
        analysis = analyze_trace(events, launch.counters,
                                 threads_per_warp=config.threads_per_warp)
        trace = Figure1Trace(
            local_size=launch.local_size,
            cycles=launch.cycles,
            num_calls=launch.num_calls,
            num_workgroups=launch.num_workgroups,
            lane_utilization=(launch.dispatch.average_lane_utilization
                              if launch.dispatch else 0.0),
            events=events,
            analysis=analysis,
            timeline=render_issue_timeline(events, width=timeline_width,
                                           title=f"lws={launch.local_size}"),
            waveform=render_section_waveform(events, width=timeline_width),
        )
        result.traces[launch.local_size] = trace
    return result
