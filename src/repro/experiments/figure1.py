"""Figure 1: execution traces of ``vecadd`` under different lws values.

The paper's Figure 1 traces a 128-element vector addition on a
1-core / 2-warp / 4-thread machine (hardware parallelism 8) for
``lws in {1, 16, 32, 64}`` and shows, per warp, which tagged code section
issues at which time.  ``run_figure1`` reproduces the study: it submits the
same four launches through the campaign engine with tracing enabled and
returns, per lws, the trace, the cycle count, the number of kernel calls and
the rendered ASCII timeline.  Traced jobs are always simulated fresh (the
result cache stores summaries, not event logs), but routing them through a
:class:`~repro.campaign.runner.CampaignRunner` still buys parallel execution
and failure isolation -- and seeds their summaries into the cache for other
experiments that hit the same points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Campaign, JobSpec
from repro.sim.config import ArchConfig, FIGURE1_CONFIG
from repro.trace.analysis import TraceAnalysis, analyze_trace
from repro.trace.render import render_issue_timeline, render_section_waveform

#: The lws values traced in the paper's Figure 1.
FIGURE1_LWS_VALUES = (1, 16, 32, 64)
#: The vector length used in the paper's Figure 1.
FIGURE1_LENGTH = 128
#: The data seed of the Figure-1 vectors (``a`` uses it, ``b`` uses seed+1).
FIGURE1_SEED = 11


def summarize_figure1_launch(local_size: int, cycles: int, num_calls: int,
                             num_workgroups: int, lane_utilization: float) -> str:
    """The per-plot caption line of the Figure-1 study.

    Shared by :meth:`Figure1Trace.summary` and the registered ``figure1``
    scenario's analysis (which renders the same numbers from sink records),
    so the two outputs cannot drift apart.
    """
    return (f"lws={local_size:>3}: {cycles:>6} cycles, "
            f"{num_calls} kernel call(s), "
            f"{num_workgroups} workgroups, "
            f"lane utilisation {lane_utilization:.0%}")


@dataclass
class Figure1Trace:
    """One traced launch of the Figure-1 study."""

    local_size: int
    cycles: int
    num_calls: int
    num_workgroups: int
    lane_utilization: float
    events: tuple
    analysis: TraceAnalysis
    timeline: str
    waveform: str

    def summary(self) -> str:
        """One-line summary mirroring the paper's per-plot caption."""
        return summarize_figure1_launch(self.local_size, self.cycles,
                                        self.num_calls, self.num_workgroups,
                                        self.lane_utilization)


@dataclass
class Figure1Result:
    """All traced launches of the Figure-1 study."""

    config_name: str
    global_size: int
    traces: Dict[int, Figure1Trace] = field(default_factory=dict)

    def best_local_size(self) -> int:
        """The lws with the lowest cycle count (the paper's Eq.-1 value, 16)."""
        return min(self.traces, key=lambda lws: self.traces[lws].cycles)

    def render(self) -> str:
        """Full multi-plot text rendering (one block per lws, like Figure 1)."""
        blocks: List[str] = [
            f"Figure 1 reproduction: vecadd, {self.global_size} elements on {self.config_name}",
            "",
        ]
        for lws in sorted(self.traces):
            trace = self.traces[lws]
            blocks.append(trace.summary())
            blocks.append(trace.waveform)
            blocks.append(trace.timeline)
            blocks.append("")
        return "\n".join(blocks)


def build_figure1_campaign(lws_values: Sequence[int] = FIGURE1_LWS_VALUES,
                           length: int = FIGURE1_LENGTH,
                           config: Optional[ArchConfig] = None,
                           max_trace_events: int = 200_000,
                           seed: int = FIGURE1_SEED,
                           collect_trace: bool = True) -> Campaign:
    """The Figure-1 grid as a campaign (one traced ``vecadd`` launch per lws).

    The registered ``figure1`` scenario declares the same grid (without
    tracing -- tracing never changes the numbers, only what is reported), so
    both paths simulate identical content-addressed points.
    """
    config = config if config is not None else FIGURE1_CONFIG
    campaign = Campaign(name="figure1")
    for lws in lws_values:
        campaign.add(JobSpec(
            problem="vecadd",
            config=config,
            scale="bench",
            seed=seed,
            size=length,
            local_size=lws,
            collect_trace=collect_trace,
            max_trace_events=max_trace_events,
            label=f"figure1/vecadd/lws={lws}",
        ))
    return campaign


def run_figure1(lws_values: Sequence[int] = FIGURE1_LWS_VALUES,
                length: int = FIGURE1_LENGTH,
                config: Optional[ArchConfig] = None,
                max_trace_events: int = 200_000,
                timeline_width: int = 96,
                seed: int = FIGURE1_SEED,
                runner: Optional[CampaignRunner] = None) -> Figure1Result:
    """Trace ``vecadd`` under each lws in ``lws_values`` on the Figure-1 machine."""
    config = config if config is not None else FIGURE1_CONFIG
    runner = runner if runner is not None else CampaignRunner()

    campaign = build_figure1_campaign(lws_values, length, config,
                                      max_trace_events, seed)
    outcome = runner.run(campaign)
    outcome.raise_on_failure()

    result = Figure1Result(config_name=config.name, global_size=length)
    for job in outcome.results:
        events = job.events if job.events is not None else ()
        analysis = analyze_trace(events, job.perf_counters(),
                                 threads_per_warp=config.threads_per_warp)
        trace = Figure1Trace(
            local_size=job.local_size,
            cycles=job.cycles,
            num_calls=job.num_calls,
            num_workgroups=job.num_workgroups,
            lane_utilization=job.lane_utilization,
            events=events,
            analysis=analysis,
            timeline=render_issue_timeline(events, width=timeline_width,
                                           title=f"lws={job.local_size}"),
            waveform=render_section_waveform(events, width=timeline_width),
        )
        result.traces[job.local_size] = trace
    return result
