"""Ablation studies for the design parameters DESIGN.md calls out.

* :func:`overhead_sensitivity` (A1) -- the lws=1 penalty is driven by the
  per-call launch overhead; sweeping the overhead quantifies how sensitive the
  paper's Figure-2 left-hand violins are to that micro-architecture parameter.
* :func:`boundedness_study` (A2) -- classifies each workload as memory- or
  compute-bound on a reference machine, reproducing the annotation above the
  paper's Figure 2 and explaining why the memory-bound kernels benefit less
  from extra parallelism.

Both studies submit their grids through the campaign engine; pass a
:class:`~repro.campaign.runner.CampaignRunner` to parallelise or cache them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Campaign, JobSpec
from repro.core.mapper import HardwareAwareMapping, NaiveMapping
from repro.sim.config import ArchConfig
from repro.trace.analysis import classify_boundedness
from repro.workloads.problems import make_problem

#: Launch overheads (cycles) swept by the A1 ablation.
DEFAULT_OVERHEADS = (0, 16, 64, 256, 1024)

#: Reference machine of the A1 overhead sweep.
OVERHEAD_BASE_CONFIG = ArchConfig(cores=4, warps_per_core=4, threads_per_warp=8)
#: Reference machine of the A2 boundedness study.
BOUNDEDNESS_CONFIG = ArchConfig(cores=2, warps_per_core=4, threads_per_warp=8)


@dataclass(frozen=True)
class OverheadSensitivityRecord:
    """One point of the launch-overhead ablation."""

    launch_overhead: int
    naive_cycles: int
    ours_cycles: int

    @property
    def ratio(self) -> float:
        """Slow-down of the naive mapping at this overhead."""
        return self.naive_cycles / self.ours_cycles if self.ours_cycles else 0.0


def build_overhead_campaign(problem_name: str = "vecadd", scale: str = "bench",
                            config: Optional[ArchConfig] = None,
                            overheads: Sequence[int] = DEFAULT_OVERHEADS,
                            call_simulation_limit: Optional[int] = 3,
                            seed: int = 0) -> Campaign:
    """The A1 grid: (naive, ours) per overhead, in overhead-major order.

    Shared with the registered ``ablation`` scenario, which declares one
    sub-grid per overhead with the same configs and strategies.
    """
    base_config = config if config is not None else OVERHEAD_BASE_CONFIG
    problem = make_problem(problem_name, scale=scale, seed=seed)
    campaign = Campaign(name="ablation-overhead")
    for overhead in overheads:
        config_o = replace(base_config, kernel_launch_overhead=overhead)
        for strategy in (NaiveMapping(), HardwareAwareMapping()):
            campaign.add(JobSpec(
                problem=problem_name,
                config=config_o,
                scale=scale,
                seed=seed,
                local_size=strategy.select_local_size(problem.global_size, config_o),
                call_simulation_limit=call_simulation_limit,
                label=f"{problem_name}/overhead={overhead}/{strategy.name}",
            ))
    return campaign


def overhead_records(overheads: Sequence[int],
                     cycle_pairs: Sequence[Sequence[int]]
                     ) -> List[OverheadSensitivityRecord]:
    """Pair up (naive, ours) cycle counts, one record per swept overhead."""
    return [OverheadSensitivityRecord(launch_overhead=overhead,
                                      naive_cycles=naive, ours_cycles=ours)
            for overhead, (naive, ours) in zip(overheads, cycle_pairs)]


def overhead_sensitivity(problem_name: str = "vecadd", scale: str = "bench",
                         config: Optional[ArchConfig] = None,
                         overheads: Sequence[int] = DEFAULT_OVERHEADS,
                         call_simulation_limit: Optional[int] = 3,
                         seed: int = 0,
                         runner: Optional[CampaignRunner] = None
                         ) -> List[OverheadSensitivityRecord]:
    """Sweep the kernel-launch overhead and measure the naive-vs-ours ratio."""
    runner = runner if runner is not None else CampaignRunner()
    campaign = build_overhead_campaign(problem_name, scale, config, overheads,
                                       call_simulation_limit, seed)
    jobs = runner.run(campaign).job_results()
    return overhead_records(
        overheads,
        [(naive_job.cycles, ours_job.cycles)
         for naive_job, ours_job in zip(jobs[::2], jobs[1::2])])


@dataclass(frozen=True)
class BoundednessRecord:
    """Boundedness classification of one workload."""

    problem: str
    category: str
    boundedness: str
    memory_intensity: float
    l1_hit_rate: float
    cycles: int


def build_boundedness_campaign(problem_names: Sequence[str],
                               scale: str = "bench",
                               config: Optional[ArchConfig] = None,
                               seed: int = 0) -> Campaign:
    """The A2 grid: one runtime-mapped launch per workload."""
    reference = config if config is not None else BOUNDEDNESS_CONFIG
    campaign = Campaign(name="ablation-boundedness")
    for name in problem_names:
        # lws=None -> the runtime Eq.-1 mapping, exactly like Device.launch.
        campaign.add(JobSpec(problem=name, config=reference, scale=scale,
                             seed=seed, label=f"boundedness/{name}"))
    return campaign


def boundedness_record_from_job(job) -> BoundednessRecord:
    """Classify one campaign :class:`JobResult` (shared with the scenario port)."""
    counters = job.perf_counters()
    return BoundednessRecord(
        problem=job.problem,
        category=job.category,
        boundedness=classify_boundedness(counters),
        memory_intensity=counters.memory_intensity,
        l1_hit_rate=counters.l1_hit_rate,
        cycles=job.cycles,
    )


def boundedness_study(problem_names: Sequence[str], scale: str = "bench",
                      config: Optional[ArchConfig] = None,
                      seed: int = 0,
                      runner: Optional[CampaignRunner] = None
                      ) -> List[BoundednessRecord]:
    """Classify each workload as memory- or compute-bound on a reference machine."""
    runner = runner if runner is not None else CampaignRunner()
    campaign = build_boundedness_campaign(problem_names, scale, config, seed)
    return [boundedness_record_from_job(job)
            for job in runner.run(campaign).job_results()]
