"""Ablation studies for the design parameters DESIGN.md calls out.

* :func:`overhead_sensitivity` (A1) -- the lws=1 penalty is driven by the
  per-call launch overhead; sweeping the overhead quantifies how sensitive the
  paper's Figure-2 left-hand violins are to that micro-architecture parameter.
* :func:`boundedness_study` (A2) -- classifies each workload as memory- or
  compute-bound on a reference machine, reproducing the annotation above the
  paper's Figure 2 and explaining why the memory-bound kernels benefit less
  from extra parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core.mapper import HardwareAwareMapping, NaiveMapping
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.sim.config import ArchConfig
from repro.trace.analysis import classify_boundedness
from repro.workloads.problems import make_problem

#: Launch overheads (cycles) swept by the A1 ablation.
DEFAULT_OVERHEADS = (0, 16, 64, 256, 1024)


@dataclass(frozen=True)
class OverheadSensitivityRecord:
    """One point of the launch-overhead ablation."""

    launch_overhead: int
    naive_cycles: int
    ours_cycles: int

    @property
    def ratio(self) -> float:
        """Slow-down of the naive mapping at this overhead."""
        return self.naive_cycles / self.ours_cycles if self.ours_cycles else 0.0


def overhead_sensitivity(problem_name: str = "vecadd", scale: str = "bench",
                         config: Optional[ArchConfig] = None,
                         overheads: Sequence[int] = DEFAULT_OVERHEADS,
                         call_simulation_limit: Optional[int] = 3,
                         seed: int = 0) -> List[OverheadSensitivityRecord]:
    """Sweep the kernel-launch overhead and measure the naive-vs-ours ratio."""
    base_config = config if config is not None else ArchConfig(cores=4, warps_per_core=4,
                                                               threads_per_warp=8)
    problem = make_problem(problem_name, scale=scale, seed=seed)
    naive = NaiveMapping()
    ours = HardwareAwareMapping()
    records: List[OverheadSensitivityRecord] = []
    for overhead in overheads:
        config_o = replace(base_config, kernel_launch_overhead=overhead)
        device = Device(config_o)
        naive_cycles = launch_kernel(
            device, problem.kernel, problem.arguments, problem.global_size,
            local_size=naive.select_local_size(problem.global_size, config_o),
            call_simulation_limit=call_simulation_limit).cycles
        ours_cycles = launch_kernel(
            device, problem.kernel, problem.arguments, problem.global_size,
            local_size=ours.select_local_size(problem.global_size, config_o),
            call_simulation_limit=call_simulation_limit).cycles
        records.append(OverheadSensitivityRecord(
            launch_overhead=overhead, naive_cycles=naive_cycles, ours_cycles=ours_cycles))
    return records


@dataclass(frozen=True)
class BoundednessRecord:
    """Boundedness classification of one workload."""

    problem: str
    category: str
    boundedness: str
    memory_intensity: float
    l1_hit_rate: float
    cycles: int


def boundedness_study(problem_names: Sequence[str], scale: str = "bench",
                      config: Optional[ArchConfig] = None,
                      seed: int = 0) -> List[BoundednessRecord]:
    """Classify each workload as memory- or compute-bound on a reference machine."""
    reference = config if config is not None else ArchConfig(cores=2, warps_per_core=4,
                                                             threads_per_warp=8)
    records: List[BoundednessRecord] = []
    for name in problem_names:
        problem = make_problem(name, scale=scale, seed=seed)
        device = Device(reference)
        result = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                               local_size=None)
        counters = result.counters
        records.append(BoundednessRecord(
            problem=problem.name,
            category=problem.category,
            boundedness=classify_boundedness(counters),
            memory_intensity=counters.memory_intensity,
            l1_hit_rate=counters.l1_hit_rate,
            cycles=result.cycles,
        ))
    return records
