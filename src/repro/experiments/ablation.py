"""Ablation studies for the design parameters DESIGN.md calls out.

* :func:`overhead_sensitivity` (A1) -- the lws=1 penalty is driven by the
  per-call launch overhead; sweeping the overhead quantifies how sensitive the
  paper's Figure-2 left-hand violins are to that micro-architecture parameter.
* :func:`boundedness_study` (A2) -- classifies each workload as memory- or
  compute-bound on a reference machine, reproducing the annotation above the
  paper's Figure 2 and explaining why the memory-bound kernels benefit less
  from extra parallelism.

Both studies submit their grids through the campaign engine; pass a
:class:`~repro.campaign.runner.CampaignRunner` to parallelise or cache them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Campaign, JobSpec
from repro.core.mapper import HardwareAwareMapping, NaiveMapping
from repro.sim.config import ArchConfig
from repro.trace.analysis import classify_boundedness
from repro.workloads.problems import make_problem

#: Launch overheads (cycles) swept by the A1 ablation.
DEFAULT_OVERHEADS = (0, 16, 64, 256, 1024)


@dataclass(frozen=True)
class OverheadSensitivityRecord:
    """One point of the launch-overhead ablation."""

    launch_overhead: int
    naive_cycles: int
    ours_cycles: int

    @property
    def ratio(self) -> float:
        """Slow-down of the naive mapping at this overhead."""
        return self.naive_cycles / self.ours_cycles if self.ours_cycles else 0.0


def overhead_sensitivity(problem_name: str = "vecadd", scale: str = "bench",
                         config: Optional[ArchConfig] = None,
                         overheads: Sequence[int] = DEFAULT_OVERHEADS,
                         call_simulation_limit: Optional[int] = 3,
                         seed: int = 0,
                         runner: Optional[CampaignRunner] = None
                         ) -> List[OverheadSensitivityRecord]:
    """Sweep the kernel-launch overhead and measure the naive-vs-ours ratio."""
    base_config = config if config is not None else ArchConfig(cores=4, warps_per_core=4,
                                                               threads_per_warp=8)
    runner = runner if runner is not None else CampaignRunner()
    problem = make_problem(problem_name, scale=scale, seed=seed)
    naive = NaiveMapping()
    ours = HardwareAwareMapping()
    campaign = Campaign(name="ablation-overhead")
    for overhead in overheads:
        config_o = replace(base_config, kernel_launch_overhead=overhead)
        for strategy in (naive, ours):
            campaign.add(JobSpec(
                problem=problem_name,
                config=config_o,
                scale=scale,
                seed=seed,
                local_size=strategy.select_local_size(problem.global_size, config_o),
                call_simulation_limit=call_simulation_limit,
                label=f"{problem_name}/overhead={overhead}/{strategy.name}",
            ))
    jobs = runner.run(campaign).job_results()
    records: List[OverheadSensitivityRecord] = []
    for overhead, (naive_job, ours_job) in zip(overheads, zip(jobs[::2], jobs[1::2])):
        records.append(OverheadSensitivityRecord(
            launch_overhead=overhead, naive_cycles=naive_job.cycles,
            ours_cycles=ours_job.cycles))
    return records


@dataclass(frozen=True)
class BoundednessRecord:
    """Boundedness classification of one workload."""

    problem: str
    category: str
    boundedness: str
    memory_intensity: float
    l1_hit_rate: float
    cycles: int


def boundedness_study(problem_names: Sequence[str], scale: str = "bench",
                      config: Optional[ArchConfig] = None,
                      seed: int = 0,
                      runner: Optional[CampaignRunner] = None
                      ) -> List[BoundednessRecord]:
    """Classify each workload as memory- or compute-bound on a reference machine."""
    reference = config if config is not None else ArchConfig(cores=2, warps_per_core=4,
                                                             threads_per_warp=8)
    runner = runner if runner is not None else CampaignRunner()
    campaign = Campaign(name="ablation-boundedness")
    for name in problem_names:
        # lws=None -> the runtime Eq.-1 mapping, exactly like Device.launch.
        campaign.add(JobSpec(problem=name, config=reference, scale=scale,
                             seed=seed, label=f"boundedness/{name}"))
    records: List[BoundednessRecord] = []
    for job in runner.run(campaign).job_results():
        counters = job.perf_counters()
        records.append(BoundednessRecord(
            problem=job.problem,
            category=job.category,
            boundedness=classify_boundedness(counters),
            memory_intensity=counters.memory_intensity,
            l1_hit_rate=counters.l1_hit_rate,
            cycles=job.cycles,
        ))
    return records
