"""Violin-plot statistics.

The paper's Figure 2 summarises each (kernel, baseline) distribution of cycle
ratios with three numbers printed in the data tables: the average ratio, the
worst result (the minimum ratio, i.e. the case where the baseline beats the
proposed mapping the most) and the percentage of configurations where the
baseline was faster ("worse" in the paper's table, counted as ratios below 1).
:func:`ratio_stats` computes exactly those, plus a few extras useful for the
report (median, maximum, quartiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class RatioStats:
    """Summary of a distribution of ``baseline_cycles / ours_cycles`` ratios."""

    count: int
    average: float
    worst: float            # minimum ratio (paper's "worst")
    best: float             # maximum ratio (largest speed-up over the baseline mapping)
    median: float
    fraction_below_one: float   # paper's "worse" percentage, as a fraction
    geometric_mean: float
    quartile_low: float
    quartile_high: float

    @property
    def percent_below_one(self) -> float:
        """The paper's "worse" number, in percent."""
        return 100.0 * self.fraction_below_one

    def as_dict(self) -> Dict[str, float]:
        """Serialise to plain floats (for JSON reports)."""
        return {
            "count": self.count,
            "average": self.average,
            "worst": self.worst,
            "best": self.best,
            "median": self.median,
            "percent_below_one": self.percent_below_one,
            "geometric_mean": self.geometric_mean,
            "quartile_low": self.quartile_low,
            "quartile_high": self.quartile_high,
        }

    def paper_row(self) -> str:
        """Render the three numbers the paper prints per violin."""
        return (f"avg: {self.average:6.2f}  worse: {self.percent_below_one:5.1f}%  "
                f"worst: {self.worst:5.2f}")


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def ratio_stats(ratios: Sequence[float]) -> RatioStats:
    """Compute the paper's violin summary for a list of ratios."""
    values = [float(r) for r in ratios]
    if not values:
        raise ValueError("ratio_stats needs at least one ratio")
    if any(v <= 0 for v in values):
        raise ValueError("ratios must be positive")
    ordered = sorted(values)
    count = len(ordered)
    average = sum(ordered) / count
    below = sum(1 for v in ordered if v < 1.0)
    log_sum = sum(math.log(v) for v in ordered)
    return RatioStats(
        count=count,
        average=average,
        worst=ordered[0],
        best=ordered[-1],
        median=_percentile(ordered, 0.5),
        fraction_below_one=below / count,
        geometric_mean=math.exp(log_sum / count),
        quartile_low=_percentile(ordered, 0.25),
        quartile_high=_percentile(ordered, 0.75),
    )
