"""Experiment harness: regenerates every figure and headline claim of the paper.

* :mod:`~repro.experiments.configs` -- the 450-configuration hardware sweep
  (and reduced grids for CI-sized runs).
* :mod:`~repro.experiments.figure1` -- the Figure-1 trace study: ``vecadd``
  on a 1-core/2-warp/4-thread machine under four different lws values.
* :mod:`~repro.experiments.figure2` -- the Figure-2 sweep: every workload on
  every configuration under the three mappings, with the violin statistics
  (average, worst case, fraction below 1) reported in the paper's data tables.
* :mod:`~repro.experiments.claims` -- the textual claims of Section 3
  (average 1.3x / 3.7x speed-ups, up to 20x worst case, Eq. 1 degenerating to
  lws=1 on very large machines).
* :mod:`~repro.experiments.ablation` -- launch-overhead sensitivity and
  memory/compute boundedness studies.
* :mod:`~repro.experiments.report` -- markdown rendering of all results.
"""

from repro.experiments.configs import (
    PAPER_SWEEP_SIZE,
    bench_sweep,
    paper_sweep,
    smoke_sweep,
    sweep_by_name,
)
from repro.experiments.figure1 import (
    Figure1Result,
    build_figure1_campaign,
    run_figure1,
    summarize_figure1_launch,
)
from repro.experiments.figure2 import (
    Figure2Result,
    SweepRecord,
    build_figure2_campaign,
    run_figure2,
    sweep_record_from_job,
)
from repro.experiments.stats import RatioStats, ratio_stats
from repro.experiments.claims import ClaimResults, evaluate_claims, run_claims
from repro.experiments.ablation import (
    BoundednessRecord,
    OverheadSensitivityRecord,
    boundedness_record_from_job,
    boundedness_study,
    build_boundedness_campaign,
    build_overhead_campaign,
    overhead_records,
    overhead_sensitivity,
)
from repro.experiments.report import render_figure2_table, render_markdown_report

__all__ = [
    "BoundednessRecord",
    "ClaimResults",
    "Figure1Result",
    "Figure2Result",
    "OverheadSensitivityRecord",
    "PAPER_SWEEP_SIZE",
    "RatioStats",
    "SweepRecord",
    "bench_sweep",
    "boundedness_record_from_job",
    "boundedness_study",
    "build_boundedness_campaign",
    "build_figure1_campaign",
    "build_figure2_campaign",
    "build_overhead_campaign",
    "evaluate_claims",
    "overhead_records",
    "overhead_sensitivity",
    "paper_sweep",
    "ratio_stats",
    "render_figure2_table",
    "run_claims",
    "render_markdown_report",
    "run_figure1",
    "run_figure2",
    "smoke_sweep",
    "summarize_figure1_launch",
    "sweep_by_name",
    "sweep_record_from_job",
]
