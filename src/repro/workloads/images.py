"""Synthetic images and feature maps.

Stand-ins for the paper's image inputs: a single-channel image for the
Gaussian filter (360 x 360 in the paper) and a CHW feature map for the
ResNet20 convolution layer (16 x 32 x 32 on CIFAR-10).
"""

from __future__ import annotations

import numpy as np


def random_image(height: int, width: int, seed: int = 0) -> np.ndarray:
    """A reproducible single-channel image with values in ``[0, 1)``."""
    if height < 1 or width < 1:
        raise ValueError(f"image dimensions must be positive, got {height}x{width}")
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(height, width)).astype(np.float64)


def random_feature_map(channels: int, height: int, width: int, seed: int = 0) -> np.ndarray:
    """A reproducible CHW feature map with values in ``[-1, 1)``."""
    if channels < 1 or height < 1 or width < 1:
        raise ValueError(
            f"feature-map dimensions must be positive, got {channels}x{height}x{width}")
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(channels, height, width)).astype(np.float64)


def random_conv_weights(out_channels: int, in_channels: int, kernel: int = 3,
                        seed: int = 0) -> np.ndarray:
    """Reproducible convolution weights with layout ``[oc, ic, ky, kx]``."""
    if out_channels < 1 or in_channels < 1 or kernel < 1:
        raise ValueError("convolution weight dimensions must be positive")
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(in_channels * kernel * kernel)
    return rng.uniform(-scale, scale,
                       size=(out_channels, in_channels, kernel, kernel)).astype(np.float64)
