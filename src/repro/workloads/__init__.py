"""Workload data generators and the paper's nine evaluation problems.

Real datasets used in the paper (Cora for the GCN kernels, CIFAR-10 for the
ResNet20 layer, the 42 764-point record set for kNN) are replaced by seeded
synthetic data of the same shape -- only the memory-access structure matters
for the mapping study (see DESIGN.md, substitutions table).

* :mod:`~repro.workloads.tensors` -- deterministic random vectors/matrices.
* :mod:`~repro.workloads.graphs`  -- synthetic CSR graphs with Cora-like shape.
* :mod:`~repro.workloads.images`  -- synthetic images / CHW feature maps.
* :mod:`~repro.workloads.points`  -- synthetic point clouds for kNN.
* :mod:`~repro.workloads.problems` -- :class:`Problem` descriptors binding a
  kernel, its input data, its global work size and a numpy reference
  implementation, at paper / bench / smoke scales.
"""

from repro.workloads.graphs import CsrGraph, cora_like_graph, synthetic_graph
from repro.workloads.images import random_feature_map, random_image
from repro.workloads.points import random_points
from repro.workloads.problems import (
    PAPER_PROBLEM_NAMES,
    Problem,
    Scale,
    available_problems,
    make_problem,
)
from repro.workloads.tensors import random_matrix, random_vector

__all__ = [
    "CsrGraph",
    "PAPER_PROBLEM_NAMES",
    "Problem",
    "Scale",
    "available_problems",
    "cora_like_graph",
    "make_problem",
    "random_feature_map",
    "random_image",
    "random_matrix",
    "random_points",
    "random_vector",
    "synthetic_graph",
]
