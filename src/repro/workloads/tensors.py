"""Deterministic random tensors.

All generators take an explicit seed so experiments are reproducible run to
run; values are kept in a small range to avoid float32-vs-float64 drift when
kernel outputs are compared against numpy references.
"""

from __future__ import annotations

import numpy as np


def random_vector(length: int, seed: int = 0, low: float = -1.0, high: float = 1.0) -> np.ndarray:
    """A reproducible random vector of ``length`` floats in ``[low, high)``."""
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=length).astype(np.float64)


def random_matrix(rows: int, cols: int, seed: int = 0,
                  low: float = -1.0, high: float = 1.0) -> np.ndarray:
    """A reproducible random ``rows x cols`` matrix."""
    if rows < 1 or cols < 1:
        raise ValueError(f"matrix dimensions must be positive, got {rows}x{cols}")
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=(rows, cols)).astype(np.float64)
