"""Problem descriptors: the nine Figure-2 workloads, ready to launch.

A :class:`Problem` binds a kernel to concrete input data, the flattened global
work size and a numpy reference implementation for its writable buffers.  The
experiment harness iterates over problems, the tests use the references to
check functional correctness, and the examples use them as ready-made demos.

Each problem exists at three scales:

* ``paper`` -- the sizes reported in the paper (e.g. 42 764 kNN points,
  360 x 360 Gaussian filter, Cora-sized GCN).  Faithful but slow on a pure
  Python cycle-level simulator.
* ``bench`` -- reduced sizes used by the benchmark harness; the regime
  boundaries (kernel calls vs utilisation) scale proportionally so the
  Figure-2 ratio shapes are preserved.
* ``smoke`` -- tiny sizes for unit tests and quick sanity checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.kernels.library import (
    CONV2D,
    GAUSSIAN,
    GCN_AGGREGATE,
    GCN_LAYER,
    KNN,
    RELU,
    SAXPY,
    SGEMM,
    VECADD,
)
from repro.kernels.library.gaussian import GAUSSIAN_WEIGHTS
from repro.kernels.kernel import Kernel
from repro.workloads.graphs import CORA_NODES, CsrGraph, cora_like_graph, synthetic_graph
from repro.workloads.images import random_conv_weights, random_feature_map, random_image
from repro.workloads.points import random_points
from repro.workloads.tensors import random_matrix, random_vector

#: Allowed scale names.
Scale = str
SCALES = ("paper", "bench", "smoke")

#: Problem names in the order the paper's Figure 2 lists them.
PAPER_PROBLEM_NAMES = (
    "knn", "vecadd", "relu", "saxpy", "sgemm",
    "gaussian", "gcn_aggregate", "conv2d", "gcn_layer",
)


@dataclass(frozen=True)
class Problem:
    """A kernel plus everything needed to launch and verify it."""

    name: str
    kernel: Kernel
    arguments: Mapping[str, object]
    global_size: int
    category: str                       # "math" or "ml" (the paper's grouping)
    scale: Scale
    description: str = ""
    reference: Optional[Callable[[], Dict[str, np.ndarray]]] = None
    parameters: Mapping[str, object] = field(default_factory=dict)

    def reference_outputs(self) -> Dict[str, np.ndarray]:
        """Numpy reference results for the kernel's writable buffers."""
        if self.reference is None:
            return {}
        return self.reference()

    def summary(self) -> str:
        """One-line description used in reports."""
        return (f"{self.name} [{self.category}, scale={self.scale}]: "
                f"gws={self.global_size} -- {self.description}")


class UnknownProblemError(KeyError):
    """Raised for unknown problem names or scales."""


def _require_scale(scale: Scale) -> None:
    if scale not in SCALES:
        raise UnknownProblemError(f"unknown scale {scale!r}; expected one of {SCALES}")


# ----------------------------------------------------------------------
# element-wise math kernels
# ----------------------------------------------------------------------
_ELEMENTWISE_SIZES = {"paper": 4096, "bench": 512, "smoke": 64}


def _vecadd(scale: Scale, seed: int, size: Optional[int] = None) -> Problem:
    n = size if size is not None else _ELEMENTWISE_SIZES[scale]
    a = random_vector(n, seed=seed)
    b = random_vector(n, seed=seed + 1)
    return Problem(
        name="vecadd", kernel=VECADD,
        arguments={"a": a, "b": b, "c": np.zeros(n)},
        global_size=n, category="math", scale=scale,
        description=f"vector addition, length {n}",
        reference=lambda: {"c": a + b},
        parameters={"length": n},
    )


def _relu(scale: Scale, seed: int, size: Optional[int] = None) -> Problem:
    n = size if size is not None else _ELEMENTWISE_SIZES[scale]
    x = random_vector(n, seed=seed)
    return Problem(
        name="relu", kernel=RELU,
        arguments={"x": x, "y": np.zeros(n)},
        global_size=n, category="math", scale=scale,
        description=f"ReLU, length {n}",
        reference=lambda: {"y": np.maximum(x, 0.0)},
        parameters={"length": n},
    )


def _saxpy(scale: Scale, seed: int, size: Optional[int] = None) -> Problem:
    n = size if size is not None else _ELEMENTWISE_SIZES[scale]
    a = 2.5
    x = random_vector(n, seed=seed)
    y = random_vector(n, seed=seed + 1)
    return Problem(
        name="saxpy", kernel=SAXPY,
        arguments={"x": x, "y": y, "a": a},
        global_size=n, category="math", scale=scale,
        description=f"saxpy, length {n}",
        reference=lambda: {"y": a * x + y},
        parameters={"length": n, "a": a},
    )


# ----------------------------------------------------------------------
# sgemm
# ----------------------------------------------------------------------
_SGEMM_SIZES = {"paper": (256, 16, 144), "bench": (32, 8, 16), "smoke": (8, 4, 8)}


def _sgemm(scale: Scale, seed: int) -> Problem:
    m, n, k = _SGEMM_SIZES[scale]
    a = random_matrix(m, k, seed=seed)
    b = random_matrix(k, n, seed=seed + 1)
    return Problem(
        name="sgemm", kernel=SGEMM,
        arguments={"a": a, "b": b, "c": np.zeros((m, n)), "m": m, "n": n, "k": k},
        global_size=m * n, category="math", scale=scale,
        description=f"sgemm {m}x{k} @ {k}x{n}",
        reference=lambda: {"c": (a @ b).ravel()},
        parameters={"m": m, "n": n, "k": k},
    )


# ----------------------------------------------------------------------
# kNN
# ----------------------------------------------------------------------
_KNN_SIZES = {"paper": 42764, "bench": 2048, "smoke": 128}


def _knn(scale: Scale, seed: int, size: Optional[int] = None) -> Problem:
    count = size if size is not None else _KNN_SIZES[scale]
    lat, lng = random_points(count, seed=seed)
    lat_q, lng_q = 30.0, -120.0
    return Problem(
        name="knn", kernel=KNN,
        arguments={"lat": lat, "lng": lng, "dist": np.zeros(count),
                   "lat_q": lat_q, "lng_q": lng_q},
        global_size=count, category="math", scale=scale,
        description=f"nearest-neighbour distances, {count} points",
        reference=lambda: {"dist": np.sqrt((lat - lat_q) ** 2 + (lng - lng_q) ** 2)},
        parameters={"points": count},
    )


# ----------------------------------------------------------------------
# Gaussian blur
# ----------------------------------------------------------------------
_GAUSSIAN_SIZES = {"paper": (360, 360), "bench": (48, 48), "smoke": (12, 12)}


def _gaussian_reference(image: np.ndarray, weights: np.ndarray) -> np.ndarray:
    height, width = image.shape
    out = np.zeros_like(image)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            weight = weights[(dy + 1) * 3 + (dx + 1)]
            ys = np.clip(np.arange(height) + dy, 0, height - 1)
            xs = np.clip(np.arange(width) + dx, 0, width - 1)
            out += weight * image[np.ix_(ys, xs)]
    return out


def _gaussian(scale: Scale, seed: int) -> Problem:
    height, width = _GAUSSIAN_SIZES[scale]
    image = random_image(height, width, seed=seed)
    weights = np.asarray(GAUSSIAN_WEIGHTS, dtype=np.float64)
    return Problem(
        name="gaussian", kernel=GAUSSIAN,
        arguments={"img": image, "weights": weights, "out": np.zeros((height, width)),
                   "width": width, "height": height},
        global_size=height * width, category="math", scale=scale,
        description=f"3x3 Gaussian blur, {height}x{width} image",
        reference=lambda: {"out": _gaussian_reference(image, weights).ravel()},
        parameters={"height": height, "width": width},
    )


# ----------------------------------------------------------------------
# GCN aggregation / layer
# ----------------------------------------------------------------------
#: Node count per scale (the graph builders below honour these, pinned by the
#: paper-scale workload tests; CORA_NODES is the Cora citation graph's 2708).
_GCN_NODES = {"paper": CORA_NODES, "bench": 256, "smoke": 32}

_GCN_SIZES = {
    # (graph builder, hidden, hidden_out)
    "paper": (lambda seed: cora_like_graph(seed=seed), 16, 16),
    "bench": (lambda seed: synthetic_graph(_GCN_NODES["bench"], 1024, seed=seed), 8, 8),
    "smoke": (lambda seed: synthetic_graph(_GCN_NODES["smoke"], 128, seed=seed), 4, 4),
}


def _gcn_mean_aggregate(graph: CsrGraph, features: np.ndarray) -> np.ndarray:
    out = np.zeros_like(features)
    for node in range(graph.num_nodes):
        neighbours = graph.neighbours(node)
        total = features[node].copy()
        for neighbour in neighbours:
            total += features[int(neighbour)]
        out[node] = total / (len(neighbours) + 1)
    return out


def _gcn_aggregate(scale: Scale, seed: int) -> Problem:
    build_graph, hidden, _ = _GCN_SIZES[scale]
    graph = build_graph(seed)
    features = random_matrix(graph.num_nodes, hidden, seed=seed + 1)
    return Problem(
        name="gcn_aggregate", kernel=GCN_AGGREGATE,
        arguments={"row_ptr": graph.row_ptr.astype(np.float64),
                   "col_idx": graph.col_idx.astype(np.float64),
                   "x": features,
                   "out": np.zeros_like(features),
                   "hidden": hidden},
        global_size=graph.num_nodes * hidden, category="ml", scale=scale,
        description=(f"GCN mean aggregation, {graph.num_nodes} nodes, "
                     f"{graph.num_edges} edges, hidden {hidden}"),
        reference=lambda: {"out": _gcn_mean_aggregate(graph, features).ravel()},
        parameters={"nodes": graph.num_nodes, "edges": graph.num_edges, "hidden": hidden},
    )


def _gcn_layer(scale: Scale, seed: int) -> Problem:
    build_graph, hidden, hidden_out = _GCN_SIZES[scale]
    graph = build_graph(seed)
    features = random_matrix(graph.num_nodes, hidden, seed=seed + 1)
    weights = random_matrix(hidden, hidden_out, seed=seed + 2)

    def reference() -> Dict[str, np.ndarray]:
        aggregated = _gcn_mean_aggregate(graph, features)
        return {"out": np.maximum(aggregated @ weights, 0.0).ravel()}

    return Problem(
        name="gcn_layer", kernel=GCN_LAYER,
        arguments={"row_ptr": graph.row_ptr.astype(np.float64),
                   "col_idx": graph.col_idx.astype(np.float64),
                   "x": features,
                   "w": weights,
                   "out": np.zeros((graph.num_nodes, hidden_out)),
                   "hidden": hidden, "hidden_out": hidden_out},
        global_size=graph.num_nodes * hidden_out, category="ml", scale=scale,
        description=(f"GCN layer, {graph.num_nodes} nodes, hidden {hidden} -> {hidden_out}"),
        reference=reference,
        parameters={"nodes": graph.num_nodes, "edges": graph.num_edges,
                    "hidden": hidden, "hidden_out": hidden_out},
    )


# ----------------------------------------------------------------------
# conv2d (ResNet20 layer)
# ----------------------------------------------------------------------
_CONV_SIZES = {
    # (height, width, in_channels, out_channels)
    "paper": (32, 32, 16, 16),
    "bench": (10, 10, 4, 4),
    "smoke": (4, 4, 2, 2),
}


def _conv2d_reference(feature_map: np.ndarray, weights: np.ndarray) -> np.ndarray:
    in_channels, height, width = feature_map.shape
    out_channels = weights.shape[0]
    padded = np.zeros((in_channels, height + 2, width + 2))
    padded[:, 1:height + 1, 1:width + 1] = feature_map
    out = np.zeros((out_channels, height, width))
    for oc in range(out_channels):
        for ic in range(in_channels):
            for ky in range(3):
                for kx in range(3):
                    out[oc] += weights[oc, ic, ky, kx] * padded[ic, ky:ky + height, kx:kx + width]
    return np.maximum(out, 0.0)


def _conv2d(scale: Scale, seed: int) -> Problem:
    height, width, in_channels, out_channels = _CONV_SIZES[scale]
    feature_map = random_feature_map(in_channels, height, width, seed=seed)
    weights = random_conv_weights(out_channels, in_channels, 3, seed=seed + 1)
    return Problem(
        name="conv2d", kernel=CONV2D,
        arguments={"input": feature_map, "weights": weights,
                   "output": np.zeros((out_channels, height, width)),
                   "width": width, "height": height, "in_channels": in_channels},
        global_size=out_channels * height * width, category="ml", scale=scale,
        description=(f"3x3 conv + ReLU, {in_channels}->{out_channels} channels, "
                     f"{height}x{width} map (ResNet20 layer)"),
        reference=lambda: {"output": _conv2d_reference(feature_map, weights).ravel()},
        parameters={"height": height, "width": width,
                    "in_channels": in_channels, "out_channels": out_channels},
    )


# ----------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[..., Problem]] = {
    "vecadd": _vecadd,
    "relu": _relu,
    "saxpy": _saxpy,
    "sgemm": _sgemm,
    "knn": _knn,
    "gaussian": _gaussian,
    "gcn_aggregate": _gcn_aggregate,
    "gcn_layer": _gcn_layer,
    "conv2d": _conv2d,
}

#: Problems whose flattened size can be overridden via ``make_problem(size=...)``
#: (the one-dimensional workloads; structured problems derive their geometry
#: from the scale alone).
SIZEABLE_PROBLEMS = ("vecadd", "relu", "saxpy", "knn")


def _elementwise_gws(scale: Scale, size: Optional[int]) -> int:
    return size if size is not None else _ELEMENTWISE_SIZES[scale]


# Size-only views of the factories, sharing their geometry tables: planning a
# grid (or re-keying a sink on resume/report) needs only ``global_size``, so
# no input arrays -- and no graphs -- are ever constructed here.
_GLOBAL_SIZES: Dict[str, Callable[[Scale, int, Optional[int]], int]] = {
    "vecadd": lambda scale, seed, size: _elementwise_gws(scale, size),
    "relu": lambda scale, seed, size: _elementwise_gws(scale, size),
    "saxpy": lambda scale, seed, size: _elementwise_gws(scale, size),
    "sgemm": lambda scale, seed, size: (_SGEMM_SIZES[scale][0]
                                        * _SGEMM_SIZES[scale][1]),
    "knn": lambda scale, seed, size: size if size is not None else _KNN_SIZES[scale],
    "gaussian": lambda scale, seed, size: (_GAUSSIAN_SIZES[scale][0]
                                           * _GAUSSIAN_SIZES[scale][1]),
    "gcn_aggregate": lambda scale, seed, size: (_GCN_NODES[scale]
                                                * _GCN_SIZES[scale][1]),
    "gcn_layer": lambda scale, seed, size: (_GCN_NODES[scale]
                                            * _GCN_SIZES[scale][2]),
    "conv2d": lambda scale, seed, size: (_CONV_SIZES[scale][3]
                                         * _CONV_SIZES[scale][0]
                                         * _CONV_SIZES[scale][1]),
}


def problem_global_size(name: str, scale: Scale = "bench", seed: int = 0,
                        size: Optional[int] = None) -> int:
    """The flattened global work size of ``make_problem(...)``, data-free.

    Same validation and same result as building the problem (equality is
    pinned by ``tests/test_workloads.py``), without allocating any input
    arrays -- what grid planning and sink re-keying use.
    """
    _require_size_arguments(name, size)
    _require_scale(scale)
    return _GLOBAL_SIZES[name](scale, seed, size)


def _require_size_arguments(name: str, size: Optional[int]) -> None:
    """The shared (name, size-override) validation of the problem factories."""
    if name not in _FACTORIES:
        raise UnknownProblemError(
            f"unknown problem {name!r}; available: {', '.join(available_problems())}"
        )
    if size is None:
        return
    if name not in SIZEABLE_PROBLEMS:
        raise UnknownProblemError(
            f"problem {name!r} does not support a size override; "
            f"sizeable problems: {', '.join(SIZEABLE_PROBLEMS)}"
        )
    if size < 1:
        raise UnknownProblemError(f"size override must be positive, got {size}")


def available_problems() -> List[str]:
    """Names of every problem factory."""
    return sorted(_FACTORIES)


def make_problem(name: str, scale: Scale = "bench", seed: int = 0,
                 size: Optional[int] = None) -> Problem:
    """Instantiate problem ``name`` at ``scale`` with deterministic data.

    ``size`` overrides the scale's flattened global work size for the
    one-dimensional workloads (:data:`SIZEABLE_PROBLEMS`); structured problems
    (matrices, images, graphs) reject it.
    """
    _require_size_arguments(name, size)
    _require_scale(scale)
    factory = _FACTORIES[name]
    if size is None:
        return factory(scale, seed)
    return factory(scale, seed, size=size)
