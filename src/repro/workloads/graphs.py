"""Synthetic graphs in CSR form.

The paper's GCN workloads run on the Cora citation graph (2 708 nodes,
10 556 directed edges, average out-degree just under 4).  Cora itself is not
bundled here, so :func:`cora_like_graph` generates a seeded random graph with
the same node count and degree distribution shape; only the sparsity pattern
matters for the mapping experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Shape parameters of the Cora citation graph.
CORA_NODES = 2708
CORA_EDGES = 10556


@dataclass(frozen=True)
class CsrGraph:
    """A directed graph in compressed-sparse-row form."""

    row_ptr: np.ndarray    # int array of length num_nodes + 1
    col_idx: np.ndarray    # int array of length num_edges

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.row_ptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self.col_idx)

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        return int(self.row_ptr[node + 1] - self.row_ptr[node])

    def neighbours(self, node: int) -> np.ndarray:
        """Destination nodes of ``node``'s outgoing edges."""
        return self.col_idx[int(self.row_ptr[node]):int(self.row_ptr[node + 1])]

    @property
    def average_degree(self) -> float:
        """Mean out-degree."""
        return self.num_edges / self.num_nodes if self.num_nodes else 0.0


def synthetic_graph(num_nodes: int, num_edges: int, seed: int = 0,
                    skew: float = 1.2) -> CsrGraph:
    """Generate a random directed graph with a mildly skewed degree distribution.

    ``skew`` > 1 concentrates edges on low-index nodes (citation graphs are
    skewed); ``skew`` = 1 gives a uniform distribution.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if num_edges < 0:
        raise ValueError(f"num_edges cannot be negative, got {num_edges}")
    rng = np.random.default_rng(seed)
    # Draw edge sources from a power-ish distribution, destinations uniformly.
    raw = rng.random(num_edges) ** skew
    sources = np.minimum((raw * num_nodes).astype(np.int64), num_nodes - 1)
    destinations = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    order = np.argsort(sources, kind="stable")
    sources = sources[order]
    destinations = destinations[order]
    counts = np.bincount(sources, minlength=num_nodes)
    row_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    return CsrGraph(row_ptr=row_ptr, col_idx=destinations)


def cora_like_graph(seed: int = 0, scale: float = 1.0) -> CsrGraph:
    """A synthetic graph with (optionally scaled) Cora-like shape."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    nodes = max(4, int(round(CORA_NODES * scale)))
    edges = max(4, int(round(CORA_EDGES * scale)))
    return synthetic_graph(nodes, edges, seed=seed)
