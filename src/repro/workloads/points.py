"""Synthetic point clouds for the kNN workload.

The paper's kNN workload processes 42 764 latitude/longitude records (the
Rodinia ``nn`` input).  :func:`random_points` produces the same structure from
a seed: two coordinate arrays in plausible lat/long ranges.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def random_points(count: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(latitudes, longitudes)`` for ``count`` synthetic records."""
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    latitudes = rng.uniform(-90.0, 90.0, size=count).astype(np.float64)
    longitudes = rng.uniform(-180.0, 180.0, size=count).astype(np.float64)
    return latitudes, longitudes
