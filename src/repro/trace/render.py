"""ASCII rendering of traces.

Reproduces the structure of the paper's Figure 1 in a terminal: one row per
(core, warp), time on the horizontal axis, and one character per time bucket
showing which semantic section the warp was issuing from (``.`` for idle).
A section waveform view shows, per section, the cycles during which its
instructions were in flight.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.analysis import TraceAnalysis, analyze_trace, section_wavefronts
from repro.trace.events import TraceEvent

#: Preferred one-character codes for the wrapper's standard sections.
SECTION_CODES = {
    "init": "I",
    "index": "x",
    "load": "L",
    "compute": "c",
    "mac": "m",
    "body": "b",
    "loop": "o",
    "store": "S",
    "exit": "E",
}
IDLE_CHAR = "."


def _section_code(section: str, assigned: Dict[str, str]) -> str:
    if section in assigned:
        return assigned[section]
    code = SECTION_CODES.get(section)
    if code is None or code in assigned.values():
        for candidate in section[:1].upper() + "ABCDEFGHJKMNPQRTUVWYZ0123456789":
            if candidate not in assigned.values():
                code = candidate
                break
        else:  # pragma: no cover - more sections than printable codes
            code = "?"
    assigned[section] = code
    return code


def render_issue_timeline(events: Sequence[TraceEvent], width: int = 100,
                          title: Optional[str] = None) -> str:
    """Render one row per (core, warp): which section issued in each time bucket.

    ``width`` is the number of character columns the trace is compressed into.
    """
    if not events:
        return "(empty trace)"
    first = min(e.cycle for e in events)
    last = max(e.cycle for e in events)
    span = max(1, last - first + 1)
    bucket = max(1, -(-span // width))
    columns = -(-span // bucket)

    assigned: Dict[str, str] = {}
    rows: Dict[Tuple[int, int], List[str]] = defaultdict(lambda: [IDLE_CHAR] * columns)
    for event in events:
        column = (event.cycle - first) // bucket
        rows[(event.core, event.warp)][column] = _section_code(event.section, assigned)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"cycles {first}..{last}  ({bucket} cycle(s) per column)")
    legend = "  ".join(f"{code}={section}" for section, code in sorted(assigned.items()))
    lines.append(f"legend: {legend}  {IDLE_CHAR}=idle")
    for (core, warp) in sorted(rows):
        lines.append(f"core {core} warp {warp} | {''.join(rows[(core, warp)])}")
    return "\n".join(lines)


def render_section_waveform(events: Sequence[TraceEvent], width: int = 100) -> str:
    """Render one row per section showing when its instructions were issuing."""
    if not events:
        return "(empty trace)"
    waves = section_wavefronts(events)
    first = min(e.cycle for e in events)
    last = max(e.cycle for e in events)
    span = max(1, last - first + 1)
    bucket = max(1, -(-span // width))
    columns = -(-span // bucket)

    active: Dict[str, List[bool]] = {s: [False] * columns for s in waves}
    for event in events:
        active[event.section][(event.cycle - first) // bucket] = True

    lines = [f"section wavefronts, cycles {first}..{last}"]
    name_width = max(len(s) for s in waves)
    ordered = sorted(waves.values(), key=lambda w: w.first_cycle)
    for wave in ordered:
        bar = "".join("#" if flag else IDLE_CHAR for flag in active[wave.section])
        lines.append(f"{wave.section:<{name_width}} | {bar} ({wave.issues} issues)")
    return "\n".join(lines)


def render_summary(events: Sequence[TraceEvent], counters=None,
                   threads_per_warp: Optional[int] = None,
                   dropped: int = 0) -> str:
    """Short textual summary (issue utilisation, SIMT efficiency, boundedness).

    ``dropped`` is the tracer's post-cap drop count; a non-zero value makes
    the summary say so explicitly, so a truncated trace can never read as a
    complete one.
    """
    analysis: TraceAnalysis = analyze_trace(events, counters, threads_per_warp)
    if analysis.total_events == 0:
        return "(empty trace)"
    lines = [
        f"events            : {analysis.total_events}",
        f"cycle span        : {analysis.first_cycle}..{analysis.last_cycle} "
        f"({analysis.span} cycles)",
        f"cores / warps     : {analysis.cores_seen} / {analysis.warps_seen}",
        f"issue utilisation : {analysis.issue_utilization:.1%}",
        f"SIMT efficiency   : {analysis.simt_efficiency:.1%}",
        f"boundedness       : {analysis.boundedness}",
        f"kernel calls      : {len(analysis.call_boundaries)}",
    ]
    if dropped:
        lines.append(f"TRUNCATED         : {dropped} event(s) dropped at the "
                     f"cap -- timeline and summary cover a partial trace")
    return "\n".join(lines)
