"""Trace collection.

A :class:`Tracer` is attached to a :class:`~repro.runtime.device.Device` (or
directly to a :class:`~repro.sim.gpu.Gpu`); the core model calls
:meth:`Tracer.record` on every instruction issue.  Tracing a long launch can
produce millions of events, so the tracer supports an event cap and per-core /
per-section filters; when the cap is hit, collection simply stops (the counters
keep counting, only the detailed log is truncated).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.isa.opcodes import Opcode
from repro.trace.events import TraceEvent


def _warn_truncated(max_events: int) -> None:
    # Local import: the tracer sits below the telemetry layer and must stay
    # importable without it (docs builds, minimal embeddings).
    from repro.telemetry.log import get_logger
    get_logger("trace").warning(
        "trace truncated: event cap reached, further events are dropped "
        "(the counters keep counting)", max_events=max_events)


class Tracer:
    """Collects instruction-issue events during simulation."""

    def __init__(self, max_events: Optional[int] = None,
                 cores: Optional[Iterable[int]] = None,
                 sections: Optional[Iterable[str]] = None):
        self.max_events = max_events
        self._core_filter: Optional[Set[int]] = set(cores) if cores is not None else None
        self._section_filter: Optional[Set[str]] = set(sections) if sections is not None else None
        self._events: List[TraceEvent] = []
        self.dropped = 0
        self.call_index = 0
        #: Added to every recorded cycle; the launcher advances it between the
        #: sequential kernel calls of a launch so a multi-call trace lives on a
        #: single global timeline (the way Figure 1 shows the lws=1 case).
        self.cycle_offset = 0

    # ------------------------------------------------------------------
    def record(self, cycle: int, core: int, warp: int, pc: int, opcode: Opcode,
               mask: int, section: str) -> None:
        """Record one instruction issue (called by the core model)."""
        if self._core_filter is not None and core not in self._core_filter:
            return
        if self._section_filter is not None and section not in self._section_filter:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            if self.dropped == 0:
                # One warning per truncation episode, not one per event: a
                # capped trace can drop millions.
                _warn_truncated(self.max_events)
            self.dropped += 1
            return
        self._events.append(TraceEvent(
            cycle=cycle + self.cycle_offset, core=core, warp=warp, pc=pc, opcode=opcode,
            mask=mask, section=section, call_index=self.call_index,
        ))

    def begin_call(self, call_index: int, cycle_offset: int) -> None:
        """Mark the start of kernel call ``call_index`` at global time ``cycle_offset``."""
        self.call_index = call_index
        self.cycle_offset = cycle_offset

    # ------------------------------------------------------------------
    @property
    def events(self) -> Sequence[TraceEvent]:
        """The collected events in issue order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop all collected events and reset the call index."""
        self._events.clear()
        self.dropped = 0
        self.call_index = 0
        self.cycle_offset = 0

    def events_for(self, core: Optional[int] = None, warp: Optional[int] = None,
                   section: Optional[str] = None) -> List[TraceEvent]:
        """Filtered view of the collected events."""
        result = []
        for event in self._events:
            if core is not None and event.core != core:
                continue
            if warp is not None and event.warp != warp:
                continue
            if section is not None and event.section != section:
                continue
            result.append(event)
        return result

    @property
    def truncated(self) -> bool:
        """True when the event cap was reached and events were dropped."""
        return self.dropped > 0
