"""Execution tracing and trace analysis.

The paper's methodology is built on execution traces: every instruction issue
is recorded with its timestamp, program counter, active thread mask and warp,
then annotated with the semantic code section it belongs to (Figure 1).  This
package provides the same capability for the simulator:

* :class:`~repro.trace.tracer.Tracer` -- collects
  :class:`~repro.trace.events.TraceEvent` records during simulation.
* :mod:`~repro.trace.analysis` -- wavefront extraction, occupancy/utilisation
  metrics and the memory-vs-compute boundedness classification used to
  annotate Figure 2.
* :mod:`~repro.trace.render` -- ASCII timelines reproducing the structure of
  the paper's Figure 1 in a terminal.
* :mod:`~repro.trace.export` -- JSON/CSV round-tripping of traces.
"""

from repro.trace.analysis import (
    TraceAnalysis,
    analyze_trace,
    classify_boundedness,
    occupancy_timeline,
    section_wavefronts,
)
from repro.trace.events import TraceEvent
from repro.trace.export import events_from_json, events_to_csv, events_to_json
from repro.trace.render import render_issue_timeline, render_section_waveform, render_summary
from repro.trace.tracer import Tracer

__all__ = [
    "TraceAnalysis",
    "TraceEvent",
    "Tracer",
    "analyze_trace",
    "classify_boundedness",
    "events_from_json",
    "events_to_csv",
    "events_to_json",
    "occupancy_timeline",
    "render_issue_timeline",
    "render_section_waveform",
    "render_summary",
    "section_wavefronts",
]
