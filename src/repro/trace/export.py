"""Trace serialisation (JSON and CSV).

Traces can be dumped for offline inspection or archived next to experiment
results; the JSON form round-trips exactly, the CSV form is meant for
spreadsheet / pandas consumption.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.trace.events import TraceEvent

PathLike = Union[str, Path]


def events_to_json(events: Sequence[TraceEvent], path: Optional[PathLike] = None) -> str:
    """Serialise events to a JSON string; optionally write it to ``path``."""
    payload = json.dumps([event.as_dict() for event in events], indent=None)
    if path is not None:
        Path(path).write_text(payload)
    return payload


def events_from_json(source: Union[str, PathLike]) -> List[TraceEvent]:
    """Load events from a JSON string or a file path produced by :func:`events_to_json`."""
    if isinstance(source, Path):
        text = source.read_text()
    elif isinstance(source, str) and source.lstrip().startswith("["):
        text = source                      # inline JSON payload
    else:
        text = Path(source).read_text()
    return [TraceEvent.from_dict(item) for item in json.loads(text)]


def events_to_csv(events: Sequence[TraceEvent], path: Optional[PathLike] = None) -> str:
    """Serialise events to CSV (header + one row per event)."""
    output = io.StringIO()
    writer = csv.writer(output)
    writer.writerow(["cycle", "core", "warp", "pc", "opcode", "mask", "section", "call_index"])
    for event in events:
        record = event.as_dict()
        writer.writerow([record["cycle"], record["core"], record["warp"], record["pc"],
                         record["opcode"], record["mask"], record["section"],
                         record["call_index"]])
    text = output.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
