"""Trace event records.

One :class:`TraceEvent` is produced per instruction issue: the cycle, the
core and warp that issued, the program counter, the opcode, the active thread
mask and the semantic section tag -- the same fields the paper's Figure 1
plots (PC, active thread mask, warp issue timestamps, tagged wavefronts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.isa.opcodes import Opcode
from repro.sim.warp import popcount


@dataclass(frozen=True)
class TraceEvent:
    """A single instruction-issue record."""

    cycle: int
    core: int
    warp: int
    pc: int
    opcode: Opcode
    mask: int
    section: str
    call_index: int = 0

    @property
    def active_lanes(self) -> int:
        """Number of lanes that executed this instruction."""
        return popcount(self.mask)

    def as_dict(self) -> Dict[str, object]:
        """Serialise to plain types (for JSON/CSV export)."""
        return {
            "cycle": self.cycle,
            "core": self.core,
            "warp": self.warp,
            "pc": self.pc,
            "opcode": self.opcode.value,
            "mask": self.mask,
            "section": self.section,
            "call_index": self.call_index,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        """Inverse of :meth:`as_dict`."""
        return cls(
            cycle=int(data["cycle"]),
            core=int(data["core"]),
            warp=int(data["warp"]),
            pc=int(data["pc"]),
            opcode=Opcode(data["opcode"]),
            mask=int(data["mask"]),
            section=str(data["section"]),
            call_index=int(data.get("call_index", 0)),
        )
