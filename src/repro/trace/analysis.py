"""Trace analysis: the measurement side of the paper's methodology.

Given a collected trace (and optionally the performance counters of the same
run), this module extracts the observations the paper bases its mapping
technique on:

* *section wavefronts* -- for every semantic code section, when its
  instructions issue (first/last cycle, issue count); this is the tagged
  wavefront view of Figure 1;
* *occupancy timeline* -- how many warps issue per time bucket, exposing the
  sequential kernel-call gaps of the ``lws=1`` regime and the idle machine of
  the ``lws>gws/hp`` regime;
* *issue utilisation* and *SIMT efficiency* -- how much of the machine's issue
  bandwidth and lane width the launch actually used;
* *boundedness classification* -- the compute-bound / memory-bound annotation
  used in the paper's Figure 2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.isa.opcodes import OpClass
from repro.sim.stats import PerfCounters
from repro.trace.events import TraceEvent

#: Memory-instruction share of the issue stream above which a run is called memory bound.
MEMORY_BOUND_SHARE = 0.30


@dataclass(frozen=True)
class SectionWavefront:
    """Issue statistics of one semantic code section."""

    section: str
    first_cycle: int
    last_cycle: int
    issues: int
    lane_issues: int

    @property
    def span(self) -> int:
        """Cycles between the first and last issue of the section (inclusive)."""
        return self.last_cycle - self.first_cycle + 1


@dataclass
class TraceAnalysis:
    """Summary of one trace."""

    total_events: int
    first_cycle: int
    last_cycle: int
    warps_seen: int
    cores_seen: int
    issue_utilization: float            # issues / (span * cores)
    simt_efficiency: float              # mean active lanes / max lanes seen
    section_wavefronts: Dict[str, SectionWavefront] = field(default_factory=dict)
    per_warp_issues: Dict[Tuple[int, int], int] = field(default_factory=dict)
    call_boundaries: List[int] = field(default_factory=list)
    boundedness: str = "unknown"

    @property
    def span(self) -> int:
        """Cycles covered by the trace."""
        return self.last_cycle - self.first_cycle + 1 if self.total_events else 0

    def section_order(self) -> List[str]:
        """Sections ordered by their first issue cycle."""
        return [s.section for s in sorted(self.section_wavefronts.values(),
                                          key=lambda w: w.first_cycle)]


# ----------------------------------------------------------------------
def section_wavefronts(events: Sequence[TraceEvent]) -> Dict[str, SectionWavefront]:
    """Aggregate per-section first/last issue cycles and issue counts."""
    first: Dict[str, int] = {}
    last: Dict[str, int] = {}
    issues: Dict[str, int] = defaultdict(int)
    lanes: Dict[str, int] = defaultdict(int)
    for event in events:
        section = event.section
        if section not in first or event.cycle < first[section]:
            first[section] = event.cycle
        if section not in last or event.cycle > last[section]:
            last[section] = event.cycle
        issues[section] += 1
        lanes[section] += event.active_lanes
    return {
        section: SectionWavefront(
            section=section,
            first_cycle=first[section],
            last_cycle=last[section],
            issues=issues[section],
            lane_issues=lanes[section],
        )
        for section in issues
    }


def occupancy_timeline(events: Sequence[TraceEvent], bucket: int = 1) -> List[Tuple[int, int]]:
    """Number of distinct (core, warp) pairs issuing per time bucket.

    Returns ``(bucket_start_cycle, active_warps)`` pairs sorted by time.
    """
    if bucket < 1:
        raise ValueError("bucket must be >= 1")
    buckets: Dict[int, set] = defaultdict(set)
    for event in events:
        buckets[(event.cycle // bucket) * bucket].add((event.core, event.warp))
    return [(start, len(warps)) for start, warps in sorted(buckets.items())]


def issue_gaps(events: Sequence[TraceEvent], min_gap: int = 8) -> List[Tuple[int, int]]:
    """Idle periods (no issue anywhere) of at least ``min_gap`` cycles.

    With the naive ``lws=1`` mapping these gaps correspond to the kernel-call
    boundaries visible in Figure 1.
    """
    cycles = sorted({event.cycle for event in events})
    gaps: List[Tuple[int, int]] = []
    for previous, current in zip(cycles, cycles[1:]):
        if current - previous >= min_gap:
            gaps.append((previous, current))
    return gaps


def classify_boundedness(counters: Optional[PerfCounters] = None,
                         events: Optional[Sequence[TraceEvent]] = None,
                         threshold: float = MEMORY_BOUND_SHARE) -> str:
    """Classify a run as memory- or compute-bound.

    Counters are preferred (they cover the whole run even when the trace was
    truncated): the run is memory bound when the latency-weighted time spent
    serving cache-line requests exceeds the latency-weighted time spent on
    arithmetic.  A trace alone also works by looking at the opcode mix (memory
    share of the issue stream against ``threshold``).
    """
    if counters is not None and counters.warp_instructions:
        # L1 hits are pipelined and essentially free; what makes a kernel
        # memory bound is the traffic that leaves the core (L2 and DRAM) and
        # any time spent queueing for DRAM bandwidth.
        memory_weight = (1 * (counters.l1_hits or 0)
                         + 20 * (counters.l2_hits or 0)
                         + 120 * (counters.dram_lines or 0)
                         + (counters.dram_queue_cycles or 0))
        compute_weight = (counters.alu_instructions
                          + 4 * counters.fpu_instructions
                          + 16 * counters.sfu_instructions)
        if memory_weight or compute_weight:
            return "memory-bound" if memory_weight >= compute_weight else "compute-bound"
        share = counters.memory_instructions / counters.warp_instructions
        return "memory-bound" if share >= threshold else "compute-bound"
    if events:
        memory = sum(1 for e in events if e.opcode.value in ("load", "store"))
        share = memory / len(events)
        return "memory-bound" if share >= threshold else "compute-bound"
    return "unknown"


def analyze_trace(events: Sequence[TraceEvent], counters: Optional[PerfCounters] = None,
                  threads_per_warp: Optional[int] = None) -> TraceAnalysis:
    """Produce a :class:`TraceAnalysis` from collected events."""
    if not events:
        return TraceAnalysis(total_events=0, first_cycle=0, last_cycle=0, warps_seen=0,
                             cores_seen=0, issue_utilization=0.0, simt_efficiency=0.0)
    first = min(e.cycle for e in events)
    last = max(e.cycle for e in events)
    warps = {(e.core, e.warp) for e in events}
    cores = {e.core for e in events}
    per_warp: Dict[Tuple[int, int], int] = defaultdict(int)
    lanes_total = 0
    max_lanes = threads_per_warp or 1
    for event in events:
        per_warp[(event.core, event.warp)] += 1
        lanes_total += event.active_lanes
        if threads_per_warp is None and event.active_lanes > max_lanes:
            max_lanes = event.active_lanes
    span = last - first + 1
    utilization = len(events) / (span * len(cores)) if span else 0.0
    efficiency = (lanes_total / len(events)) / max_lanes if max_lanes else 0.0

    call_starts = sorted({min(e.cycle for e in events if e.call_index == call)
                          for call in {e.call_index for e in events}})
    return TraceAnalysis(
        total_events=len(events),
        first_cycle=first,
        last_cycle=last,
        warps_seen=len(warps),
        cores_seen=len(cores),
        issue_utilization=min(1.0, utilization),
        simt_efficiency=min(1.0, efficiency),
        section_wavefronts=section_wavefronts(events),
        per_warp_issues=dict(per_warp),
        call_boundaries=call_starts,
        boundedness=classify_boundedness(counters, events),
    )
