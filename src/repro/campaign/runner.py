"""Campaign execution: cache-first, then fan out across worker processes.

The :class:`CampaignRunner` takes a :class:`~repro.campaign.spec.Campaign`
and produces one outcome per submitted spec, **in submission order**, no
matter how many workers raced to produce them:

1. every spec is first resolved against the :class:`ResultCache` (traced jobs
   are always executed -- the cache stores summaries, not event logs);
2. the remaining specs are deduplicated by content hash, so a point submitted
   five times in one campaign is simulated once;
3. distinct points are executed -- in-process for ``workers <= 1``, in a
   ``ProcessPoolExecutor`` otherwise -- and every fresh result is written back
   to the cache;
4. a job that raises becomes a :class:`~repro.campaign.result.JobFailure`
   slotted at its submission index; the rest of the campaign completes.

A progress callback, when given, fires once per submitted job with
``(index, total, spec, outcome)`` -- immediately for cache hits, on
completion for simulated jobs.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign.cache import ResultCache
from repro.campaign.result import JobFailure, JobResult
from repro.campaign.spec import Campaign, JobSpec
from repro.campaign.worker import execute_job
from repro.telemetry.recorder import RECORDER

#: ``progress(index, total, spec, outcome)``; outcome is a result or failure.
ProgressCallback = Callable[[int, int, JobSpec, Union[JobResult, JobFailure]], None]

Outcome = Union[JobResult, JobFailure]


class CampaignError(RuntimeError):
    """Raised by :meth:`CampaignOutcome.raise_on_failure` when jobs failed."""


@dataclass(frozen=True)
class RunStats:
    """Accounting for one :meth:`CampaignRunner.run` call."""

    total: int                 # specs submitted
    cache_hits: int            # served straight from the persistent cache
    executed: int              # simulator invocations actually performed
    deduplicated: int          # jobs answered by another job of the same run
    failed: int
    elapsed_seconds: float

    def render(self) -> str:
        """One-line summary for logs and the CLI."""
        return (f"{self.total} job(s): {self.cache_hits} cached, "
                f"{self.executed} simulated, {self.deduplicated} deduplicated, "
                f"{self.failed} failed in {self.elapsed_seconds:.2f}s")


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced, in submission order."""

    name: str
    specs: List[JobSpec]
    results: List[Outcome]
    stats: RunStats

    @property
    def ok(self) -> bool:
        return self.stats.failed == 0

    def failures(self) -> List[JobFailure]:
        """The failed jobs (empty when everything succeeded)."""
        return [r for r in self.results if isinstance(r, JobFailure)]

    def raise_on_failure(self) -> "CampaignOutcome":
        """Raise :class:`CampaignError` (with tracebacks) if any job failed."""
        failures = self.failures()
        if failures:
            detail = "\n\n".join(f.summary() + "\n" + f.traceback for f in failures)
            raise CampaignError(
                f"campaign {self.name!r}: {len(failures)} of "
                f"{self.stats.total} job(s) failed\n{detail}"
            )
        return self

    def job_results(self) -> List[JobResult]:
        """The results, asserting the campaign fully succeeded first."""
        self.raise_on_failure()
        return list(self.results)


class CampaignRunner:
    """Runs campaigns with a result cache and an optional process pool.

    Parameters
    ----------
    workers:
        Maximum concurrent simulations.  ``1`` (the default) executes
        in-process -- fully deterministic, no pickling round trip.
    cache:
        A :class:`ResultCache`, or ``None`` to disable persistence (every
        point is simulated fresh; in-run deduplication still applies).
    mp_context:
        Multiprocessing context for the pool; defaults to ``fork`` where
        available (workers inherit the imported simulator for free).
    """

    def __init__(self, workers: int = 1, cache: Optional[ResultCache] = None,
                 mp_context=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self._mp_context = mp_context

    def without_cache(self) -> "CampaignRunner":
        """This runner, minus the result cache (same workers and context).

        Used by callers whose measurement is wall-clock time -- a cache-served
        point would time nothing -- e.g. the ``engine-compare`` scenario.
        """
        if self.cache is None:
            return self
        return CampaignRunner(workers=self.workers, cache=None,
                              mp_context=self._mp_context)

    # ------------------------------------------------------------------
    def run(self, campaign: Union[Campaign, Iterable[JobSpec]],
            progress: Optional[ProgressCallback] = None) -> CampaignOutcome:
        """Execute every spec; see the module docstring for the pipeline."""
        if not isinstance(campaign, Campaign):
            campaign = Campaign(name="adhoc", specs=list(campaign))
        with RECORDER.span("campaign.run", campaign=campaign.name,
                           jobs=len(campaign.specs)):
            outcome = self._execute(campaign, progress)
        if RECORDER.enabled:
            RECORDER.count("campaign.runs")
            RECORDER.count("campaign.jobs.deduplicated",
                           outcome.stats.deduplicated)
            RECORDER.gauge("campaign.last_run.jobs", outcome.stats.total)
            RECORDER.gauge("campaign.last_run.elapsed_seconds",
                           outcome.stats.elapsed_seconds)
        return outcome

    def _execute(self, campaign: Campaign,
                 progress: Optional[ProgressCallback]) -> CampaignOutcome:
        specs = list(campaign.specs)
        total = len(specs)
        started = time.perf_counter()
        results: List[Optional[Outcome]] = [None] * total

        # 1. cache resolution, in submission order.  Cache hits record a
        # synthetic job.cache_hit span: the lookup IS the job's execution.
        cache_hits = 0
        pending: List[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None and not spec.collect_trace:
                lookup_wall = time.time()
                lookup_perf = time.perf_counter() if RECORDER.enabled else 0.0
                cached = self.cache.get(spec)
                if cached is not None and RECORDER.enabled:
                    RECORDER.record_span(
                        "job.cache_hit", lookup_wall,
                        time.perf_counter() - lookup_perf,
                        job_hash=spec.content_hash(), problem=spec.problem)
            else:
                cached = None
            if cached is not None:
                results[index] = cached
                cache_hits += 1
                if progress is not None:
                    progress(index, total, spec, cached)
            else:
                pending.append(index)

        # 2. dedup: one execution per distinct point.  Traced jobs dedup
        # separately from untraced ones (their outcomes carry event logs).
        groups: Dict[Tuple[str, bool, int], List[int]] = {}
        for index in pending:
            spec = specs[index]
            key = (spec.content_hash(), spec.collect_trace, spec.max_trace_events)
            groups.setdefault(key, []).append(index)
        group_indices = list(groups.values())

        # 3. execute each group's first spec, fan the outcome back out.  Note
        # that traced jobs DO write their summaries back (the journal stores
        # to_dict(), which drops the event log) -- they only skip cache reads.
        # A worker's telemetry payload is merged into this process's recorder
        # here and stripped from the outcome, so cached/fanned-out results are
        # byte-identical to a telemetry-off run.
        def finish(indices: Sequence[int], outcome: Outcome,
                   submitted_wall: Optional[float] = None) -> None:
            payload = getattr(outcome, "telemetry", None)
            if payload is not None:
                started_wall = payload.pop("started_wall", None)
                if RECORDER.enabled:
                    if submitted_wall is not None and started_wall is not None:
                        RECORDER.observe("campaign.queue_wait_seconds",
                                         max(started_wall - submitted_wall, 0.0))
                    RECORDER.merge(payload)
                outcome = replace(outcome, telemetry=None)
            if isinstance(outcome, JobResult) and self.cache is not None:
                self.cache.put(specs[indices[0]], outcome)
            for index in indices:
                results[index] = outcome
                if progress is not None:
                    progress(index, total, specs[index], outcome)

        if self.workers <= 1 or len(group_indices) <= 1:
            for indices in group_indices:
                submitted_wall = time.time()
                finish(indices, execute_job(specs[indices[0]]), submitted_wall)
        else:
            self._run_pool(specs, group_indices, finish)

        final: List[Outcome] = [r for r in results if r is not None]
        assert len(final) == total, "every submitted job must produce an outcome"
        executed = len(group_indices)
        failed = sum(1 for r in final if isinstance(r, JobFailure))
        stats = RunStats(
            total=total,
            cache_hits=cache_hits,
            executed=executed,
            deduplicated=len(pending) - executed,
            failed=failed,
            elapsed_seconds=time.perf_counter() - started,
        )
        return CampaignOutcome(name=campaign.name, specs=specs,
                               results=final, stats=stats)

    # ------------------------------------------------------------------
    def _run_pool(self, specs: Sequence[JobSpec],
                  group_indices: Sequence[Sequence[int]],
                  finish: Callable[..., None]) -> None:
        """Fan distinct points out across a process pool."""
        context = self._mp_context
        if context is None:
            # fork is only safe where it is the platform default (Linux);
            # macOS lists it but forking past Objective-C/numpy state aborts.
            prefer_fork = (sys.platform.startswith("linux")
                           and "fork" in multiprocessing.get_all_start_methods())
            context = multiprocessing.get_context("fork" if prefer_fork else None)
        max_workers = min(self.workers, len(group_indices))
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=context) as pool:
            submitted = time.time()
            futures = {
                pool.submit(execute_job, specs[indices[0]]): indices
                for indices in group_indices
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    indices = futures[future]
                    try:
                        outcome: Outcome = future.result()
                    except Exception as error:  # pool/pickling breakage
                        outcome = JobFailure(
                            job_hash=specs[indices[0]].content_hash(),
                            label=specs[indices[0]].display_name(),
                            error=f"{type(error).__name__}: {error}",
                            traceback="".join(traceback_module.format_exception(
                                type(error), error, error.__traceback__)),
                        )
                    finish(indices, outcome, submitted)
