"""Campaign execution: cache-first, then fan out through an executor.

The :class:`CampaignRunner` takes a :class:`~repro.campaign.spec.Campaign`
and produces one outcome per submitted spec, **in submission order**, no
matter how many workers raced to produce them:

1. every spec is first resolved against the :class:`ResultCache` -- one
   batched :meth:`~repro.campaign.cache.ResultCache.get_many` pass for the
   whole campaign (traced jobs are always executed -- the cache stores
   summaries, not event logs);
2. the remaining specs are deduplicated by content hash, so a point submitted
   five times in one campaign is simulated once;
3. distinct points are handed to the runner's
   :class:`~repro.campaign.executor.Executor` -- in-process or a persistent
   process pool (:class:`~repro.campaign.executor.LocalExecutor`, the
   default) or a multi-host fleet
   (:class:`~repro.campaign.dist.coordinator.DistributedExecutor`) -- and
   every fresh result is written back to the cache;
4. a job that raises becomes a :class:`~repro.campaign.result.JobFailure`
   slotted at its submission index; the rest of the campaign completes.

A progress callback, when given, fires once per submitted job with
``(index, total, spec, outcome)`` -- immediately for cache hits, on
completion for simulated jobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign.cache import ResultCache
from repro.campaign.executor import Executor, ExecutorTask, LocalExecutor
from repro.campaign.result import JobFailure, JobResult
from repro.campaign.spec import Campaign, JobSpec
from repro.sim.engine import resolve_engine
from repro.telemetry.recorder import RECORDER

#: ``progress(index, total, spec, outcome)``; outcome is a result or failure.
ProgressCallback = Callable[[int, int, JobSpec, Union[JobResult, JobFailure]], None]

Outcome = Union[JobResult, JobFailure]


class CampaignError(RuntimeError):
    """Raised by :meth:`CampaignOutcome.raise_on_failure` when jobs failed."""


@dataclass(frozen=True)
class RunStats:
    """Accounting for one :meth:`CampaignRunner.run` call."""

    total: int                 # specs submitted
    cache_hits: int            # served straight from the persistent cache
    executed: int              # simulator invocations actually performed
    deduplicated: int          # jobs answered by another job of the same run
    failed: int
    elapsed_seconds: float

    def render(self) -> str:
        """One-line summary for logs and the CLI."""
        return (f"{self.total} job(s): {self.cache_hits} cached, "
                f"{self.executed} simulated, {self.deduplicated} deduplicated, "
                f"{self.failed} failed in {self.elapsed_seconds:.2f}s")


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced, in submission order."""

    name: str
    specs: List[JobSpec]
    results: List[Outcome]
    stats: RunStats

    @property
    def ok(self) -> bool:
        return self.stats.failed == 0

    def failures(self) -> List[JobFailure]:
        """The failed jobs (empty when everything succeeded)."""
        return [r for r in self.results if isinstance(r, JobFailure)]

    def raise_on_failure(self) -> "CampaignOutcome":
        """Raise :class:`CampaignError` (with tracebacks) if any job failed."""
        failures = self.failures()
        if failures:
            detail = "\n\n".join(f.summary() + "\n" + f.traceback for f in failures)
            raise CampaignError(
                f"campaign {self.name!r}: {len(failures)} of "
                f"{self.stats.total} job(s) failed\n{detail}"
            )
        return self

    def job_results(self) -> List[JobResult]:
        """The results, asserting the campaign fully succeeded first."""
        self.raise_on_failure()
        return list(self.results)


class CampaignRunner:
    """Runs campaigns with a result cache and a pluggable executor.

    Parameters
    ----------
    workers:
        Maximum concurrent simulations for the default
        :class:`~repro.campaign.executor.LocalExecutor`.  ``1`` (the
        default) executes in-process -- fully deterministic, no pickling
        round trip.  Ignored when ``executor`` is given.
    cache:
        A :class:`ResultCache`, or ``None`` to disable persistence (every
        point is simulated fresh; in-run deduplication still applies).
    mp_context:
        Multiprocessing context for the local pool; defaults to ``fork``
        where available.  Ignored when ``executor`` is given.
    executor:
        An explicit :class:`~repro.campaign.executor.Executor` -- e.g. a
        :class:`~repro.campaign.dist.coordinator.DistributedExecutor`
        fanning out to a fleet.  The caller keeps ownership (the runner's
        :meth:`close` only shuts down executors it created itself).
    """

    def __init__(self, workers: int = 1, cache: Optional[ResultCache] = None,
                 mp_context=None, executor: Optional[Executor] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self._mp_context = mp_context
        self._owns_executor = executor is None
        self.executor: Executor = (
            executor if executor is not None
            else LocalExecutor(workers=workers, mp_context=mp_context))

    def without_cache(self) -> "CampaignRunner":
        """This runner, minus the result cache (same executor, shared).

        Used by callers whose measurement is wall-clock time -- a cache-served
        point would time nothing -- e.g. the ``engine-compare`` scenario.
        The clone borrows this runner's executor (so a warm pool or a
        connected fleet is reused); closing the clone never shuts it down.
        """
        if self.cache is None:
            return self
        clone = CampaignRunner(workers=self.workers, cache=None,
                               mp_context=self._mp_context,
                               executor=self.executor)
        return clone

    def close(self) -> None:
        """Shut down the executor, if this runner created it.  Idempotent."""
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, campaign: Union[Campaign, Iterable[JobSpec]],
            progress: Optional[ProgressCallback] = None,
            engine: Optional[str] = None) -> CampaignOutcome:
        """Execute every spec; see the module docstring for the pipeline.

        ``engine`` pins every job of this call to one simulation engine
        (validated here, applied around each job wherever it runs); ``None``
        keeps the environment default.  Passing it per call -- rather than
        mutating ``$REPRO_ENGINE`` around the call -- is what lets one warm
        executor serve a planner's mixed-engine shards back to back.
        """
        if not isinstance(campaign, Campaign):
            campaign = Campaign(name="adhoc", specs=list(campaign))
        if engine is not None:
            engine = resolve_engine(engine)
        with RECORDER.span("campaign.run", campaign=campaign.name,
                           jobs=len(campaign.specs)):
            outcome = self._execute(campaign, progress, engine)
        if RECORDER.enabled:
            RECORDER.count("campaign.runs")
            RECORDER.count("campaign.jobs.deduplicated",
                           outcome.stats.deduplicated)
            RECORDER.gauge("campaign.last_run.jobs", outcome.stats.total)
            RECORDER.gauge("campaign.last_run.elapsed_seconds",
                           outcome.stats.elapsed_seconds)
        return outcome

    def _execute(self, campaign: Campaign,
                 progress: Optional[ProgressCallback],
                 engine: Optional[str]) -> CampaignOutcome:
        specs = list(campaign.specs)
        total = len(specs)
        started = time.perf_counter()
        results: List[Optional[Outcome]] = [None] * total

        # 1. cache resolution, in submission order: one batched get_many pass
        # for every untraced spec.  Each hit still records a synthetic
        # job.cache_hit span (the lookup IS the job's execution), timed as
        # its share of the batch.
        cache_hits = 0
        pending: List[int] = []
        lookups = [index for index, spec in enumerate(specs)
                   if self.cache is not None and not spec.collect_trace]
        resolved: Dict[int, JobResult] = {}
        if lookups:
            lookup_wall = time.time()
            lookup_perf = time.perf_counter() if RECORDER.enabled else 0.0
            found = self.cache.get_many([specs[index] for index in lookups])
            share = ((time.perf_counter() - lookup_perf) / len(lookups)
                     if RECORDER.enabled else 0.0)
            for index, cached in zip(lookups, found):
                if cached is None:
                    continue
                resolved[index] = cached
                if RECORDER.enabled:
                    RECORDER.record_span(
                        "job.cache_hit", lookup_wall, share,
                        job_hash=specs[index].content_hash(),
                        problem=specs[index].problem)
        for index, spec in enumerate(specs):
            cached = resolved.get(index)
            if cached is not None:
                results[index] = cached
                cache_hits += 1
                if progress is not None:
                    progress(index, total, spec, cached)
            else:
                pending.append(index)

        # 2. dedup: one execution per distinct point.  Traced jobs dedup
        # separately from untraced ones (their outcomes carry event logs).
        groups: Dict[Tuple[str, bool, int], List[int]] = {}
        for index in pending:
            spec = specs[index]
            key = (spec.content_hash(), spec.collect_trace, spec.max_trace_events)
            groups.setdefault(key, []).append(index)
        group_indices = list(groups.values())

        # 3. execute each group's first spec through the executor, fan the
        # outcome back out.  Note that traced jobs DO write their summaries
        # back (the journal stores to_dict(), which drops the event log) --
        # they only skip cache reads.  A worker's telemetry payload is merged
        # into this process's recorder here and stripped from the outcome, so
        # cached/fanned-out results are byte-identical to a telemetry-off run.
        def finish(indices: Sequence[int], outcome: Outcome,
                   submitted_wall: Optional[float] = None) -> None:
            payload = getattr(outcome, "telemetry", None)
            if payload is not None:
                started_wall = payload.pop("started_wall", None)
                if RECORDER.enabled:
                    if submitted_wall is not None and started_wall is not None:
                        RECORDER.observe("campaign.queue_wait_seconds",
                                         max(started_wall - submitted_wall, 0.0))
                    RECORDER.merge(payload)
                outcome = replace(outcome, telemetry=None)
            if isinstance(outcome, JobResult) and self.cache is not None:
                self.cache.put(specs[indices[0]], outcome)
            for index in indices:
                results[index] = outcome
                if progress is not None:
                    progress(index, total, specs[index], outcome)

        if group_indices:
            tasks = [ExecutorTask(index=slot, spec=specs[indices[0]],
                                  engine=engine)
                     for slot, indices in enumerate(group_indices)]
            for completion in self.executor.execute(tasks):
                finish(group_indices[completion.index], completion.outcome,
                       completion.submitted_wall)

        final: List[Outcome] = [r for r in results if r is not None]
        assert len(final) == total, "every submitted job must produce an outcome"
        executed = len(group_indices)
        failed = sum(1 for r in final if isinstance(r, JobFailure))
        stats = RunStats(
            total=total,
            cache_hits=cache_hits,
            executed=executed,
            deduplicated=len(pending) - executed,
            failed=failed,
            elapsed_seconds=time.perf_counter() - started,
        )
        return CampaignOutcome(name=campaign.name, specs=specs,
                               results=final, stats=stats)
