"""Job execution: the function that runs inside worker processes.

:func:`execute_job` is a module-level function (so it pickles by reference
under every multiprocessing start method); it rebuilds the problem's input
data deterministically from the spec's ``(problem, scale, seed, size)``
tuple, simulates the launch, and returns either a
:class:`~repro.campaign.result.JobResult` or a
:class:`~repro.campaign.result.JobFailure` -- it never raises, so one bad job
cannot take the pool (or the campaign) down with it.

When telemetry is enabled (``$REPRO_TELEMETRY`` is inherited by worker
processes), every execution records into a *fresh* recorder scope pushed
just for that job -- under ``fork`` the child inherits the parent's
buffers, and the scope push is what keeps them untouched.  The popped
payload (the ``job.execute`` span tree plus any engine metrics) travels
back to the parent attached to the result, where
:class:`~repro.campaign.runner.CampaignRunner` merges it; nothing is
shared between processes.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import replace
from typing import Optional, Union

from repro.campaign.result import JobFailure, JobResult
from repro.campaign.spec import JobSpec
from repro.sim.engine import ENGINE_ENV
from repro.telemetry.recorder import RECORDER


def run_spec(spec: JobSpec) -> JobResult:
    """Simulate one spec and summarise the launch (raises on error)."""
    # Imports are local so a worker process only pays for what it runs.
    from repro.runtime.device import Device
    from repro.runtime.launcher import launch_kernel
    from repro.trace.tracer import Tracer
    from repro.workloads.problems import make_problem

    problem = make_problem(spec.problem, scale=spec.scale, seed=spec.seed,
                           size=spec.size)
    tracer = Tracer(max_events=spec.max_trace_events) if spec.collect_trace else None
    device = Device(spec.config, tracer=tracer)
    started = time.perf_counter()
    launch = launch_kernel(
        device, problem.kernel, problem.arguments, problem.global_size,
        local_size=spec.local_size,
        call_simulation_limit=spec.call_simulation_limit,
        max_cycles_per_call=spec.max_cycles_per_call,
    )
    elapsed = time.perf_counter() - started
    return JobResult(
        job_hash=spec.content_hash(),
        problem=problem.name,
        category=problem.category,
        config_name=spec.config.name,
        hardware_parallelism=spec.config.hardware_parallelism,
        global_size=launch.global_size,
        local_size=launch.local_size,
        num_workgroups=launch.num_workgroups,
        num_calls=launch.num_calls,
        cycles=launch.cycles,
        sim_cycles=launch.sim_cycles,
        overhead_cycles=launch.overhead_cycles,
        extrapolated=launch.extrapolated,
        lane_utilization=(launch.dispatch.average_lane_utilization
                          if launch.dispatch else 0.0),
        counters=launch.counters.as_dict(),
        elapsed_seconds=elapsed,
        events=tuple(tracer.events) if tracer is not None else None,
    )


def execute_job(spec: JobSpec,
                engine: Optional[str] = None) -> Union[JobResult, JobFailure]:
    """Run one spec, converting any exception into a :class:`JobFailure`.

    ``engine`` pins ``$REPRO_ENGINE`` around this one execution (restored
    afterwards), so a single long-lived worker -- a persistent process-pool
    worker or a fleet worker -- can serve mixed-engine shards without each
    shard needing its own pool.  An unknown engine name becomes a
    :class:`JobFailure` like any other job error (the Device constructor
    validates it); ``None`` keeps whatever the environment already says.
    """
    if engine is not None:
        previous = os.environ.get(ENGINE_ENV)
        os.environ[ENGINE_ENV] = engine
        try:
            return execute_job(spec)
        finally:
            if previous is None:
                os.environ.pop(ENGINE_ENV, None)
            else:
                os.environ[ENGINE_ENV] = previous
    if not RECORDER.enabled:
        try:
            return run_spec(spec)
        except Exception as error:  # noqa: BLE001 - isolation is the contract
            return JobFailure(
                job_hash=spec.content_hash(),
                label=spec.display_name(),
                error=f"{type(error).__name__}: {error}",
                traceback=traceback.format_exc(),
            )
    started_wall = time.time()
    RECORDER.push_scope()
    try:
        with RECORDER.span("job.execute", job_hash=spec.content_hash(),
                           problem=spec.problem, config=spec.config.name):
            outcome: Union[JobResult, JobFailure] = run_spec(spec)
        RECORDER.count("campaign.jobs.executed")
    except Exception as error:  # noqa: BLE001 - isolation is the contract
        RECORDER.count("campaign.jobs.failed")
        outcome = JobFailure(
            job_hash=spec.content_hash(),
            label=spec.display_name(),
            error=f"{type(error).__name__}: {error}",
            traceback=traceback.format_exc(),
        )
    payload = RECORDER.pop_scope()
    payload["started_wall"] = started_wall
    return replace(outcome, telemetry=payload)
