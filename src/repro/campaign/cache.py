"""Persistent, content-addressed result cache.

Results are stored as one JSON object per line in ``results.jsonl`` under the
cache directory -- append-only, human greppable, and robust to partial writes
(corrupt lines are skipped on load).  Every record carries the simulator
version and cache schema version it was produced under; records from a
different simulator release are ignored at load time, so bumping
``repro.__version__`` invalidates the whole cache without touching the file.

The cache directory resolves, in order, to:

1. an explicit ``path`` argument,
2. the ``REPRO_CACHE_DIR`` environment variable,
3. ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Union

from repro.campaign.result import JobResult
from repro.campaign.spec import CACHE_SCHEMA_VERSION, JobSpec, simulator_version

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: File name of the JSON-lines journal inside the cache directory.
CACHE_FILE_NAME = "results.jsonl"


def default_cache_dir() -> Path:
    """The cache directory honouring ``REPRO_CACHE_DIR`` and XDG conventions."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting plus on-disk footprint of one cache instance."""

    path: str
    entries: int
    stale_entries: int          # records written under another simulator version
    hits: int
    misses: int
    size_bytes: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def render(self) -> str:
        """Multi-line human readable summary (used by ``repro campaign status``)."""
        return "\n".join([
            f"cache directory : {self.path}",
            f"usable entries  : {self.entries} (+{self.stale_entries} stale)",
            f"journal size    : {self.size_bytes} bytes",
            f"session hits    : {self.hits}",
            f"session misses  : {self.misses}",
            f"session hit rate: {self.hit_rate:.0%}",
        ])


class ResultCache:
    """Content-addressed store of :class:`JobResult` summaries."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.directory = Path(path).expanduser() if path is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._stale = 0
        self._index: Dict[str, JobResult] = {}
        self._load()

    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.directory / CACHE_FILE_NAME

    def _load(self) -> None:
        """Read the journal, indexing records usable under this simulator."""
        self._index.clear()
        self._stale = 0
        if not self.journal_path.exists():
            return
        current = simulator_version()
        for line in self.journal_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if (record.get("schema") != CACHE_SCHEMA_VERSION
                        or record.get("simulator") != current):
                    self._stale += 1
                    continue
                self._index[record["hash"]] = JobResult.from_dict(record["result"])
            except (KeyError, TypeError, ValueError):
                self._stale += 1   # corrupt line: count it, keep loading

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, spec: JobSpec) -> bool:
        return spec.content_hash() in self._index

    def get(self, spec: JobSpec) -> Optional[JobResult]:
        """Look up a spec; counts a hit or a miss and marks served results."""
        result = self._index.get(spec.content_hash())
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result.as_cached()

    def put(self, spec: JobSpec, result: JobResult) -> None:
        """Persist one result (idempotent per content hash)."""
        job_hash = spec.content_hash()
        if job_hash in self._index:
            return
        # Index the summary only: traced results can carry 10^5 events, and
        # neither the journal nor get() ever serves them.
        self._index[job_hash] = (replace(result, events=None)
                                 if result.events is not None else result)
        record = {
            "hash": job_hash,
            "schema": CACHE_SCHEMA_VERSION,
            "simulator": simulator_version(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.journal_path.open("a") as journal:
            journal.write(json.dumps(record, sort_keys=True) + "\n")

    def clear(self) -> int:
        """Delete the journal; returns how many usable entries were dropped."""
        dropped = len(self._index)
        if self.journal_path.exists():
            self.journal_path.unlink()
        self._index.clear()
        self._stale = 0
        return dropped

    def stats(self) -> CacheStats:
        """Current accounting snapshot."""
        size = self.journal_path.stat().st_size if self.journal_path.exists() else 0
        return CacheStats(
            path=str(self.directory),
            entries=len(self._index),
            stale_entries=self._stale,
            hits=self.hits,
            misses=self.misses,
            size_bytes=size,
        )
