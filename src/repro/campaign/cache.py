"""Persistent, content-addressed result cache.

Results are stored as one JSON object per line in ``results.jsonl`` under the
cache directory -- append-only between loads, human greppable, and robust to
partial writes (corrupt lines are skipped on load).  When a load finds the
same hash on several lines (concurrent campaigns can both simulate a point
before either sees the other's write), the journal is compacted in place --
rewritten atomically keeping the last record per hash -- so duplicates never
accumulate.  Every record carries the simulator
version and cache schema version it was produced under; records from a
different simulator release are ignored at load time, so bumping
``repro.__version__`` invalidates the whole cache without touching the file.

The cache directory resolves, in order, to:

1. an explicit ``path`` argument,
2. the ``REPRO_CACHE_DIR`` environment variable,
3. ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.journal import (
    is_current_record,
    iter_journal_entries,
    iter_journal_lines,
    terminate_partial_tail,
)
from repro.campaign.result import JobResult
from repro.campaign.spec import CACHE_SCHEMA_VERSION, JobSpec, simulator_version
from repro.telemetry.recorder import RECORDER

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: File name of the JSON-lines journal inside the cache directory.
CACHE_FILE_NAME = "results.jsonl"


def default_cache_dir() -> Path:
    """The cache directory honouring ``REPRO_CACHE_DIR`` and XDG conventions."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting plus on-disk footprint of one cache instance."""

    path: str
    entries: int
    stale_entries: int          # records written under another simulator version
    hits: int
    misses: int
    size_bytes: int
    journal_lines: int = 0      # lines in the journal after the last load
    compacted_lines: int = 0    # superseded/corrupt lines removed on load

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def bytes_per_entry(self) -> float:
        """Average on-disk footprint of one usable entry."""
        return self.size_bytes / self.entries if self.entries else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (``repro campaign status --json``)."""
        return {
            "path": self.path,
            "entries": self.entries,
            "stale_entries": self.stale_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "size_bytes": self.size_bytes,
            "journal_lines": self.journal_lines,
            "compacted_lines": self.compacted_lines,
        }

    def render(self) -> str:
        """Multi-line human readable summary (used by ``repro campaign status``)."""
        compacted = (f" (compacted {self.compacted_lines} superseded/corrupt "
                     f"line(s) on load)" if self.compacted_lines else "")
        return "\n".join([
            f"cache directory : {self.path}",
            f"usable entries  : {self.entries} (+{self.stale_entries} stale)",
            f"journal lines   : {self.journal_lines}{compacted}",
            f"journal size    : {self.size_bytes} bytes "
            f"({self.size_bytes / 1024:.1f} KiB, "
            f"{self.bytes_per_entry:.0f} B/entry)",
            f"session hits    : {self.hits}",
            f"session misses  : {self.misses}",
            f"session hit rate: {self.hit_rate:.0%}",
        ])


class ResultCache:
    """Content-addressed store of :class:`JobResult` summaries."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.directory = Path(path).expanduser() if path is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._stale = 0
        self._compacted = 0
        self._journal_lines = 0
        self._tail_checked = False
        self._index: Dict[str, JobResult] = {}
        # One instance may be shared between the runner's thread and a
        # CacheServer's connection handlers; all index/journal mutation
        # happens under this lock.
        self._lock = threading.RLock()
        self._load()

    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.directory / CACHE_FILE_NAME

    def _load(self) -> None:
        """Read the journal, indexing records usable under this simulator.

        The journal is append-only, so the same hash can appear several times
        (e.g. two concurrent campaigns simulating the same fresh point); the
        last record per hash wins, and when superseded duplicates are found
        the journal is compacted -- rewritten atomically with one line per
        hash -- instead of growing forever.  Corrupt lines never survive a
        compaction; they are only preserved (and counted as stale) when the
        journal needs no rewrite.
        """
        self._index.clear()
        self._stale = 0
        self._compacted = 0
        self._journal_lines = 0
        if not self.journal_path.exists():
            return
        # Keyed by (hash, simulator, schema): in normal operation the hash
        # already embeds the version (two releases never collide on a hash),
        # but a tampered or hand-merged journal must not let a stale record
        # shadow -- and compaction then delete -- a usable one.
        kept: Dict[tuple, Dict] = {}
        superseded = 0
        corrupt = 0
        snapshot_size = self.journal_path.stat().st_size
        for record in iter_journal_lines(self.journal_path):
            if record is None or "hash" not in record:
                corrupt += 1       # half-written line: count it, keep loading
                continue
            key = (record["hash"], record.get("simulator"), record.get("schema"))
            if key in kept:
                superseded += 1
                del kept[key]                 # re-insert so the last write wins
            kept[key] = record
        for (job_hash, _, _), record in kept.items():
            try:
                if not is_current_record(record):
                    self._stale += 1
                    continue
                self._index[job_hash] = JobResult.from_dict(record["result"])
            except (KeyError, TypeError, ValueError):
                self._stale += 1
        if superseded and self._compact(kept.values(), snapshot_size):
            self._compacted = superseded + corrupt
            self._journal_lines = len(kept)
        else:
            # No rewrite happened (nothing superseded, or compaction aborted):
            # every physical line is still in the journal.
            self._stale += corrupt
            self._journal_lines = len(kept) + corrupt + superseded

    def _compact(self, records, snapshot_size: int) -> bool:
        """Atomically rewrite the journal with one line per (hash, version).

        Compaction is strictly best-effort: the cache is shared between
        processes and the journal is otherwise append-only, so rewriting from
        a snapshot could drop a record another campaign appended after we
        read the file.  The window is narrowed by re-checking the journal
        size immediately before the atomic replace -- if it grew, skip and
        let the next load retry -- and *any* filesystem error (read-only
        cache directory, journal cleared concurrently) aborts the rewrite
        instead of failing the load.  A record lost to the residual race
        costs one re-simulation, never a wrong result.
        """
        tmp_path = self.journal_path.with_name(
            f"{CACHE_FILE_NAME}.{os.getpid()}.tmp")
        try:
            with tmp_path.open("w") as tmp:
                for record in records:
                    tmp.write(json.dumps(record, sort_keys=True) + "\n")
            if self.journal_path.stat().st_size != snapshot_size:
                tmp_path.unlink()             # someone appended meanwhile
                return False
            os.replace(tmp_path, self.journal_path)
            return True
        except OSError:
            tmp_path.unlink(missing_ok=True)
            return False

    # ------------------------------------------------------------------
    def iter_entries(self, start: int = 0):
        """Stream ``(record, end_offset)`` per usable journal line, in order.

        Yields every parseable record carrying a ``hash`` -- including ones
        written under other simulator versions -- one line at a time, so a
        million-entry journal is never materialised in memory.  Corrupt
        lines are skipped.  Last-wins semantics are the consumer's job: the
        same hash may appear on several lines and the later one supersedes
        (exactly how :meth:`_load` and the warehouse ingest treat the file).
        ``end_offset`` is the byte offset after each line, usable as
        ``start`` of a later incremental pass.
        """
        for record, offset in iter_journal_entries(self.journal_path, start):
            if record is not None and "hash" in record:
                yield record, offset

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, spec: JobSpec) -> bool:
        return spec.content_hash() in self._index

    def get(self, spec: JobSpec) -> Optional[JobResult]:
        """Look up a spec; counts a hit or a miss and marks served results."""
        with self._lock:
            result = self._index.get(spec.content_hash())
            if result is None:
                self.misses += 1
                RECORDER.count("campaign.cache.misses")
                return None
            self.hits += 1
            RECORDER.count("campaign.cache.hits")
            return result.as_cached()

    def get_many(self, specs: Sequence[JobSpec]) -> List[Optional[JobResult]]:
        """Resolve many specs in one indexed pass: one slot per spec, in order.

        Semantically ``[self.get(s) for s in specs]`` -- same hit/miss
        accounting, same ``as_cached()`` marking -- but the whole batch is one
        lock acquisition and **one** ``cache.get_many`` telemetry span instead
        of a per-spec span, which is what a 10^4-point campaign's cache-first
        resolve wants.  The distributed cache server serves its batched
        ``get_many`` requests through this exact method.
        """
        started_wall = time.time()
        started = time.perf_counter()
        with self._lock:
            found: List[Optional[JobResult]] = []
            hits = 0
            for spec in specs:
                result = self._index.get(spec.content_hash())
                if result is None:
                    found.append(None)
                else:
                    found.append(result.as_cached())
                    hits += 1
            misses = len(found) - hits
            self.hits += hits
            self.misses += misses
        if RECORDER.enabled:
            RECORDER.record_span("cache.get_many", started_wall,
                                 time.perf_counter() - started,
                                 jobs=len(found), hits=hits, misses=misses)
            if hits:
                RECORDER.count("campaign.cache.hits", hits)
            if misses:
                RECORDER.count("campaign.cache.misses", misses)
        return found

    def put(self, spec: JobSpec, result: JobResult) -> None:
        """Persist one result (idempotent per content hash)."""
        with self._lock:
            job_hash = spec.content_hash()
            if job_hash in self._index:
                return
            # Index the summary only: traced results can carry 10^5 events, and
            # neither the journal nor get() ever serves them.
            self._index[job_hash] = (replace(result, events=None)
                                     if result.events is not None else result)
            record = {
                "hash": job_hash,
                "schema": CACHE_SCHEMA_VERSION,
                "simulator": simulator_version(),
                "spec": spec.to_dict(),
                "result": result.to_dict(),
            }
            self.directory.mkdir(parents=True, exist_ok=True)
            self._ensure_trailing_newline()
            with self.journal_path.open("a") as journal:
                journal.write(json.dumps(record, sort_keys=True) + "\n")
            self._journal_lines += 1

    def _ensure_trailing_newline(self) -> None:
        """Terminate a half-written tail line so an append cannot merge into it.

        The partial line already counted as a (corrupt) journal line in
        ``_load``; terminating it does not add one.  Checked once per
        instance.
        """
        if self._tail_checked:
            return
        self._tail_checked = True
        terminate_partial_tail(self.journal_path)

    def clear(self) -> int:
        """Delete the journal; returns how many usable entries were dropped.

        Also sweeps any ``results.jsonl.<pid>.tmp`` left by a concurrent
        load's compaction (its ``os.replace`` loses the race with the unlink
        and the temp file would otherwise sit in the directory forever) and
        re-arms the tail check: the next append writes to a brand-new file,
        and if another process re-creates the journal with a partial tail in
        between, it must be repaired again, not trusted.
        """
        with self._lock:
            dropped = len(self._index)
            if self.journal_path.exists():
                self.journal_path.unlink()
            for stale_tmp in self.directory.glob(f"{CACHE_FILE_NAME}.*.tmp"):
                try:
                    stale_tmp.unlink()
                except OSError:
                    pass                  # already gone, or not ours to remove
            self._index.clear()
            self._stale = 0
            self._compacted = 0
            self._journal_lines = 0
            self._tail_checked = False
            return dropped

    def stats(self) -> CacheStats:
        """Current accounting snapshot."""
        size = self.journal_path.stat().st_size if self.journal_path.exists() else 0
        return CacheStats(
            path=str(self.directory),
            entries=len(self._index),
            stale_entries=self._stale,
            hits=self.hits,
            misses=self.misses,
            size_bytes=size,
            journal_lines=self._journal_lines,
            compacted_lines=self._compacted,
        )
