"""Job results and failures.

A :class:`JobResult` is the cache-sized summary of one simulated launch: the
resolved launch geometry, the cycle breakdown, the full performance-counter
dictionary and the wall-clock cost of producing it.  It is what the
:class:`~repro.campaign.cache.ResultCache` persists and what experiments
consume; the heavyweight launch artefacts (buffers, outputs, dispatch plans)
never cross the campaign boundary.

Traced jobs additionally carry their in-memory event tuple -- events are
process-picklable but deliberately not persisted (a single traced launch can
produce hundreds of thousands of them).  The same treatment applies to the
``telemetry`` payload a worker's recorder scope produces: it rides the
result back across the process boundary so the parent can merge it, and is
stripped before anything touches the cache.

A :class:`JobFailure` captures one job's exception without aborting the
campaign: the error string and formatted traceback travel back to the parent
so a single bad job cannot kill a thousand-point sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.sim.stats import PerfCounters


@dataclass(frozen=True)
class JobResult:
    """Summary of one successfully simulated job."""

    job_hash: str
    problem: str
    category: str
    config_name: str
    hardware_parallelism: int
    global_size: int
    local_size: int
    num_workgroups: int
    num_calls: int
    cycles: int
    sim_cycles: int
    overhead_cycles: int
    extrapolated: bool
    lane_utilization: float
    counters: Dict[str, float]
    elapsed_seconds: float = 0.0
    from_cache: bool = False
    events: Optional[Tuple] = None        # trace events; in-memory only
    telemetry: Optional[Dict] = None      # worker recorder payload; in-memory only

    @property
    def ok(self) -> bool:
        return True

    def perf_counters(self) -> PerfCounters:
        """The counters as a :class:`PerfCounters` instance."""
        return PerfCounters.from_dict(self.counters)

    def as_cached(self) -> "JobResult":
        """A copy marked as served from the cache (without events/telemetry)."""
        return replace(self, from_cache=True, events=None, telemetry=None)

    def summary(self) -> str:
        """One-line rendering for progress output."""
        origin = "cache" if self.from_cache else f"{self.elapsed_seconds:.2f}s"
        return (f"{self.problem} on {self.config_name} lws={self.local_size}: "
                f"{self.cycles} cycles [{origin}]")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain JSON types (events are dropped, never stored)."""
        return {
            "job_hash": self.job_hash,
            "problem": self.problem,
            "category": self.category,
            "config_name": self.config_name,
            "hardware_parallelism": self.hardware_parallelism,
            "global_size": self.global_size,
            "local_size": self.local_size,
            "num_workgroups": self.num_workgroups,
            "num_calls": self.num_calls,
            "cycles": self.cycles,
            "sim_cycles": self.sim_cycles,
            "overhead_cycles": self.overhead_cycles,
            "extrapolated": self.extrapolated,
            "lane_utilization": self.lane_utilization,
            "counters": dict(self.counters),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            job_hash=str(data["job_hash"]),
            problem=str(data["problem"]),
            category=str(data["category"]),
            config_name=str(data["config_name"]),
            hardware_parallelism=int(data["hardware_parallelism"]),
            global_size=int(data["global_size"]),
            local_size=int(data["local_size"]),
            num_workgroups=int(data["num_workgroups"]),
            num_calls=int(data["num_calls"]),
            cycles=int(data["cycles"]),
            sim_cycles=int(data["sim_cycles"]),
            overhead_cycles=int(data["overhead_cycles"]),
            extrapolated=bool(data["extrapolated"]),
            lane_utilization=float(data["lane_utilization"]),
            counters={str(k): v for k, v in dict(data["counters"]).items()},
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )


@dataclass(frozen=True)
class JobFailure:
    """One job's captured exception (the campaign itself keeps running).

    ``host`` and ``last_heartbeat`` locate failures that were *inflicted* on a
    job rather than raised by it: a broken process pool or a distributed
    worker that died mid-chunk reports where the job was running and when
    that worker was last known alive (Unix wall-clock seconds).  Jobs that
    fail by raising leave both fields empty.
    """

    job_hash: str
    label: str
    error: str
    traceback: str = ""
    host: str = ""                        # where the job was running, if known
    last_heartbeat: Optional[float] = None  # worker's last sign of life (wall)
    telemetry: Optional[Dict] = None      # worker recorder payload; in-memory only

    @property
    def ok(self) -> bool:
        return False

    def summary(self) -> str:
        """One-line rendering for progress output and reports."""
        where = f" [on {self.host}]" if self.host else ""
        return f"{self.label}: FAILED ({self.error}){where}"

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain JSON types (telemetry travels separately)."""
        return {
            "job_hash": self.job_hash,
            "label": self.label,
            "error": self.error,
            "traceback": self.traceback,
            "host": self.host,
            "last_heartbeat": self.last_heartbeat,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobFailure":
        """Inverse of :meth:`to_dict`."""
        heartbeat = data.get("last_heartbeat")
        return cls(
            job_hash=str(data["job_hash"]),
            label=str(data["label"]),
            error=str(data["error"]),
            traceback=str(data.get("traceback", "")),
            host=str(data.get("host", "")),
            last_heartbeat=None if heartbeat is None else float(heartbeat),
        )
