"""The fleet's shared memoization namespace: ``ResultCache`` over TCP.

:class:`CacheServer` wraps one existing
:class:`~repro.campaign.cache.ResultCache` -- typically the coordinator's,
so the *same* instance (and the same on-disk journal) serves the local
runner and every remote worker -- and answers three request types over the
length-prefixed JSON transport:

- ``get``      {spec}        -> one result or null
- ``get_many`` {specs: [..]} -> one slot per spec, in order (served through
  :meth:`ResultCache.get_many`, the same batched path the runner uses)
- ``put``      {spec, result} -> write-through to the cache's journal

Workers batch a whole chunk into one ``get_many`` round trip, and every
fresh result they ``put`` lands in the coordinator's journal immediately --
so a point computed on any host is cache-served to every other host, and a
re-run of the grid needs no simulation no matter who computed what.

The server is thread-per-connection (the cache itself is lock-protected);
hit/miss traffic lands in ``dist.cache_server.hits`` / ``.misses`` /
``.puts`` counters.
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional, Sequence, Tuple, Union

from repro.campaign.cache import ResultCache
from repro.campaign.dist.protocol import Connection, ProtocolError, connect
from repro.campaign.result import JobResult
from repro.campaign.spec import JobSpec
from repro.telemetry.recorder import RECORDER


class CacheServer:
    """Serve one :class:`ResultCache` to a fleet.  Starts on construction."""

    def __init__(self, cache: ResultCache, host: str = "127.0.0.1",
                 port: int = 0):
        self.cache = cache
        self._listener = socket.create_server((host, port))
        self._closing = False
        self._connections: List[Connection] = []
        self._lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cache-server-accept", daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is listening on."""
        return self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return                    # listener closed by close()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = Connection(sock)
            with self._lock:
                self._connections.append(connection)
            threading.Thread(target=self._serve, args=(connection,),
                             name="cache-server-conn", daemon=True).start()

    def _serve(self, connection: Connection) -> None:
        try:
            while True:
                try:
                    message = connection.recv()
                except (ProtocolError, OSError):
                    return
                if message is None:
                    return
                try:
                    reply = self._answer(message)
                except Exception as error:  # noqa: BLE001 - a bad request
                    # must not kill the connection (let alone the server)
                    reply = {"type": "error",
                             "error": f"{type(error).__name__}: {error}"}
                try:
                    connection.send(reply)
                except OSError:
                    return
        finally:
            connection.close()
            with self._lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _answer(self, message) -> dict:
        kind = message.get("type")
        if kind == "get_many":
            specs = [JobSpec.from_dict(raw) for raw in message["specs"]]
            found = self.cache.get_many(specs)
            hits = sum(1 for result in found if result is not None)
            if RECORDER.enabled:
                if hits:
                    RECORDER.count("dist.cache_server.hits", hits)
                if len(found) - hits:
                    RECORDER.count("dist.cache_server.misses", len(found) - hits)
            return {"type": "results",
                    "results": [None if result is None else result.to_dict()
                                for result in found]}
        if kind == "get":
            result = self.cache.get(JobSpec.from_dict(message["spec"]))
            if RECORDER.enabled:
                RECORDER.count("dist.cache_server.hits" if result is not None
                               else "dist.cache_server.misses")
            return {"type": "result",
                    "result": None if result is None else result.to_dict()}
        if kind == "put":
            self.cache.put(JobSpec.from_dict(message["spec"]),
                           JobResult.from_dict(message["result"]))
            if RECORDER.enabled:
                RECORDER.count("dist.cache_server.puts")
            return {"type": "ok"}
        if kind == "stats":
            return {"type": "stats", "stats": self.cache.stats().to_dict()}
        return {"type": "error", "error": f"unknown request type {kind!r}"}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting, drop every client.  Idempotent."""
        if self._closing:
            return
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        self._accept_thread.join(timeout=5.0)


class CacheClient:
    """A worker's handle on the fleet's shared cache.

    One request in flight at a time (the worker's execution loop is
    sequential); any transport error surfaces as ``OSError`` /
    :class:`ProtocolError` and the worker degrades to cache-less execution
    -- the coordinator still writes results back through the runner's own
    cache, so nothing is lost, only re-computed.
    """

    def __init__(self, address: Union[str, Tuple[str, int]],
                 timeout: Optional[float] = 30.0):
        self._connection = connect(address, timeout=timeout)

    def _request(self, message: dict) -> dict:
        self._connection.send(message)
        reply = self._connection.recv()
        if reply is None:
            raise ProtocolError("cache server closed the connection")
        if reply.get("type") == "error":
            raise ProtocolError(f"cache server error: {reply.get('error')}")
        return reply

    def get(self, spec: JobSpec) -> Optional[JobResult]:
        reply = self._request({"type": "get", "spec": spec.to_dict()})
        raw = reply.get("result")
        return None if raw is None else JobResult.from_dict(raw).as_cached()

    def get_many(self, specs: Sequence[JobSpec]) -> List[Optional[JobResult]]:
        """One slot per spec, in order -- a single round trip for the batch."""
        if not specs:
            return []
        reply = self._request({"type": "get_many",
                               "specs": [spec.to_dict() for spec in specs]})
        return [None if raw is None else JobResult.from_dict(raw).as_cached()
                for raw in reply.get("results", [])]

    def put(self, spec: JobSpec, result: JobResult) -> None:
        self._request({"type": "put", "spec": spec.to_dict(),
                       "result": result.to_dict()})

    def stats(self) -> dict:
        return self._request({"type": "stats"})["stats"]

    def close(self) -> None:
        self._connection.close()
