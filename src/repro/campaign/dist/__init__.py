"""Distributed campaign execution: coordinator, workers, shared cache.

The package generalises the campaign engine across hosts while keeping
every guarantee of the local path -- submission order, dedup, failure
isolation, and bit-identical results:

* :mod:`~repro.campaign.dist.protocol` -- length-prefixed JSON frames over
  TCP (stdlib sockets; no framework).
* :mod:`~repro.campaign.dist.coordinator` -- :class:`DistributedExecutor`,
  a work-stealing implementation of the
  :class:`~repro.campaign.executor.Executor` protocol with heartbeat
  liveness and bounded retry on worker death.
* :mod:`~repro.campaign.dist.cache_server` -- the existing
  :class:`~repro.campaign.cache.ResultCache` served over the same
  transport, so the fleet shares one memoization namespace.
* :mod:`~repro.campaign.dist.worker` -- :func:`run_worker`, the whole
  lifecycle of one ``repro worker`` process.

Quick start (three shells)::

    repro campaign run --grid figure2 --executor dist --listen 0.0.0.0:7070
    repro worker --connect coordinator-host:7070      # as many as you like
    repro worker --connect coordinator-host:7070
"""

from repro.campaign.dist.cache_server import CacheClient, CacheServer
from repro.campaign.dist.coordinator import DistributedExecutor
from repro.campaign.dist.protocol import (
    Connection,
    ProtocolError,
    connect,
    format_address,
    parse_address,
)
from repro.campaign.dist.worker import run_worker

__all__ = [
    "CacheClient",
    "CacheServer",
    "Connection",
    "DistributedExecutor",
    "ProtocolError",
    "connect",
    "format_address",
    "parse_address",
    "run_worker",
]
