"""Length-prefixed JSON framing shared by coordinator, workers and cache.

Every message on the wire is a 4-byte big-endian length followed by that
many bytes of UTF-8 JSON encoding one object.  JSON keeps the transport
debuggable (``strace`` shows you the conversation) and -- because Python's
``json`` round-trips IEEE-754 doubles exactly (``repr``-based formatting)
and every payload here is built from ``to_dict()`` forms that are already
plain JSON types -- results that cross the wire are **bit-identical** to
ones produced locally.

:class:`Connection` wraps one socket: sends are serialised under a lock (a
worker's heartbeat thread and its result sends share the socket), receives
are single-reader, and both directions count bytes into the telemetry
recorder (``dist.bytes_sent`` / ``dist.bytes_received``).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Dict, Optional, Tuple, Union

from repro.telemetry.recorder import RECORDER

#: 4-byte big-endian unsigned length prefix.
HEADER = struct.Struct(">I")

#: Hard ceiling on one message; a frame this size means a corrupt stream
#: (a 10k-point chunk is ~10 MB), and reading it would allocate blindly.
MAX_MESSAGE_BYTES = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed frame: bad length, truncated payload, or non-object JSON."""


def encode(message: Dict) -> bytes:
    """One wire frame for ``message``."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(payload)) + payload


def parse_address(text: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``"host:port"`` (or an already-split tuple) -> ``(host, port)``."""
    if isinstance(text, (tuple, list)):
        host, port = text
        return str(host), int(port)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def format_address(address: Tuple[str, int]) -> str:
    """Inverse of :func:`parse_address`."""
    return f"{address[0]}:{address[1]}"


class Connection:
    """One framed-JSON peer over a connected socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._send_lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False

    # ------------------------------------------------------------------
    def send(self, message: Dict) -> None:
        """Frame and send one message (thread-safe; raises ``OSError`` when
        the peer is gone)."""
        data = encode(message)
        with self._send_lock:
            self.sock.sendall(data)
        self.bytes_sent += len(data)
        if RECORDER.enabled:
            RECORDER.count("dist.bytes_sent", len(data))

    def recv(self) -> Optional[Dict]:
        """Read one message; ``None`` on clean EOF (peer closed between
        frames).  EOF *inside* a frame raises :class:`ProtocolError`."""
        header = self._read_exact(HEADER.size, eof_ok=True)
        if header is None:
            return None
        (length,) = HEADER.unpack(header)
        if length > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the "
                                f"{MAX_MESSAGE_BYTES}-byte ceiling")
        payload = self._read_exact(length, eof_ok=False)
        self.bytes_received += HEADER.size + length
        if RECORDER.enabled:
            RECORDER.count("dist.bytes_received", HEADER.size + length)
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"undecodable frame: {error}") from error
        if not isinstance(message, dict):
            raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
        return message

    def _read_exact(self, count: int, eof_ok: bool) -> Optional[bytes]:
        buffer = bytearray()
        while len(buffer) < count:
            chunk = self.sock.recv(count - len(buffer))
            if not chunk:
                if eof_ok and not buffer:
                    return None
                raise ProtocolError(
                    f"connection closed mid-frame ({len(buffer)}/{count} bytes)")
            buffer.extend(chunk)
        return bytes(buffer)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the socket down; unblocks a thread parked in :meth:`recv`."""
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def connect(address: Union[str, Tuple[str, int]],
            timeout: Optional[float] = 30.0) -> Connection:
    """Dial ``address`` and return a :class:`Connection`.

    ``timeout`` bounds the connect only; the established socket is blocking
    (a fleet worker parks in ``recv`` until work arrives).
    """
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return Connection(sock)
