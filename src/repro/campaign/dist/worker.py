"""The fleet worker: steal chunks, resolve against the shared cache, simulate.

:func:`run_worker` is the whole lifecycle of one ``repro worker`` process:

1. dial the coordinator, introduce itself (``hello``), learn the heartbeat
   cadence and the shared cache's address from the ``welcome``;
2. loop: send ``next`` and *block* until a chunk arrives (pull-based
   stealing -- an idle worker costs one parked socket, not a poll loop);
3. per chunk: one batched ``get_many`` against the cache server, then
   :func:`~repro.campaign.worker.execute_job` for every miss (with the
   task's engine pinned around the job), ``put`` of every fresh result, and
   one ``result`` message per task -- cache-served answers are bit-identical
   to computed ones because both sides of the wire speak ``to_dict()``;
4. exit on ``shutdown`` or when the coordinator hangs up.

A heartbeat thread shares the connection (sends are lock-serialised), so a
worker grinding through a long simulation still reads as alive.  Losing the
cache server degrades to cache-less execution; losing the coordinator ends
the worker -- its unanswered tasks are the coordinator's to re-queue.

``max_tasks`` exists for fault-injection: after executing that many jobs
the worker drops its socket *without a word*, exactly like a SIGKILL --
tests and the CI chaos job use it to prove the fail-over path.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Optional, Union

from repro.campaign.dist.cache_server import CacheClient
from repro.campaign.dist.protocol import Connection, ProtocolError, connect
from repro.campaign.result import JobFailure, JobResult
from repro.campaign.spec import JobSpec
from repro.campaign.worker import execute_job
from repro.telemetry.recorder import RECORDER


def _dial(coordinator: Union[str, tuple], timeout: float) -> Connection:
    """Connect, retrying refusals until ``timeout`` expires.

    A fleet is usually launched as one salvo -- coordinator and workers in
    the same breath -- so a worker that arrives a beat early must wait for
    the listener instead of dying on ECONNREFUSED.
    """
    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        remaining = deadline - time.monotonic()
        try:
            return connect(coordinator, timeout=max(remaining, 0.05))
        except OSError:
            if time.monotonic() + delay >= deadline:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def run_worker(coordinator: Union[str, tuple],
               max_tasks: Optional[int] = None,
               connect_timeout: float = 30.0) -> int:
    """Serve one coordinator until it shuts the fleet down.

    Returns the number of jobs this worker *simulated* (cache-served tasks
    don't count).  ``max_tasks`` is the fault-injection kill switch
    described in the module docstring.
    """
    connection = _dial(coordinator, connect_timeout)
    stop = threading.Event()
    executed = 0
    cache: Optional[CacheClient] = None
    try:
        connection.send({"type": "hello", "host": socket.gethostname(),
                         "pid": os.getpid()})
        welcome = connection.recv()
        if not welcome or welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome!r}")
        interval = float(welcome.get("heartbeat") or 1.0)
        cache_address = welcome.get("cache")
        if cache_address:
            cache = CacheClient(cache_address, timeout=connect_timeout)

        def heartbeat() -> None:
            while not stop.wait(interval):
                try:
                    connection.send({"type": "heartbeat"})
                except OSError:
                    return
        threading.Thread(target=heartbeat, name="worker-heartbeat",
                         daemon=True).start()

        while True:
            connection.send({"type": "next"})
            message = connection.recv()
            if message is None or message.get("type") == "shutdown":
                return executed
            if message.get("type") != "chunk":
                continue
            tasks = message.get("tasks", [])
            specs = [JobSpec.from_dict(entry["spec"]) for entry in tasks]
            cached = [None] * len(specs)
            if cache is not None and specs:
                try:
                    cached = cache.get_many(specs)
                except (ProtocolError, OSError):
                    cache = None          # degrade to cache-less execution
                    cached = [None] * len(specs)
            for entry, spec, hit in zip(tasks, specs, cached):
                if hit is not None:
                    if RECORDER.enabled:
                        RECORDER.count("dist.worker.cache_served")
                    connection.send({"type": "result", "task": entry["task"],
                                     "ok": True, "result": hit.to_dict()})
                    continue
                if max_tasks is not None and executed >= max_tasks:
                    # Fault injection: vanish mid-chunk, as a SIGKILL would.
                    connection.close()
                    return executed
                outcome = execute_job(spec, engine=entry.get("engine"))
                executed += 1
                reply = {"type": "result", "task": entry["task"]}
                if isinstance(outcome, JobResult):
                    if cache is not None:
                        try:
                            cache.put(spec, outcome)
                        except (ProtocolError, OSError):
                            cache = None
                    reply.update(ok=True, result=outcome.to_dict())
                else:
                    reply.update(ok=False, failure=outcome.to_dict())
                payload = getattr(outcome, "telemetry", None)
                if payload is not None:
                    reply["telemetry"] = payload
                connection.send(reply)
    except (ProtocolError, OSError):
        return executed                   # coordinator is gone; so are we
    finally:
        stop.set()
        connection.close()
        if cache is not None:
            cache.close()
