"""The fleet coordinator: a work-stealing ``Executor`` over TCP.

:class:`DistributedExecutor` implements the
:class:`~repro.campaign.executor.Executor` protocol by serving tasks to N
worker processes (any mix of hosts) over the length-prefixed JSON transport:

- **Pull-based stealing.**  Workers ask (``next``) and block; the dispatcher
  answers with a *chunk* sized by guided self-scheduling --
  ``ceil(pending / (2 * workers))`` clamped to ``[1, max_chunk]`` -- so
  early chunks are big (amortising round trips) and late chunks are small
  (a straggler can't hold the tail hostage).  A fast host simply asks more
  often; heterogeneous fleets stay saturated with no balancing logic.
- **Liveness.**  Workers heartbeat every ``heartbeat_interval`` seconds; a
  worker silent for ``heartbeat_timeout`` is declared dead and its
  connection torn down.  Death and disconnection converge on the same path:
  every task the worker had not yet answered is re-queued (at the *front*,
  so retries don't wait behind the whole grid) with its attempt count
  bumped.  A task exceeding ``max_retries`` re-queues becomes a
  :class:`~repro.campaign.result.JobFailure` carrying the dead worker's
  host and last-heartbeat time.  Results can never be duplicated: a
  completion is only emitted when a *live* connection answers a task it
  still owns, and a presumed-dead worker's socket is closed before its
  tasks are re-queued.
- **Shared memoization.**  When built with a cache, the executor starts a
  :class:`~repro.campaign.dist.cache_server.CacheServer` on the same
  ``ResultCache`` instance the local runner uses and advertises it to every
  worker at handshake, so the whole fleet shares one content-addressed
  namespace and one on-disk journal.

Multiple ``execute()`` calls may be in flight concurrently (the service
layer runs one per API job); tasks carry a submission backref and fold back
to their own caller.  Telemetry: ``dist.steal_wait_seconds``,
``dist.chunk_size``, ``dist.bytes_sent/received``, ``dist.workers_*``,
``dist.tasks_*``, ``dist.cache_server.*``.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.cache import ResultCache
from repro.campaign.dist.cache_server import CacheServer
from repro.campaign.dist.protocol import (
    Connection,
    ProtocolError,
    format_address,
)
from repro.campaign.executor import ExecutorCompletion, ExecutorTask
from repro.campaign.result import JobFailure, JobResult
from repro.telemetry.recorder import RECORDER


class _Submission:
    """One in-flight ``execute()`` call: its completion stream."""

    def __init__(self, submission_id: int):
        self.id = submission_id
        self.completions: "queue.Queue[ExecutorCompletion]" = queue.Queue()


@dataclass
class _Task:
    """One unit on the wire: a spec (pre-serialised once) plus bookkeeping."""

    id: int
    task: ExecutorTask
    spec_dict: Dict
    submission: _Submission
    attempts: int = 0            # times a worker died holding this task
    done: bool = False
    submitted_wall: float = 0.0  # last hand-off to a worker


class _Worker:
    """Coordinator-side state for one connected worker."""

    def __init__(self, worker_id: int, connection: Connection, host: str,
                 pid: int):
        self.id = worker_id
        self.connection = connection
        self.name = f"{host}/pid{pid}"
        self.last_seen = time.time()
        self.idle_since: Optional[float] = None
        self.outstanding: Dict[int, _Task] = {}
        self.alive = True


class DistributedExecutor:
    """Work-stealing multi-host executor; see the module docstring.

    Parameters
    ----------
    host, port:
        Bind address for workers; ``port=0`` picks a free port (see
        :attr:`address`).
    cache:
        The runner's :class:`ResultCache` to serve fleet-wide, or ``None``
        for no shared cache.
    heartbeat_interval / heartbeat_timeout:
        Worker heartbeat cadence and the silence that declares one dead.
    max_retries:
        How many worker deaths one task survives before failing.
    max_chunk:
        Ceiling on tasks per steal.
    worker_wait:
        How long ``execute()`` tolerates an *empty* fleet (none connected)
        before failing its queued tasks -- covers the fleet never arriving
        and every worker dying with retries exhausted pending.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache: Optional[ResultCache] = None,
                 heartbeat_interval: float = 1.0,
                 heartbeat_timeout: float = 10.0,
                 max_retries: int = 2,
                 max_chunk: int = 8,
                 worker_wait: float = 60.0):
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.max_chunk = max_chunk
        self.worker_wait = worker_wait
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: Deque[_Task] = deque()
        self._workers: Dict[int, _Worker] = {}
        self._idle: Deque[_Worker] = deque()
        self._next_task_id = 0
        self._next_worker_id = 0
        self._next_submission_id = 0
        self._closing = False
        self._local_processes: List[subprocess.Popen] = []
        self._listener = socket.create_server((host, port))
        self.cache_server = (CacheServer(cache, host=host)
                             if cache is not None else None)
        self._threads = [
            threading.Thread(target=self._accept_loop, name="dist-accept",
                             daemon=True),
            threading.Thread(target=self._dispatch_loop, name="dist-dispatch",
                             daemon=True),
            threading.Thread(target=self._monitor_loop, name="dist-monitor",
                             daemon=True),
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` workers should connect to."""
        return self._listener.getsockname()[:2]

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def spawn_local_workers(self, count: int) -> List[subprocess.Popen]:
        """Start ``count`` worker *processes* on this host, joined to this
        coordinator.  They exit when the coordinator closes."""
        started = []
        for _ in range(count):
            process = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", format_address(self.address)],
                stdout=subprocess.DEVNULL)
            started.append(process)
        self._local_processes.extend(started)
        return started

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> None:
        """Block until ``count`` workers are connected (or raise)."""
        deadline = time.monotonic() + timeout
        with self._wake:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{len(self._workers)} of {count} worker(s) connected "
                        f"after {timeout:.0f}s")
                self._wake.wait(timeout=remaining)

    # ------------------------------------------------------------------
    # Executor protocol
    def execute(self, tasks: Sequence[ExecutorTask]):
        """Queue every task for the fleet; yield completions as they land."""
        if self._closing:
            raise RuntimeError("executor is closed")
        with self._wake:
            submission = _Submission(self._next_submission_id)
            self._next_submission_id += 1
            for task in tasks:
                self._pending.append(_Task(
                    id=self._next_task_id, task=task,
                    spec_dict=task.spec.to_dict(), submission=submission))
                self._next_task_id += 1
            self._wake.notify_all()
        emitted = 0
        fleet_empty_since: Optional[float] = None
        while emitted < len(tasks):
            try:
                completion = submission.completions.get(timeout=0.25)
            except queue.Empty:
                with self._lock:
                    fleet_empty = not self._workers
                    closing = self._closing
                if not fleet_empty:
                    fleet_empty_since = None
                    continue
                now = time.monotonic()
                if fleet_empty_since is None:
                    fleet_empty_since = now
                if closing or now - fleet_empty_since >= self.worker_wait:
                    self._fail_queued(submission,
                                      reason="executor closing" if closing else
                                      f"no workers connected for "
                                      f"{self.worker_wait:.0f}s")
                continue
            emitted += 1
            yield completion

    def _fail_queued(self, submission: _Submission, reason: str) -> None:
        """Fail ``submission``'s still-queued tasks (fleet gone for good)."""
        with self._lock:
            kept: Deque[_Task] = deque()
            for task in self._pending:
                if task.submission is submission and not task.done:
                    task.done = True
                    spec = task.task.spec
                    failure = JobFailure(
                        job_hash=spec.content_hash(),
                        label=spec.display_name(),
                        error=f"distributed execution failed: {reason} "
                              f"(after {task.attempts} attempt(s))",
                        host="",
                        last_heartbeat=None,
                    )
                    submission.completions.put(ExecutorCompletion(
                        task.task.index, failure, None))
                else:
                    kept.append(task)
            self._pending = kept

    # ------------------------------------------------------------------
    # accept / reader
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return                    # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=self._reader, args=(Connection(sock),),
                             name="dist-reader", daemon=True).start()

    def _reader(self, connection: Connection) -> None:
        worker: Optional[_Worker] = None
        try:
            hello = connection.recv()
            if not hello or hello.get("type") != "hello":
                connection.close()
                return
            with self._wake:
                worker = _Worker(self._next_worker_id, connection,
                                 host=str(hello.get("host", "?")),
                                 pid=int(hello.get("pid", 0)))
                self._next_worker_id += 1
                self._workers[worker.id] = worker
                self._wake.notify_all()
            connection.send({
                "type": "welcome",
                "worker": worker.id,
                "heartbeat": self.heartbeat_interval,
                "cache": (format_address(self.cache_server.address)
                          if self.cache_server is not None else None),
            })
            if RECORDER.enabled:
                RECORDER.count("dist.workers_joined")
            while True:
                message = connection.recv()
                if message is None:
                    return
                worker.last_seen = time.time()
                kind = message.get("type")
                if kind == "heartbeat":
                    continue
                if kind == "next":
                    with self._wake:
                        if not worker.alive:
                            return
                        worker.idle_since = time.monotonic()
                        self._idle.append(worker)
                        self._wake.notify_all()
                elif kind == "result":
                    self._handle_result(worker, message)
        except (ProtocolError, OSError):
            pass                          # treated as a disconnect
        finally:
            if worker is not None:
                self._worker_lost(worker)
            else:
                connection.close()

    def _handle_result(self, worker: _Worker, message: Dict) -> None:
        with self._lock:
            task = worker.outstanding.pop(int(message["task"]), None)
            if task is None or task.done:
                # A worker answering a task it no longer owns (already failed
                # over, or answered twice): drop it -- exactly-once emission.
                if RECORDER.enabled:
                    RECORDER.count("dist.results_ignored")
                return
            task.done = True
        if message.get("ok"):
            outcome: Union[JobResult, JobFailure] = JobResult.from_dict(
                message["result"])
        else:
            outcome = JobFailure.from_dict(message["failure"])
        payload = message.get("telemetry")
        if payload is not None:
            outcome = replace(outcome, telemetry=payload)
        task.submission.completions.put(ExecutorCompletion(
            task.task.index, outcome, task.submitted_wall or None))

    def _worker_lost(self, worker: _Worker) -> None:
        """Tear one worker down and fail over everything it still owed."""
        with self._wake:
            if not worker.alive:
                return                    # second notification of one death
            worker.alive = False
            self._workers.pop(worker.id, None)
            try:
                self._idle.remove(worker)
            except ValueError:
                pass
            owed = [task for task in worker.outstanding.values()
                    if not task.done]
            worker.outstanding.clear()
            for task in owed:
                task.attempts += 1
                if task.attempts > self.max_retries:
                    task.done = True
                    spec = task.task.spec
                    failure = JobFailure(
                        job_hash=spec.content_hash(),
                        label=spec.display_name(),
                        error=(f"worker {worker.name} died holding this job "
                               f"(attempt {task.attempts}, retries exhausted)"),
                        host=worker.name,
                        last_heartbeat=worker.last_seen,
                    )
                    task.submission.completions.put(ExecutorCompletion(
                        task.task.index, failure, task.submitted_wall or None))
                    if RECORDER.enabled:
                        RECORDER.count("dist.tasks_abandoned")
                else:
                    # Front of the queue: a retry should not wait behind the
                    # rest of the grid.
                    self._pending.appendleft(task)
                    if RECORDER.enabled:
                        RECORDER.count("dist.tasks_requeued")
            self._wake.notify_all()
        worker.connection.close()
        if RECORDER.enabled:
            RECORDER.count("dist.workers_lost")

    # ------------------------------------------------------------------
    # dispatch / monitor
    def _chunk_size(self, pending: int, workers: int) -> int:
        """Guided self-scheduling: half the fair share, clamped."""
        fair = -(-pending // (2 * max(workers, 1)))     # ceil division
        return max(1, min(self.max_chunk, fair))

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while not self._closing and not (self._pending and self._idle):
                    self._wake.wait(timeout=0.5)
                if self._closing:
                    return
                worker = self._idle.popleft()
                if not worker.alive:
                    continue
                size = self._chunk_size(len(self._pending), len(self._workers))
                chunk = [self._pending.popleft()
                         for _ in range(min(size, len(self._pending)))]
                now_wall = time.time()
                for task in chunk:
                    task.submitted_wall = now_wall
                    worker.outstanding[task.id] = task
                steal_wait = (time.monotonic() - worker.idle_since
                              if worker.idle_since is not None else 0.0)
                worker.idle_since = None
                message = {"type": "chunk", "tasks": [
                    {"task": task.id, "spec": task.spec_dict,
                     "engine": task.task.engine} for task in chunk]}
            if RECORDER.enabled:
                RECORDER.observe("dist.steal_wait_seconds", steal_wait)
                RECORDER.observe("dist.chunk_size", float(len(chunk)))
                RECORDER.count("dist.chunks_dispatched")
                RECORDER.count("dist.tasks_dispatched", len(chunk))
            try:
                # Outside the lock: sendall can block on a slow link.
                worker.connection.send(message)
            except OSError:
                self._worker_lost(worker)  # re-queues the chunk immediately

    def _monitor_loop(self) -> None:
        while not self._closing:
            time.sleep(self.heartbeat_interval)
            cutoff = time.time() - self.heartbeat_timeout
            with self._lock:
                stale = [worker for worker in self._workers.values()
                         if worker.last_seen < cutoff]
            for worker in stale:
                # Closing the socket unblocks the reader, which runs the
                # one true failure path (_worker_lost).
                worker.connection.close()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the fleet down: workers told to exit, sockets torn down.

        Idempotent.  Queued-but-unfinished tasks of any still-iterating
        ``execute()`` call fail with "executor closing".
        """
        if self._closing:
            return
        with self._wake:
            self._closing = True
            workers = list(self._workers.values())
            self._wake.notify_all()
        for worker in workers:
            try:
                worker.connection.send({"type": "shutdown"})
            except OSError:
                pass
            worker.connection.close()
        try:
            self._listener.close()
        except OSError:
            pass
        if self.cache_server is not None:
            self.cache_server.close()
        for process in self._local_processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # best-effort: don't leak sockets or processes
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
