"""Campaign engine: parallel simulation execution with a persistent cache.

The campaign subsystem sits between the experiment layer and the simulator:

* :mod:`~repro.campaign.spec` -- :class:`JobSpec` names one simulation point
  (kernel, machine, mapping, sizes, seed) and serialises to a stable SHA-256
  content hash; :class:`Campaign` is an ordered batch of specs.
* :mod:`~repro.campaign.cache` -- :class:`ResultCache` persists result
  summaries to a JSON-lines journal keyed by that hash (default
  ``~/.cache/repro``, override with ``REPRO_CACHE_DIR``), with hit/miss
  accounting and automatic invalidation on simulator-version bumps.
* :mod:`~repro.campaign.worker` -- the picklable per-job execution function.
* :mod:`~repro.campaign.executor` -- the :class:`Executor` protocol behind
  the runner: :class:`LocalExecutor` (in-process or a persistent process
  pool) here, a multi-host :class:`DistributedExecutor` in
  :mod:`~repro.campaign.dist`.
* :mod:`~repro.campaign.runner` -- :class:`CampaignRunner` resolves specs
  against the cache, deduplicates identical points, fans the rest out
  through an executor, and returns outcomes in deterministic submission
  order with per-job failure isolation.

Quick start::

    from repro.campaign import Campaign, CampaignRunner, JobSpec, ResultCache
    from repro.sim.config import ArchConfig

    campaign = Campaign("demo")
    for lws in (1, 16, 32):
        campaign.add(JobSpec(problem="vecadd", scale="bench", seed=0,
                             config=ArchConfig.from_name("4c8w8t"),
                             local_size=lws))
    outcome = CampaignRunner(workers=4, cache=ResultCache()).run(campaign)
    for result in outcome.job_results():
        print(result.summary())
"""

from repro.campaign.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    ResultCache,
    default_cache_dir,
)
from repro.campaign.executor import (
    Executor,
    ExecutorCompletion,
    ExecutorTask,
    LocalExecutor,
)
from repro.campaign.result import JobFailure, JobResult
from repro.campaign.runner import (
    CampaignError,
    CampaignOutcome,
    CampaignRunner,
    RunStats,
)
from repro.campaign.spec import (
    CACHE_SCHEMA_VERSION,
    Campaign,
    JobSpec,
    config_from_dict,
    config_to_dict,
    simulator_version,
)
from repro.campaign.worker import execute_job, run_spec

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "Campaign",
    "CampaignError",
    "CampaignOutcome",
    "CampaignRunner",
    "Executor",
    "ExecutorCompletion",
    "ExecutorTask",
    "JobFailure",
    "LocalExecutor",
    "JobResult",
    "ResultCache",
    "RunStats",
    "config_from_dict",
    "config_to_dict",
    "default_cache_dir",
    "execute_job",
    "run_spec",
    "simulator_version",
]
