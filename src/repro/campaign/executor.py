"""The executor protocol: where campaign jobs actually run.

:class:`~repro.campaign.runner.CampaignRunner` owns *policy* -- cache-first
resolve, dedup, submission-order folding, failure isolation -- and delegates
*mechanism* to an executor: something that takes :class:`ExecutorTask`\\ s
(one per distinct point) and yields :class:`ExecutorCompletion`\\ s in
whatever order the hardware produces them.  Two implementations exist:

- :class:`LocalExecutor` (here): in-process for one worker or one task,
  otherwise a **persistent** ``ProcessPoolExecutor`` reused across
  ``execute()`` calls -- a planner submission's engine-grouped shards share
  one pool instead of paying pool spin-up per shard.  The engine rides each
  task (:func:`~repro.campaign.worker.execute_job` pins ``$REPRO_ENGINE``
  around the job), which is what makes pool reuse across engine shards safe.
- :class:`~repro.campaign.dist.coordinator.DistributedExecutor`: fans tasks
  out to worker processes on any number of hosts over TCP.

Executors never raise per task: anything that goes wrong -- including the
pool itself dying -- becomes a :class:`~repro.campaign.result.JobFailure`
carrying host and last-heartbeat context, and the remaining tasks still
complete (or fail) individually.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import sys
import time
import traceback as traceback_module
from concurrent.futures import (
    BrokenExecutor,
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.campaign.result import JobFailure, JobResult
from repro.campaign.spec import JobSpec
from repro.campaign.worker import execute_job

Outcome = Union[JobResult, JobFailure]

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


@dataclass(frozen=True)
class ExecutorTask:
    """One distinct point to execute: a spec, its slot, and its engine."""

    index: int                    # caller-chosen id, echoed on the completion
    spec: JobSpec
    engine: Optional[str] = None  # pinned per job; None = environment default


@dataclass(frozen=True)
class ExecutorCompletion:
    """One finished task, in whatever order the executor produced it."""

    index: int                    # the ExecutorTask.index this answers
    outcome: Outcome
    submitted_wall: Optional[float] = None  # when the task was handed off


@runtime_checkable
class Executor(Protocol):
    """Anything that can run campaign tasks and stream back completions."""

    def execute(self,
                tasks: Sequence[ExecutorTask]) -> Iterator[ExecutorCompletion]:
        """Run every task; yield exactly one completion per task, any order."""
        ...

    def close(self) -> None:
        """Release pools/sockets.  Idempotent; the executor is done after."""
        ...


def worker_location() -> str:
    """``host/pid`` string identifying where a job ran (for failures)."""
    return f"{socket.gethostname()}/pid{os.getpid()}"


def pool_failure(spec: JobSpec, error: BaseException,
                 host: str = "", last_heartbeat: Optional[float] = None) -> JobFailure:
    """A :class:`JobFailure` for a job the *executor* killed, not the job.

    Carries the full formatted traceback of ``error`` (PR 9's fidelity
    contract for pool breakage) plus where the job was running and when that
    worker was last known alive.
    """
    return JobFailure(
        job_hash=spec.content_hash(),
        label=spec.display_name(),
        error=f"{type(error).__name__}: {error}",
        traceback="".join(traceback_module.format_exception(
            type(error), error, error.__traceback__)),
        host=host or worker_location(),
        last_heartbeat=last_heartbeat if last_heartbeat is not None else time.time(),
    )


class LocalExecutor:
    """Single-host executor: in-process, or a persistent process pool.

    Parameters
    ----------
    workers:
        Maximum concurrent simulations.  ``1`` executes in-process -- fully
        deterministic, no pickling round trip.  A batch of one task also
        runs in-process regardless (a pool buys nothing there), except when
        a pool already exists: then the warm pool is cheaper than paying an
        in-process import/execution while workers sit idle.
    mp_context:
        Multiprocessing context for the pool; defaults to ``fork`` where it
        is the platform default (workers inherit the imported simulator for
        free; macOS forks past Objective-C/numpy state and aborts).

    The pool is created lazily on the first multi-task ``execute()`` and
    **kept** for subsequent calls; ``close()`` (or garbage collection)
    shuts it down.  A broken pool (a worker SIGKILLed mid-job) fails the
    in-flight tasks with host context and is discarded, so the next
    ``execute()`` gets a fresh pool instead of inheriting the corpse.
    """

    def __init__(self, workers: int = 1, mp_context=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        prefer_fork = (sys.platform.startswith("linux")
                       and "fork" in multiprocessing.get_all_start_methods())
        return multiprocessing.get_context("fork" if prefer_fork else None)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=self._context())
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def execute(self,
                tasks: Sequence[ExecutorTask]) -> Iterator[ExecutorCompletion]:
        """Run every task; see the class docstring for pool lifecycle."""
        if self.workers <= 1 or (len(tasks) <= 1 and self._pool is None):
            for task in tasks:
                submitted_wall = time.time()
                outcome = execute_job(task.spec, engine=task.engine)
                yield ExecutorCompletion(task.index, outcome, submitted_wall)
            return
        yield from self._execute_pool(tasks)

    def _execute_pool(self, tasks: Sequence[ExecutorTask]):
        pool = self._ensure_pool()
        submitted_wall = time.time()
        try:
            futures = {pool.submit(execute_job, task.spec, task.engine): task
                       for task in tasks}
        except (BrokenExecutor, RuntimeError):
            # The pool died between calls (or during submission): retry the
            # whole batch once on a fresh pool before giving up on it.
            self._discard_pool()
            pool = self._ensure_pool()
            futures = {pool.submit(execute_job, task.spec, task.engine): task
                       for task in tasks}
        broken = False
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                task = futures[future]
                try:
                    outcome: Outcome = future.result()
                except Exception as error:  # pool/pickling breakage
                    if isinstance(error, BrokenExecutor):
                        broken = True
                    outcome = pool_failure(task.spec, error)
                yield ExecutorCompletion(task.index, outcome, submitted_wall)
        if broken:
            self._discard_pool()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (waits for idle workers to exit)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "LocalExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # best-effort: don't leak worker processes
        try:
            self._discard_pool()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
