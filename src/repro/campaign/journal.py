"""Shared JSONL-journal helpers.

Both append-only journals in the repository -- the campaign
:class:`~repro.campaign.cache.ResultCache` and the scenario
:class:`~repro.scenarios.sink.ResultSink` -- share their on-disk behaviour:
one JSON object per line, corrupt lines tolerated (a killed writer's
half-written tail), and records filtered by cache schema and simulator
version on load.  That behaviour lives here once so the two journals cannot
diverge.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.campaign.spec import CACHE_SCHEMA_VERSION, simulator_version


def iter_journal_lines(path: Path) -> Iterator[Optional[Dict]]:
    """Yield one parsed JSON object per journal line, ``None`` when corrupt.

    Blank lines are skipped entirely; a line that is not a JSON object (the
    classic half-written tail of a dead process) yields ``None`` so callers
    can count it without crashing.
    """
    if not path.exists():
        return
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            yield None
            continue
        yield record if isinstance(record, dict) else None


def is_current_record(record: Dict) -> bool:
    """True when ``record`` was written under this schema and simulator.

    Records from other versions are unusable (the cycle model may have
    changed) but are preserved on disk -- bumping ``repro.__version__``
    invalidates without rewriting.
    """
    return (record.get("schema") == CACHE_SCHEMA_VERSION
            and record.get("simulator") == simulator_version())


def terminate_partial_tail(path: Path) -> None:
    """Append a newline if ``path`` ends mid-line (a killed writer's tail).

    No-op when the file is missing, empty, or already newline-terminated.
    Callers should invoke this once before their first append to an existing
    journal.
    """
    if not path.exists() or path.stat().st_size == 0:
        return
    with path.open("rb") as journal:
        journal.seek(-1, os.SEEK_END)
        ends_clean = journal.read(1) == b"\n"
    if not ends_clean:
        with path.open("a") as journal:
            journal.write("\n")
