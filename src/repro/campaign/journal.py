"""Shared JSONL-journal helpers.

Both append-only journals in the repository -- the campaign
:class:`~repro.campaign.cache.ResultCache` and the scenario
:class:`~repro.scenarios.sink.ResultSink` -- share their on-disk behaviour:
one JSON object per line, corrupt lines tolerated (a killed writer's
half-written tail), and records filtered by cache schema and simulator
version on load.  That behaviour lives here once so the two journals cannot
diverge.

Iteration is *streaming*: :func:`iter_journal_entries` reads the file one
line at a time (never the whole journal into memory) and reports the byte
offset each line ends at, which is what the results warehouse
(:mod:`repro.warehouse`) uses to sync incrementally -- a journal synced to
offset N resumes ingesting at byte N, touching none of the already-ingested
prefix.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.campaign.spec import CACHE_SCHEMA_VERSION, simulator_version


def _parse_line(raw: bytes) -> Optional[Dict]:
    """One journal line -> parsed JSON object, or ``None`` when corrupt."""
    try:
        record = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


def iter_journal_entries(path: Path, start: int = 0,
                         complete_only: bool = False,
                         ) -> Iterator[Tuple[Optional[Dict], int]]:
    """Stream ``(record_or_None, end_offset)`` per journal line from ``start``.

    The journal is read incrementally (one line at a time, binary mode), so
    arbitrarily large journals never materialise in memory.  ``end_offset``
    is the byte offset immediately after the line's newline -- feeding it
    back as ``start`` resumes iteration exactly where this one stopped.

    A line that is not a JSON object (the classic half-written tail of a
    dead process) yields ``None`` so callers can count it without crashing;
    blank lines also yield ``None`` -- they carry no record, but consumers
    that persist the consumed offset (the warehouse sync) must see the
    offset advance past them, or a journal with trailing blank lines would
    be re-hashed and re-read on every subsequent pass.  The final line of a
    journal whose writer died mid-record has no terminating newline: with
    ``complete_only=True`` (the warehouse ingest mode) it is *not* yielded
    and not consumed -- the offset stops before it, and a later sync picks
    it up once the tail is terminated or overwritten; with the default
    ``complete_only=False`` it is parsed like any other line (matching the
    historical whole-file read).
    """
    if not path.exists():
        return
    offset = start
    with path.open("rb") as journal:
        journal.seek(start)
        for raw in journal:
            offset += len(raw)
            if not raw.endswith(b"\n"):
                # Unterminated tail: a writer may still be mid-append.
                if complete_only:
                    return
                stripped = raw.strip()
                if stripped:
                    yield _parse_line(stripped), offset
                return
            stripped = raw.strip()
            if not stripped:
                yield None, offset
                continue
            yield _parse_line(stripped), offset


def iter_journal_lines(path: Path) -> Iterator[Optional[Dict]]:
    """Yield one parsed JSON object per journal line, ``None`` when corrupt.

    Streaming wrapper over :func:`iter_journal_entries` for callers that do
    not care about byte offsets (the cache and sink loaders).
    """
    for record, _ in iter_journal_entries(path):
        yield record


def is_current_record(record: Dict) -> bool:
    """True when ``record`` was written under this schema and simulator.

    Records from other versions are unusable (the cycle model may have
    changed) but are preserved on disk -- bumping ``repro.__version__``
    invalidates without rewriting.
    """
    return (record.get("schema") == CACHE_SCHEMA_VERSION
            and record.get("simulator") == simulator_version())


def terminate_partial_tail(path: Path) -> None:
    """Append a newline if ``path`` ends mid-line (a killed writer's tail).

    No-op when the file is missing, empty, or already newline-terminated.
    Callers should invoke this once before their first append to an existing
    journal.
    """
    if not path.exists() or path.stat().st_size == 0:
        return
    with path.open("rb") as journal:
        journal.seek(-1, os.SEEK_END)
        ends_clean = journal.read(1) == b"\n"
    if not ends_clean:
        with path.open("a") as journal:
            journal.write("\n")
