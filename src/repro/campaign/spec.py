"""Job specifications: naming one simulation point, content-addressably.

A :class:`JobSpec` is the declarative description of one simulator run: the
workload (problem name, scale, seed and optional size override -- everything
the problem factory needs to rebuild bit-identical input data), the machine
(a full :class:`~repro.sim.config.ArchConfig`, launch overheads and timing
overrides included) and the launch parameters (lws, call-extrapolation limit).
Two specs that describe the same simulation serialise to the same canonical
JSON and therefore to the same SHA-256 content hash, no matter which
experiment built them or in which process -- that hash is the key of the
persistent :class:`~repro.campaign.cache.ResultCache`.

A :class:`Campaign` is an ordered list of specs (duplicates allowed; the
runner executes each distinct hash once and fans the result back out).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.isa.latencies import FunctionalUnit, OpTiming
from repro.isa.opcodes import Opcode
from repro.sim.config import ArchConfig

#: Bump when the cached-record layout changes; old cache entries are ignored.
CACHE_SCHEMA_VERSION = 1


def simulator_version() -> str:
    """The simulator version stamped into hashes and cache records.

    Any release bump invalidates every cached result: the cycle model may
    have changed, so previously stored cycle counts can no longer be trusted.
    """
    import repro

    return repro.__version__


# ----------------------------------------------------------------------
# ArchConfig (de)serialisation
# ----------------------------------------------------------------------
def config_to_dict(config: ArchConfig) -> Dict[str, object]:
    """Serialise every field of an :class:`ArchConfig` to plain JSON types."""
    data: Dict[str, object] = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if f.name == "timing_overrides":
            data[f.name] = sorted(
                [opcode.name, timing.unit.value, timing.latency, timing.initiation_interval]
                for opcode, timing in value.items()
            )
        else:
            data[f.name] = value
    return data


def config_from_dict(data: Mapping[str, object]) -> ArchConfig:
    """Inverse of :func:`config_to_dict`."""
    kwargs = dict(data)
    overrides_raw = kwargs.pop("timing_overrides", [])
    overrides: Dict[Opcode, OpTiming] = {}
    for opcode_name, unit, latency, interval in overrides_raw:
        overrides[Opcode[opcode_name]] = OpTiming(
            unit=FunctionalUnit(unit),
            latency=None if latency is None else int(latency),
            initiation_interval=int(interval),
        )
    return ArchConfig(timing_overrides=overrides, **kwargs)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One simulation point, fully determined by its fields.

    ``label`` is a display-only tag (used by progress output and experiment
    bookkeeping); it does not participate in the content hash, so the same
    point submitted under two labels is still one cache entry.
    """

    problem: str
    config: ArchConfig
    scale: str = "bench"
    seed: int = 0
    size: Optional[int] = None            # global-size override (sizeable problems)
    local_size: Optional[int] = None      # None -> the runtime Eq.-1 mapping
    call_simulation_limit: Optional[int] = None
    max_cycles_per_call: Optional[int] = None
    collect_trace: bool = False           # traced jobs are never cache-served
    max_trace_events: int = 200_000
    label: str = ""

    # ------------------------------------------------------------------
    def display_name(self) -> str:
        """The label when set, otherwise a readable point description."""
        if self.label:
            return self.label
        lws = "eq1" if self.local_size is None else self.local_size
        return f"{self.problem}/{self.config.name}/lws={lws}"

    def hash_payload(self) -> Dict[str, object]:
        """The canonical dictionary the content hash is computed over.

        ``collect_trace``/``max_trace_events``/``label`` are presentation
        concerns -- they change what is reported, not what is simulated -- so
        they are deliberately excluded.
        """
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "simulator": simulator_version(),
            "problem": self.problem,
            "scale": self.scale,
            "seed": self.seed,
            "size": self.size,
            "config": config_to_dict(self.config),
            "local_size": self.local_size,
            "call_simulation_limit": self.call_simulation_limit,
            "max_cycles_per_call": self.max_cycles_per_call,
        }

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON of :meth:`hash_payload`.

        Stable across processes, interpreter restarts and ``PYTHONHASHSEED``
        values (it never touches Python's builtin ``hash``).  The digest is
        memoised per instance: the runner consults it several times per job
        (cache lookup, dedup grouping, write-back).
        """
        cached = self.__dict__.get("_content_hash")
        if cached is not None:
            return cached
        canonical = json.dumps(self.hash_payload(), sort_keys=True,
                               separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_content_hash", digest)
        return digest

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain types (for workers and the cache journal)."""
        return {
            "problem": self.problem,
            "config": config_to_dict(self.config),
            "scale": self.scale,
            "seed": self.seed,
            "size": self.size,
            "local_size": self.local_size,
            "call_simulation_limit": self.call_simulation_limit,
            "max_cycles_per_call": self.max_cycles_per_call,
            "collect_trace": self.collect_trace,
            "max_trace_events": self.max_trace_events,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobSpec":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        kwargs["config"] = config_from_dict(kwargs["config"])
        return cls(**kwargs)

    def with_label(self, label: str) -> "JobSpec":
        """A copy with a different display label (same content hash)."""
        return replace(self, label=label)


# ----------------------------------------------------------------------
@dataclass
class Campaign:
    """A named, ordered collection of job specs."""

    name: str = "campaign"
    specs: List[JobSpec] = field(default_factory=list)

    def add(self, spec: JobSpec) -> JobSpec:
        """Append one spec and return it."""
        self.specs.append(spec)
        return spec

    def extend(self, specs: Iterable[JobSpec]) -> None:
        """Append several specs."""
        self.specs.extend(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.specs)

    def unique_hashes(self) -> List[str]:
        """Distinct content hashes in first-seen order (the work to execute)."""
        seen: Dict[str, None] = {}
        for spec in self.specs:
            seen.setdefault(spec.content_hash(), None)
        return list(seen)

    def summary(self) -> str:
        """One-line description for logs and the CLI."""
        return (f"campaign {self.name!r}: {len(self.specs)} job(s), "
                f"{len(self.unique_hashes())} distinct point(s)")
