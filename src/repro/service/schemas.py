"""Service request/record schemas: what a job submission names, validated.

A :class:`JobRequest` is the HTTP-submitted description of one unit of
service work.  Two shapes are accepted (exactly one of them per request):

* ``{"scenario": "<name>", ...}`` -- run a registered scenario through the
  declarative :class:`~repro.scenarios.planner.Planner`, exactly like
  ``repro scenario run`` (minus the sink: the shared
  :class:`~repro.campaign.cache.ResultCache` is the service's memoization
  layer, so overlapping submissions cost one simulation each);
* ``{"problems": [...], "configs": [...], ...}`` -- an ad-hoc grid of
  ``problems x configs x lws`` points, executed directly through the
  :class:`~repro.campaign.runner.CampaignRunner`.

Validation is strict and happens at submission time -- a request that names
an unknown scenario, problem, or machine shape is rejected with a 400 before
it ever reaches the queue, so the queue journal only ever holds runnable
work.  A :class:`Job` is one queued submission's full lifecycle record:
request, state machine (``pending -> running -> done | failed``), timestamps
and the terminal payload.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.campaign.spec import JobSpec
from repro.sim.config import ArchConfig

#: Valid job lifecycle states, in order.
JOB_STATES = ("pending", "running", "done", "failed")

#: The problem scales a request may name (mirrors the CLI choices).
SCALES = ("smoke", "bench", "paper")


class ValidationError(ValueError):
    """A submitted request that cannot be turned into runnable work."""


def new_job_id() -> str:
    """A fresh, unguessable job handle."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class JobRequest:
    """One validated submission: a scenario reference or an ad-hoc grid."""

    scenario: Optional[str] = None
    problems: Tuple[str, ...] = ()
    configs: Tuple[str, ...] = ()
    lws: Tuple[Optional[int], ...] = (None,)
    scale: str = "smoke"
    seed: int = 0
    sweep: Optional[str] = None            # scenario grid override (--sweep)
    exact_calls: bool = False

    @property
    def kind(self) -> str:
        return "scenario" if self.scenario is not None else "grid"

    def describe(self) -> str:
        """One-line label for logs and job listings."""
        if self.scenario is not None:
            return f"scenario:{self.scenario}@{self.scale}"
        return (f"grid:{','.join(self.problems)}x{','.join(self.configs)}"
                f"@{self.scale}")

    # ------------------------------------------------------------------
    def specs(self) -> List[JobSpec]:
        """The ad-hoc grid as concrete job specs (``kind == "grid"`` only)."""
        if self.scenario is not None:
            raise ValueError("scenario requests expand through the Planner, "
                             "not through specs()")
        jobs: List[JobSpec] = []
        for problem in self.problems:
            for config_name in self.configs:
                config = ArchConfig.from_name(config_name)
                for lws in self.lws:
                    jobs.append(JobSpec(
                        problem=problem, config=config, scale=self.scale,
                        seed=self.seed, local_size=lws,
                        label=f"service/{problem}/{config_name}/"
                              f"lws={'eq1' if lws is None else lws}"))
        return jobs

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain JSON types (what the queue journal persists)."""
        return {
            "scenario": self.scenario,
            "problems": list(self.problems),
            "configs": list(self.configs),
            "lws": list(self.lws),
            "scale": self.scale,
            "seed": self.seed,
            "sweep": self.sweep,
            "exact_calls": self.exact_calls,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobRequest":
        """Inverse of :meth:`to_dict` (journal records are pre-validated)."""
        return cls(
            scenario=data.get("scenario"),
            problems=tuple(data.get("problems") or ()),
            configs=tuple(data.get("configs") or ()),
            lws=tuple(data.get("lws") or (None,)),
            scale=str(data.get("scale", "smoke")),
            seed=int(data.get("seed", 0)),
            sweep=data.get("sweep"),
            exact_calls=bool(data.get("exact_calls", False)),
        )


def _int_or_none(value, what: str) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{what} must be an integer or null, got {value!r}")
    return value


def validate_request(data: object) -> JobRequest:
    """A decoded JSON body -> a :class:`JobRequest`, or :class:`ValidationError`.

    Every name the request uses (scenario, problem, machine shape, scale) is
    resolved against the live registries here, so nothing unrunnable is ever
    accepted into the queue.
    """
    # Deferred: the scenario library registers on import and the service
    # must not pay (or re-trigger) that at module-import time.
    from repro.scenarios import REGISTRY
    from repro.workloads.problems import available_problems

    if not isinstance(data, Mapping):
        raise ValidationError(f"request body must be a JSON object, "
                              f"got {type(data).__name__}")
    known = {"scenario", "problems", "configs", "lws", "scale", "seed",
             "sweep", "exact_calls", "kernels"}
    unknown = set(data) - known
    if unknown:
        raise ValidationError(f"unknown request field(s): "
                              f"{', '.join(sorted(unknown))}")

    scenario = data.get("scenario")
    problems = tuple(data.get("problems") or ())
    configs = tuple(data.get("configs") or ())
    if (scenario is None) == (not problems):
        raise ValidationError(
            'exactly one of "scenario" or an ad-hoc grid ("problems" + '
            '"configs") must be given')

    scale = data.get("scale", "smoke")
    if scale not in SCALES:
        raise ValidationError(f"scale must be one of {', '.join(SCALES)}, "
                              f"got {scale!r}")
    seed = data.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValidationError(f"seed must be an integer, got {seed!r}")

    if scenario is not None:
        if not isinstance(scenario, str) or scenario not in REGISTRY:
            raise ValidationError(
                f"unknown scenario {scenario!r}; registered: "
                f"{', '.join(REGISTRY.names())}")
        sweep = data.get("sweep")
        if sweep is not None and sweep not in SCALES:
            raise ValidationError(f"sweep must be one of {', '.join(SCALES)}, "
                                  f"got {sweep!r}")
        kernels = tuple(data.get("kernels") or ()) or None
        if kernels:
            for name in kernels:
                if name not in available_problems():
                    raise ValidationError(f"unknown kernel {name!r}")
        return JobRequest(scenario=scenario, scale=scale, seed=seed,
                          sweep=sweep, problems=kernels or (),
                          exact_calls=bool(data.get("exact_calls", False)))

    if not configs:
        raise ValidationError('an ad-hoc grid needs at least one "configs" entry')
    for problem in problems:
        if problem not in available_problems():
            raise ValidationError(
                f"unknown problem {problem!r}; available: "
                f"{', '.join(available_problems())}")
    for config_name in configs:
        try:
            ArchConfig.from_name(str(config_name))
        except (ValueError, TypeError) as error:
            raise ValidationError(f"bad machine shape {config_name!r}: "
                                  f"{error}") from None
    lws_raw = data.get("lws", [None])
    if not isinstance(lws_raw, (list, tuple)) or not lws_raw:
        raise ValidationError('"lws" must be a non-empty list of integers/null')
    lws = tuple(_int_or_none(value, "lws entry") for value in lws_raw)
    for value in lws:
        if value is not None and value < 1:
            raise ValidationError(f"lws entries must be >= 1, got {value}")
    return JobRequest(problems=tuple(str(p) for p in problems),
                      configs=tuple(str(c) for c in configs),
                      lws=lws, scale=scale, seed=seed)


# ----------------------------------------------------------------------
@dataclass
class Job:
    """One queued submission's lifecycle record."""

    id: str
    request: JobRequest
    state: str = "pending"
    client: str = ""
    submitted: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def to_dict(self, with_result: bool = True) -> Dict[str, object]:
        """The job as the API serves it (``GET /jobs/{id}``)."""
        payload: Dict[str, object] = {
            "job": self.id,
            "state": self.state,
            "kind": self.request.kind,
            "label": self.request.describe(),
            "request": self.request.to_dict(),
            "client": self.client,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
        }
        if with_result:
            payload["result"] = self.result
        return payload
