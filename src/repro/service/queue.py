"""The persistent job queue: one append-only JSONL journal of state changes.

Every lifecycle transition of every job appends exactly one JSON object to
``jobs.jsonl`` -- the same storage discipline (and the same shared helpers:
:func:`~repro.campaign.journal.terminate_partial_tail` tail repair,
:func:`~repro.campaign.journal.iter_journal_lines` tolerant streaming reads)
as the campaign cache and scenario sinks, so a ``kill -9``'d server can at
worst lose the line it was mid-writing, never corrupt the file.

Loading folds the journal last-wins per job id: the first ``pending`` record
carries the (pre-validated) request, later records update the state.  A job
that was ``running`` when the process died folds back to ``pending`` --
**that is the resume path**: a restarted server re-enqueues every job that
never reached a terminal state, in original submission order, and simply
keeps going.  Completed jobs keep their terminal record (result payload
included) so ``GET /jobs/{id}`` survives restarts too.

The queue path resolves to absolute at creation time, like the scenario
sink's: the daemon may change its working directory after opening the queue.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.campaign.journal import iter_journal_lines, terminate_partial_tail
from repro.service.schemas import Job, JobRequest, new_job_id
from repro.telemetry.recorder import RECORDER

#: Bump when the queue journal layout changes; older records are ignored.
QUEUE_SCHEMA_VERSION = 1

#: Environment variable overriding the service state directory.
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"
#: Default directory (relative to the working directory) for service state.
DEFAULT_SERVICE_DIR = "service"
#: Queue journal file name inside the service directory.
QUEUE_FILE_NAME = "jobs.jsonl"


def default_service_dir() -> Path:
    """The service state directory (``$REPRO_SERVICE_DIR`` aware, absolute)."""
    override = os.environ.get(SERVICE_DIR_ENV)
    base = Path(override).expanduser() if override else Path(DEFAULT_SERVICE_DIR)
    return base if base.is_absolute() else Path.cwd() / base


def default_queue_path() -> Path:
    """Where the job queue journal lives by default."""
    return default_service_dir() / QUEUE_FILE_NAME


class JobQueue:
    """Journal-backed FIFO of service jobs, resumable across restarts."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        path = Path(path).expanduser() if path is not None else default_queue_path()
        self.path = path if path.is_absolute() else Path.cwd() / path
        self._jobs: Dict[str, Job] = {}
        self._pending: List[str] = []
        self._tail_checked = False
        self.recovered = 0              # jobs folded running -> pending on load
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Fold the journal into current job state (last record per id wins)."""
        self._jobs.clear()
        self._pending.clear()
        self.recovered = 0
        for record in iter_journal_lines(self.path):
            if record is None or record.get("queue_schema") != QUEUE_SCHEMA_VERSION:
                continue
            job_id = record.get("job")
            state = record.get("state")
            if not isinstance(job_id, str) or state not in (
                    "pending", "running", "done", "failed"):
                continue
            if state == "pending":
                try:
                    request = JobRequest.from_dict(record.get("request") or {})
                except (TypeError, ValueError):
                    continue
                self._jobs[job_id] = Job(
                    id=job_id, request=request, state="pending",
                    client=str(record.get("client", "")),
                    submitted=float(record.get("time", 0.0)))
                continue
            job = self._jobs.get(job_id)
            if job is None:
                continue               # transition without a pending record
            job.state = state
            stamp = float(record.get("time", 0.0))
            if state == "running":
                job.started = stamp
            else:
                job.finished = stamp
                job.result = record.get("result")
                error = record.get("error")
                job.error = None if error is None else str(error)
        for job in self._jobs.values():
            if job.state == "running":
                # The previous server died mid-job: nothing terminal was ever
                # journaled, so the work is simply still owed.
                job.state = "pending"
                job.started = None
                self.recovered += 1
            if job.state == "pending":
                self._pending.append(job.id)
        self._pending.sort(key=lambda job_id: self._jobs[job_id].submitted)

    def _append(self, record: Dict[str, object]) -> None:
        record = {"queue_schema": QUEUE_SCHEMA_VERSION,
                  "time": time.time(), **record}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self._tail_checked:
            self._tail_checked = True
            terminate_partial_tail(self.path)
        with self.path.open("a") as journal:
            journal.write(json.dumps(record, sort_keys=True) + "\n")
            journal.flush()
            os.fsync(journal.fileno())

    # ------------------------------------------------------------------
    def submit(self, request: JobRequest, client: str = "") -> Job:
        """Durably enqueue one validated request; returns the new job."""
        job = Job(id=new_job_id(), request=request, client=client,
                  submitted=time.time())
        self._append({"job": job.id, "state": "pending",
                      "request": request.to_dict(), "client": client})
        self._jobs[job.id] = job
        self._pending.append(job.id)
        RECORDER.count("service.jobs.submitted")
        return job

    def claim(self) -> Optional[Job]:
        """Pop the oldest pending job and durably mark it running."""
        if not self._pending:
            return None
        job = self._jobs[self._pending.pop(0)]
        job.state = "running"
        job.started = time.time()
        self._append({"job": job.id, "state": "running"})
        return job

    def finish(self, job_id: str, result: Dict[str, object]) -> Job:
        """Durably record one job's successful terminal state."""
        return self._terminal(job_id, "done", result=result)

    def fail(self, job_id: str, error: str) -> Job:
        """Durably record one job's failure."""
        return self._terminal(job_id, "failed", error=error)

    def _terminal(self, job_id: str, state: str,
                  result: Optional[Dict[str, object]] = None,
                  error: Optional[str] = None) -> Job:
        job = self._jobs[job_id]
        job.state = state
        job.finished = time.time()
        job.result = result
        job.error = error
        record: Dict[str, object] = {"job": job.id, "state": state}
        if result is not None:
            record["result"] = result
        if error is not None:
            record["error"] = error
        self._append(record)
        RECORDER.count(f"service.jobs.{state}")
        return job

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        return sorted(self._jobs.values(), key=lambda job: job.submitted)

    def pending_count(self) -> int:
        return len(self._pending)

    def counts(self) -> Dict[str, int]:
        """Jobs per state (the health endpoint's queue summary)."""
        counts = {state: 0 for state in ("pending", "running", "done", "failed")}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def __len__(self) -> int:
        return len(self._jobs)
