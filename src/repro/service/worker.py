"""Background execution: a worker pool draining the queue, narrating progress.

The pool owns N asyncio worker tasks on the service's event loop.  Each
worker claims the oldest pending job, runs the actual simulation work in a
thread (:func:`asyncio.to_thread` -- the campaign stack is synchronous and
CPU/subprocess bound), and journals the terminal state back into the queue.
Per-job progress flows through the :class:`EventBook`: the simulation thread
publishes via ``loop.call_soon_threadsafe`` and any number of SSE
subscribers replay the job's history and then follow live until a terminal
event -- a subscriber that connects after the job finished still sees the
full story.

Execution reuses the existing engines verbatim: scenario requests expand
through the :class:`~repro.scenarios.planner.Planner`, ad-hoc grids go
straight through the :class:`~repro.campaign.runner.CampaignRunner`, and
both share the service's one :class:`~repro.campaign.cache.ResultCache` --
that shared cache is the multi-tenant memoization layer (two clients
submitting the same spec cost one simulation) *and* what makes an HTTP
result bit-identical to a direct library run of the same spec.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.result import JobFailure
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Campaign
from repro.service.queue import JobQueue
from repro.service.schemas import Job
from repro.telemetry.log import get_logger
from repro.telemetry.recorder import RECORDER

_LOG = get_logger("service.worker")

#: Event names that end a job's stream (subscribers stop after one).
TERMINAL_EVENTS = ("done", "failed")

#: Cap on retained progress events per job (history replay stays bounded for
#: huge grids; terminal events are always retained).
MAX_EVENTS_PER_JOB = 2048


class EventBook:
    """Per-job progress event history with replay-then-follow subscription."""

    def __init__(self):
        self._events: Dict[str, List[Tuple[str, Dict]]] = {}
        self._dropped: Dict[str, int] = {}
        self._condition: Optional[asyncio.Condition] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach to the serving event loop (once, at pool startup)."""
        self._loop = loop
        self._condition = asyncio.Condition()

    # ------------------------------------------------------------------
    def publish(self, job_id: str, name: str, payload: Dict) -> None:
        """Append one event (event-loop thread only) and wake subscribers."""
        events = self._events.setdefault(job_id, [])
        if name not in TERMINAL_EVENTS and len(events) >= MAX_EVENTS_PER_JOB:
            self._dropped[job_id] = self._dropped.get(job_id, 0) + 1
            return
        events.append((name, payload))

        async def _notify() -> None:
            async with self._condition:
                self._condition.notify_all()
        if self._loop is not None:
            self._loop.create_task(_notify())

    def publish_threadsafe(self, job_id: str, name: str, payload: Dict) -> None:
        """Publish from a simulation thread (hops onto the event loop)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self.publish, job_id, name, payload)

    def history(self, job_id: str) -> List[Tuple[str, Dict]]:
        return list(self._events.get(job_id, ()))

    def forget(self, job_id: str) -> None:
        self._events.pop(job_id, None)
        self._dropped.pop(job_id, None)

    # ------------------------------------------------------------------
    async def subscribe(self, job_id: str) -> AsyncIterator[Tuple[str, Dict]]:
        """Replay ``job_id``'s history, then follow live until terminal."""
        cursor = 0
        while True:
            events = self._events.get(job_id, ())
            while cursor < len(events):
                name, payload = events[cursor]
                cursor += 1
                yield name, payload
                if name in TERMINAL_EVENTS:
                    return
            idle = False
            async with self._condition:
                # Re-check under the lock: a publish that landed while we were
                # acquiring it must not turn into a silently missed wakeup.
                if cursor >= len(self._events.get(job_id, ())):
                    try:
                        await asyncio.wait_for(self._condition.wait(),
                                               timeout=30)
                    except asyncio.TimeoutError:
                        idle = True
            if idle:
                # Keep idle streams alive through proxies; subscribers treat
                # this as a comment-grade heartbeat.
                yield "heartbeat", {"job": job_id}


class WorkerPool:
    """N asyncio workers draining the queue through the campaign engines."""

    def __init__(self, queue: JobQueue,
                 events: EventBook,
                 workers: int = 2,
                 sim_workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 executor=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue = queue
        self.events = events
        self.workers = workers
        self.sim_workers = sim_workers
        self.cache = cache
        # A shared Executor (the service's distributed fleet); None keeps
        # the per-job local pool.  The pool never closes it -- the Service
        # owns its lifecycle.
        self.executor = executor
        self._tasks: List[asyncio.Task] = []
        self._kick: Optional[asyncio.Event] = None
        self._stopping = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the workers (queue jobs recovered from disk start draining)."""
        loop = asyncio.get_running_loop()
        self.events.bind(loop)
        self._kick = asyncio.Event()
        self._stopping = False
        if self.queue.recovered:
            _LOG.info("resuming interrupted jobs", count=self.queue.recovered)
        for index in range(self.workers):
            self._tasks.append(
                asyncio.create_task(self._worker(), name=f"service-worker-{index}"))
        if self.queue.pending_count():
            self._kick.set()

    async def stop(self) -> None:
        """Cancel the workers; in-flight jobs resume on next startup."""
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    def notify(self) -> None:
        """Wake the pool (called after every ``POST /jobs``)."""
        if self._kick is not None:
            self._kick.set()

    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while not self._stopping:
            job = self.queue.claim()
            if job is None:
                self._kick.clear()
                await self._kick.wait()
                continue
            self.events.publish(job.id, "running",
                                {"job": job.id, "label": job.request.describe()})
            with RECORDER.span("service.job", job=job.id,
                               kind=job.request.kind):
                try:
                    result = await asyncio.to_thread(self._execute_sync, job)
                except Exception as error:
                    message = f"{type(error).__name__}: {error}"
                    self.queue.fail(job.id, message)
                    self.events.publish(job.id, "failed",
                                        {"job": job.id, "error": message})
                    _LOG.error("job failed", job=job.id, error=message)
                else:
                    self.queue.finish(job.id, result)
                    self.events.publish(job.id, "done", {"job": job.id})
                    _LOG.info("job done", job=job.id,
                              label=job.request.describe())

    # ------------------------------------------------------------------
    def _execute_sync(self, job: Job) -> Dict[str, object]:
        """Run one job to completion (simulation thread; blocking is fine)."""
        request = job.request
        runner = CampaignRunner(workers=self.sim_workers, cache=self.cache,
                                executor=self.executor)

        def on_progress(done: int, total: int, label: str, ok: bool) -> None:
            self.events.publish_threadsafe(
                job.id, "progress",
                {"job": job.id, "done": done, "total": total,
                 "label": label, "ok": ok})

        try:
            if request.kind == "scenario":
                return self._run_scenario(job, runner, on_progress)
            return self._run_grid(job, runner, on_progress)
        finally:
            runner.close()   # a no-op for the shared distributed executor

    def _run_scenario(self, job: Job, runner: CampaignRunner,
                      on_progress) -> Dict[str, object]:
        from repro.scenarios import REGISTRY, Planner, ScenarioContext

        request = job.request
        scenario = REGISTRY.get(request.scenario)
        context = ScenarioContext(
            scale=request.sweep or request.scale,
            seed=request.seed,
            exact_calls=request.exact_calls,
            problems=request.problems or None,
            sweep=request.sweep,
        )

        def progress(done, total, record_or_failure):
            ok = not isinstance(record_or_failure, JobFailure)
            label = (record_or_failure.key if ok
                     else record_or_failure.label)
            on_progress(done, total, label, ok)

        # No sink: the shared ResultCache is the service's persistence layer,
        # and a per-job sink directory would never be read back.
        run = Planner(runner=runner).run(scenario, context, progress=progress)
        return {"kind": "scenario", "report": run.report(), **run.payload()}

    def _run_grid(self, job: Job, runner: CampaignRunner,
                  on_progress) -> Dict[str, object]:
        request = job.request
        specs = request.specs()

        def progress(index, total, spec, outcome):
            on_progress(index + 1, total, spec.display_name(),
                        not isinstance(outcome, JobFailure))

        outcome = runner.run(
            Campaign(name=f"service-{job.id}", specs=specs),
            progress=progress)
        failures = outcome.failures()
        if failures:
            detail = "; ".join(f.summary() for f in failures)
            raise RuntimeError(
                f"{len(failures)} of {outcome.stats.total} job(s) failed: "
                f"{detail}")
        return {
            "kind": "grid",
            "stats": {
                "total": outcome.stats.total,
                "cache_hits": outcome.stats.cache_hits,
                "executed": outcome.stats.executed,
                "deduplicated": outcome.stats.deduplicated,
                "failed": outcome.stats.failed,
                "elapsed_seconds": outcome.stats.elapsed_seconds,
            },
            "results": [
                {"hash": spec.content_hash(), "label": spec.display_name(),
                 "result": result.to_dict()}
                for spec, result in zip(outcome.specs, outcome.results)
            ],
        }
