"""A stdlib asyncio HTTP/1.1 server bridging sockets onto the ASGI app.

This is the "no framework installed" serving path: ``asyncio.start_server``
accepts connections, a small HTTP/1.1 parser turns each request into an
ASGI scope, and the app's response events are written back -- complete
responses get a Content-Length and keep the connection alive, streaming
responses (the SSE endpoint) advertise ``Connection: close`` and write
frames as they are produced.  It is deliberately minimal: no TLS, no
chunked request bodies, no pipelining -- a front proxy owns those concerns
in a real deployment.

:func:`serve` picks the backend: the built-in server by default, or uvicorn
when ``backend="uvicorn"`` is requested *and* importable -- requesting it
without the package installed is an explicit error, never a silent
fallback (the same dual-backend guard the warehouse uses for DuckDB).

:class:`ServerThread` runs the whole stack (server + worker pool) on a
dedicated event loop in a daemon thread -- what the tests and embedded
callers use; the CLI's ``repro serve`` uses the blocking :func:`serve`.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.telemetry.log import get_logger

_LOG = get_logger("service")

#: Request start-line/header size cap (a sanity guard, not a security layer).
_MAX_HEADER_BYTES = 64 * 1024
#: Request body size cap: job submissions are small JSON documents.
_MAX_BODY_BYTES = 4 * 1024 * 1024


class _BadRequest(Exception):
    """An unparseable request; the connection is answered 400 and closed."""


async def _read_request(reader: asyncio.StreamReader) -> Optional[Dict]:
    """One HTTP/1.1 request -> an ASGI-ish dict, or ``None`` at clean EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(f"malformed request line: {request_line!r}")
    method, target, version = parts
    path, _, query = target.partition("?")

    headers: List[Tuple[bytes, bytes]] = []
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise _BadRequest("header section too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.partition(b":")
        headers.append((name.strip().lower(), value.strip()))

    header_map = {name: value for name, value in headers}
    length_raw = header_map.get(b"content-length", b"0")
    try:
        length = int(length_raw)
    except ValueError:
        raise _BadRequest(f"bad Content-Length: {length_raw!r}")
    if length > _MAX_BODY_BYTES:
        raise _BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""

    return {
        "method": method.upper(),
        "path": path,
        "query_string": query.encode("latin-1"),
        "headers": headers,
        "http_version": version.split("/", 1)[1],
        "body": body,
        "keep_alive": (version != "HTTP/1.0"
                       and header_map.get(b"connection", b"").lower() != b"close"),
    }


async def _handle_connection(app, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    peer = writer.get_extra_info("peername") or ("unknown", 0)
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except _BadRequest as error:
                body = f"{error}\n".encode()
                writer.write(b"HTTP/1.1 400 Bad Request\r\n"
                             b"content-length: " + str(len(body)).encode() +
                             b"\r\nconnection: close\r\n\r\n" + body)
                await writer.drain()
                return
            except asyncio.IncompleteReadError:
                return
            if parsed is None:
                return

            scope = {
                "type": "http",
                "asgi": {"version": "3.0"},
                "http_version": parsed["http_version"],
                "method": parsed["method"],
                "path": parsed["path"],
                "raw_path": parsed["path"].encode("latin-1"),
                "query_string": parsed["query_string"],
                "headers": parsed["headers"],
                "client": (peer[0], peer[1]) if len(peer) >= 2 else None,
                "server": None,
                "scheme": "http",
            }

            keep_alive = parsed["keep_alive"]
            state = {"started": False, "streaming": False,
                     "status": 500, "headers": []}
            body_sent = {"done": False}

            async def receive():
                if not body_sent["done"]:
                    body_sent["done"] = True
                    return {"type": "http.request", "body": parsed["body"],
                            "more_body": False}
                return {"type": "http.disconnect"}

            async def send(event):
                nonlocal keep_alive
                if event["type"] == "http.response.start":
                    state["status"] = event["status"]
                    state["headers"] = list(event.get("headers") or ())
                    return
                if event["type"] != "http.response.body":
                    return
                chunk = event.get("body", b"")
                more = bool(event.get("more_body"))
                if not state["started"]:
                    state["started"] = True
                    state["streaming"] = more
                    headers = list(state["headers"])
                    if more:
                        # Streaming: length unknown up front, so the end of
                        # the response can only be signalled by closing.
                        keep_alive = False
                        headers.append((b"connection", b"close"))
                    else:
                        headers.append((b"content-length",
                                        str(len(chunk)).encode()))
                        headers.append((b"connection",
                                        b"keep-alive" if keep_alive
                                        else b"close"))
                    status = state["status"]
                    from repro.service.app import reason_phrase
                    head = [f"HTTP/1.1 {status} {reason_phrase(status)}".encode()]
                    head.extend(name + b": " + value
                                for name, value in
                                ((bytes(n), bytes(v)) for n, v in headers))
                    writer.write(b"\r\n".join(head) + b"\r\n\r\n")
                if chunk:
                    writer.write(chunk)
                await writer.drain()

            try:
                await app(scope, receive, send)
            except (ConnectionError, BrokenPipeError):
                return                 # client went away mid-response
            if not keep_alive:
                return
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


# ----------------------------------------------------------------------
async def start_server(app, host: str = "127.0.0.1", port: int = 0):
    """Bind the built-in server; returns the ``asyncio.Server`` handle."""
    return await asyncio.start_server(
        lambda reader, writer: _handle_connection(app, reader, writer),
        host=host, port=port)


def serve(app, host: str = "127.0.0.1", port: int = 8321,
          backend: str = "stdlib",
          startup: Optional[Callable[[], Awaitable[None]]] = None,
          shutdown: Optional[Callable[[], Awaitable[None]]] = None) -> None:
    """Serve ``app`` until interrupted (the blocking ``repro serve`` body).

    ``backend="stdlib"`` (default) uses the built-in asyncio server;
    ``backend="uvicorn"`` hands the same ASGI app to uvicorn when the
    package is importable and raises a clear error when it is not.
    ``startup``/``shutdown`` are awaited inside the event loop around the
    serving phase (the worker pool's lifecycle hooks).
    """
    if backend == "uvicorn":
        try:
            import uvicorn
        except ImportError:
            raise RuntimeError(
                "backend 'uvicorn' requested but the uvicorn package is not "
                "installed; install it or use the default stdlib backend"
            ) from None
        uvicorn.run(app, host=host, port=port, log_level="warning")
        return
    if backend != "stdlib":
        raise ValueError(f"unknown serve backend {backend!r} "
                         f"(expected 'stdlib' or 'uvicorn')")

    async def _main() -> None:
        if startup is not None:
            await startup()
        server = await start_server(app, host=host, port=port)
        bound = server.sockets[0].getsockname()
        _LOG.info("service listening", host=bound[0], port=bound[1])
        try:
            async with server:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if shutdown is not None:
                await shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        _LOG.info("service stopped")


class ServerThread:
    """The service stack on a dedicated event loop in a daemon thread.

    ``start()`` blocks until the socket is bound and reports the actual
    port (so callers may bind port 0); ``stop()`` cancels the serving task,
    runs the shutdown hook and joins the thread.  Used by the tests and by
    anything embedding the service next to other work.
    """

    def __init__(self, app,
                 host: str = "127.0.0.1", port: int = 0,
                 startup: Optional[Callable[[], Awaitable[None]]] = None,
                 shutdown: Optional[Callable[[], Awaitable[None]]] = None):
        self.app = app
        self.host = host
        self.port = port
        self._startup = startup
        self._shutdown = shutdown
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopping: Optional[asyncio.Event] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start in 30s")
        return self

    def _run(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        if self._startup is not None:
            await self._startup()
        server = await start_server(self.app, host=self.host, port=self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stopping.wait()
        finally:
            if self._shutdown is not None:
                await self._shutdown()

    def stop(self) -> None:
        if self.loop is not None and self._stopping is not None:
            self.loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
