"""Per-client token-bucket rate limiting for the service API.

Classic token bucket: each client holds up to ``burst`` tokens, refilled at
``rate`` tokens per second; a request spends one token, and a client with an
empty bucket is told how long to wait (the 429 response's ``Retry-After``).
Clients are identified by the ``X-Client`` request header when present,
falling back to the peer address -- good enough for fair-sharing a trusted
deployment, not an auth system.

Decisions are recorded in the process telemetry recorder
(``service.requests.allowed`` / ``service.requests.rate_limited``), so the
``/metrics`` endpoint exposes the limiter's behaviour to scrapers for free.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from repro.telemetry.recorder import RECORDER


class TokenBucket:
    """One client's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: int, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self.updated = now

    def take(self, now: float) -> Tuple[bool, float]:
        """Spend one token; returns ``(allowed, retry_after_seconds)``."""
        elapsed = max(now - self.updated, 0.0)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Token buckets per client id.  ``rate <= 0`` disables limiting."""

    #: Soft cap on tracked clients; the stalest bucket is evicted past it
    #: (an evicted client simply restarts with a full burst).
    MAX_CLIENTS = 10_000

    def __init__(self, rate: float = 10.0, burst: int = 20):
        if rate > 0 and burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._buckets: Dict[str, TokenBucket] = {}

    def check(self, client: str) -> Tuple[bool, float]:
        """One request from ``client``: ``(allowed, retry_after_seconds)``."""
        if self.rate <= 0:
            return True, 0.0
        now = time.monotonic()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self.MAX_CLIENTS:
                stalest = min(self._buckets, key=lambda c: self._buckets[c].updated)
                del self._buckets[stalest]
            bucket = self._buckets[client] = TokenBucket(self.rate, self.burst, now)
        allowed, retry_after = bucket.take(now)
        if allowed:
            RECORDER.count("service.requests.allowed")
        else:
            RECORDER.count("service.requests.rate_limited")
        return allowed, retry_after
