"""A thin, stdlib-only ASGI micro-framework (FastAPI-style routing).

The service's HTTP surface is expressed exactly as it would be under
FastAPI -- ``@app.route("/jobs/{id}")`` handlers taking a request and
returning a response -- but implemented here over the bare ASGI 3 protocol
in ~200 lines of stdlib Python, because this package must stay runnable in
an environment with no web framework installed.  The resulting
:class:`App` *is* a real ASGI application: point uvicorn (or any other ASGI
server) at it when one is available, or serve it with the built-in
:mod:`repro.service.server` asyncio server when not (that import guard
lives in :func:`repro.service.server.serve`, mirroring the warehouse's
dual-backend pattern).

Handlers may be sync or async and return a :class:`Response`;
:class:`EventStreamResponse` streams Server-Sent Events from an async
iterator.  Every handled request is counted/timed in the telemetry recorder
(``service.requests`` counter + ``service.request_seconds`` histogram +
per-status-class counters), which is what ``/metrics`` serves back out.
"""

from __future__ import annotations

import inspect
import json
import re
import time
import urllib.parse
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.service.schemas import ValidationError
from repro.telemetry.recorder import RECORDER

#: HTTP reason phrases for the statuses the service actually emits.
_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error",
}


def reason_phrase(status: int) -> str:
    return _REASONS.get(status, "Unknown")


class Request:
    """One parsed HTTP request (scope + fully-read body)."""

    def __init__(self, scope: Dict, body: bytes = b""):
        self.scope = scope
        self.method: str = scope.get("method", "GET").upper()
        self.path: str = scope.get("path", "/")
        self.body = body
        self.path_params: Dict[str, str] = {}
        self.query: Dict[str, str] = {
            key: values[-1] for key, values in urllib.parse.parse_qs(
                (scope.get("query_string") or b"").decode("latin-1")).items()
        }
        self.headers: Dict[str, str] = {}
        for name, value in scope.get("headers") or ():
            self.headers[bytes(name).decode("latin-1").lower()] = (
                bytes(value).decode("latin-1"))

    @property
    def client(self) -> str:
        """The rate-limiting identity: ``X-Client`` header or peer address."""
        explicit = self.headers.get("x-client")
        if explicit:
            return explicit
        peer = self.scope.get("client")
        return peer[0] if peer else "unknown"

    def json(self) -> object:
        """The body decoded as JSON (:class:`ValidationError` when it isn't)."""
        if not self.body:
            raise ValidationError("request body must be JSON, got nothing")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ValidationError(f"request body is not valid JSON: {error}")


class Response:
    """A complete (non-streaming) HTTP response."""

    def __init__(self, body: bytes = b"", status: int = 200,
                 content_type: str = "text/plain; charset=utf-8",
                 headers: Optional[Sequence[Tuple[str, str]]] = None):
        self.body = body
        self.status = status
        self.headers: List[Tuple[str, str]] = [("content-type", content_type)]
        self.headers.extend(headers or ())


class JSONResponse(Response):
    """A JSON body (sorted keys, so responses are byte-stable)."""

    def __init__(self, payload: object, status: int = 200,
                 headers: Optional[Sequence[Tuple[str, str]]] = None):
        super().__init__(
            body=(json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
            status=status, content_type="application/json", headers=headers)


class TextResponse(Response):
    """A plain-text body (``/metrics``' Prometheus exposition)."""


class EventStreamResponse:
    """A Server-Sent-Events response fed by an async iterator of events.

    Each yielded ``(event_name, payload_dict)`` becomes one SSE frame
    (``event: <name>`` + ``data: <json>``).  The iterator ending ends the
    response; the HTTP layer closes the connection afterwards (streaming
    responses advertise no Content-Length).
    """

    status = 200
    headers = [("content-type", "text/event-stream"),
               ("cache-control", "no-cache")]

    def __init__(self, events: AsyncIterator[Tuple[str, Dict]]):
        self.events = events

    async def frames(self) -> AsyncIterator[bytes]:
        async for name, payload in self.events:
            yield (f"event: {name}\n"
                   f"data: {json.dumps(payload, sort_keys=True)}\n\n"
                   ).encode("utf-8")


#: A route handler: sync or async, ``Request -> Response-like``.
Handler = Callable[[Request], object]


class _Route:
    """One registered path pattern (``/jobs/{id}`` style) + its handlers."""

    _PARAM = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")

    def __init__(self, path: str):
        pattern = self._PARAM.sub(r"(?P<\1>[^/]+)", re.escape(path)
                                  .replace(r"\{", "{").replace(r"\}", "}"))
        self.path = path
        self.regex = re.compile(f"^{pattern}$")
        self.handlers: Dict[str, Handler] = {}


class App:
    """Routing table + ASGI 3 entry point."""

    def __init__(self, title: str = "repro service"):
        self.title = title
        self._routes: List[_Route] = []

    # ------------------------------------------------------------------
    def route(self, path: str, methods: Sequence[str] = ("GET",)):
        """FastAPI-style registration: ``@app.route("/jobs", methods=["POST"])``."""
        def decorate(handler: Handler) -> Handler:
            route = next((r for r in self._routes if r.path == path), None)
            if route is None:
                route = _Route(path)
                self._routes.append(route)
            for method in methods:
                route.handlers[method.upper()] = handler
            return handler
        return decorate

    def _match(self, path: str, method: str):
        """``(handler, params) | (None, allowed-methods) | (None, None)``."""
        allowed: List[str] = []
        for route in self._routes:
            matched = route.regex.match(path)
            if not matched:
                continue
            handler = route.handlers.get(method)
            if handler is not None:
                return handler, matched.groupdict()
            allowed.extend(route.handlers)
        return None, (sorted(set(allowed)) or None)

    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request):
        handler, extra = self._match(request.path, request.method)
        if handler is None:
            if extra:                   # path exists, method doesn't
                return JSONResponse({"error": f"method {request.method} not "
                                              f"allowed"},
                                    status=405,
                                    headers=[("allow", ", ".join(extra))])
            return JSONResponse({"error": f"no such resource: {request.path}"},
                                status=404)
        request.path_params = extra
        try:
            outcome = handler(request)
            if inspect.isawaitable(outcome):
                outcome = await outcome
            return outcome
        except ValidationError as error:
            return JSONResponse({"error": str(error)}, status=400)
        except Exception as error:      # one bad request must not kill the app
            return JSONResponse({"error": f"{type(error).__name__}: {error}"},
                                status=500)

    async def __call__(self, scope: Dict, receive, send) -> None:
        """The ASGI 3 application interface."""
        if scope["type"] == "lifespan":  # uvicorn probes this; accept politely
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await send({"type": "lifespan.shutdown.complete"})
                    return
            return
        if scope["type"] != "http":
            return

        body = b""
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                return
            body += message.get("body", b"")
            if not message.get("more_body"):
                break

        started = time.perf_counter()
        request = Request(scope, body)
        response = await self._dispatch(request)

        if isinstance(response, EventStreamResponse):
            await send({"type": "http.response.start",
                        "status": response.status,
                        "headers": [(k.encode(), v.encode())
                                    for k, v in response.headers]})
            async for frame in response.frames():
                await send({"type": "http.response.body", "body": frame,
                            "more_body": True})
            await send({"type": "http.response.body", "body": b"",
                        "more_body": False})
            status = response.status
        else:
            await send({"type": "http.response.start",
                        "status": response.status,
                        "headers": [(k.encode(), v.encode())
                                    for k, v in response.headers]})
            await send({"type": "http.response.body", "body": response.body,
                        "more_body": False})
            status = response.status

        if RECORDER.enabled:
            RECORDER.count("service.requests")
            RECORDER.count(f"service.responses.{status // 100}xx")
            RECORDER.observe("service.request_seconds",
                             time.perf_counter() - started)
