"""The service's HTTP surface: endpoints wired over queue + workers + cache.

=======================  =====================================================
``POST /jobs``           submit a scenario name or ad-hoc grid; 202 + handle
``GET /jobs``            every known job, submission order (no result bodies)
``GET /jobs/{id}``       one job's full state, result payload included
``GET /jobs/{id}/events``  Server-Sent-Events progress stream (replay + live)
``GET /healthz``         liveness + queue counts, always 200 when serving
``GET /metrics``         Prometheus text exposition of the process recorder
=======================  =====================================================

:class:`Service` owns the long-lived pieces (queue, shared result cache,
worker pool, event book, rate limiter) and :func:`create_app` binds them
onto the stdlib ASGI app.  Construction is cheap and lazy -- the pool's
workers only start inside :meth:`Service.startup` on the serving loop.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.campaign.cache import ResultCache, default_cache_dir
from repro.service.app import (
    App,
    EventStreamResponse,
    JSONResponse,
    Request,
    TextResponse,
)
from repro.service.queue import JobQueue, default_service_dir
from repro.service.rate_limit import RateLimiter
from repro.service.schemas import validate_request
from repro.service.worker import EventBook, WorkerPool
from repro.telemetry.export import summarize, to_prometheus
from repro.telemetry.journal import payload_records
from repro.telemetry.recorder import RECORDER


class ServiceConfig:
    """Knobs for one service instance (the ``repro serve`` flag set)."""

    def __init__(self,
                 queue_dir: Optional[Path] = None,
                 cache_dir: Optional[Path] = None,
                 use_cache: bool = True,
                 workers: int = 2,
                 sim_workers: int = 1,
                 rate: float = 10.0,
                 burst: int = 20,
                 executor: str = "local",
                 listen: str = "127.0.0.1:0",
                 dist_workers: int = 0):
        self.queue_dir = Path(queue_dir) if queue_dir else default_service_dir()
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.use_cache = use_cache
        self.workers = workers
        self.sim_workers = sim_workers
        self.rate = rate
        self.burst = burst
        self.executor = executor          # "local" or "dist"
        self.listen = listen              # coordinator bind, with "dist"
        self.dist_workers = dist_workers  # local fleet processes to spawn


class Service:
    """One service instance: state + workers + the ASGI app over them."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.queue = JobQueue(self.config.queue_dir / "jobs.jsonl")
        self.cache = (ResultCache(self.config.cache_dir)
                      if self.config.use_cache else None)
        self.limiter = RateLimiter(rate=self.config.rate,
                                   burst=self.config.burst)
        self.events = EventBook()
        # The distributed backend: one coordinator (and one shared cache
        # server over the service's ResultCache) for the whole service --
        # every API job's campaign executes on the same worker fleet.
        self.executor = None
        if self.config.executor == "dist":
            from repro.campaign.dist import DistributedExecutor
            from repro.campaign.dist.protocol import parse_address

            host, port = parse_address(self.config.listen)
            self.executor = DistributedExecutor(host=host, port=port,
                                                cache=self.cache)
            if self.config.dist_workers:
                self.executor.spawn_local_workers(self.config.dist_workers)
        self.pool = WorkerPool(
            self.queue, self.events,
            workers=self.config.workers,
            sim_workers=self.config.sim_workers,
            cache=self.cache,
            executor=self.executor)
        self.app = create_app(self)

    async def startup(self) -> None:
        """Start the worker pool (must run on the serving event loop)."""
        await self.pool.start()

    async def shutdown(self) -> None:
        await self.pool.stop()
        if self.executor is not None:
            self.executor.close()


def create_app(service: Service) -> App:
    """Bind every endpoint onto a fresh ASGI app for ``service``."""
    app = App(title="repro simulation service")

    @app.route("/jobs", methods=["POST"])
    def submit_job(request: Request):
        allowed, retry_after = service.limiter.check(request.client)
        if not allowed:
            return JSONResponse(
                {"error": "rate limit exceeded",
                 "retry_after": round(retry_after, 3)},
                status=429,
                headers=[("retry-after", str(max(1, int(retry_after + 0.5))))])
        job_request = validate_request(request.json())
        job = service.queue.submit(job_request, client=request.client)
        service.pool.notify()
        return JSONResponse(
            {"job": job.id, "state": job.state,
             "label": job_request.describe(),
             "links": {"self": f"/jobs/{job.id}",
                       "events": f"/jobs/{job.id}/events"}},
            status=202)

    @app.route("/jobs", methods=["GET"])
    def list_jobs(request: Request):
        return JSONResponse({
            "jobs": [job.to_dict(with_result=False)
                     for job in service.queue.jobs()],
            "counts": service.queue.counts(),
        })

    @app.route("/jobs/{job_id}", methods=["GET"])
    def get_job(request: Request):
        job = service.queue.get(request.path_params["job_id"])
        if job is None:
            return JSONResponse({"error": "no such job"}, status=404)
        return JSONResponse(job.to_dict())

    @app.route("/jobs/{job_id}/events", methods=["GET"])
    def job_events(request: Request):
        job_id = request.path_params["job_id"]
        job = service.queue.get(job_id)
        if job is None:
            return JSONResponse({"error": "no such job"}, status=404)

        async def stream():
            if job.terminal and not service.events.history(job_id):
                # Finished before this process started (or history evicted):
                # there is nothing to replay but the outcome itself.
                yield job.state, {"job": job_id, "error": job.error}
                return
            async for event in service.events.subscribe(job_id):
                yield event

        return EventStreamResponse(stream())

    @app.route("/healthz", methods=["GET"])
    def healthz(request: Request):
        return JSONResponse({
            "status": "ok",
            "queue": service.queue.counts(),
            "workers": service.config.workers,
            "cache": (str(service.cache.directory)
                      if service.cache is not None else None),
        })

    @app.route("/metrics", methods=["GET"])
    def metrics(request: Request):
        records = payload_records(RECORDER.snapshot(), run="live",
                                  pid=os.getpid())
        return TextResponse(
            to_prometheus(summarize(records)).encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8")

    return app
