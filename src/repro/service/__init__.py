"""Simulation-as-a-service: an async HTTP job API over the campaign stack.

``repro serve`` runs it; see :mod:`repro.service.routes` for the endpoint
map, :mod:`repro.service.queue` for the durable queue semantics and
:mod:`repro.service.server` for the stdlib serving path.
"""

from repro.service.app import App, JSONResponse, Request, Response
from repro.service.queue import JobQueue, default_queue_path, default_service_dir
from repro.service.rate_limit import RateLimiter
from repro.service.routes import Service, ServiceConfig, create_app
from repro.service.schemas import (
    Job,
    JobRequest,
    ValidationError,
    validate_request,
)
from repro.service.server import ServerThread, serve
from repro.service.worker import EventBook, WorkerPool

__all__ = [
    "App",
    "EventBook",
    "JSONResponse",
    "Job",
    "JobQueue",
    "JobRequest",
    "RateLimiter",
    "Request",
    "Response",
    "ServerThread",
    "Service",
    "ServiceConfig",
    "ValidationError",
    "WorkerPool",
    "create_app",
    "default_queue_path",
    "default_service_dir",
    "serve",
    "validate_request",
]
