"""Journal -> warehouse ingest: incremental sync, full rebuild, parity proof.

The JSONL journals (campaign cache + scenario sinks) remain the append-only
source of truth; this module derives the relational warehouse from them.

*Incremental sync* keeps a per-journal byte offset plus a hash of the entire
ingested prefix.  A sync re-hashes the prefix (cheap: no JSON parsing) --
if it matches and the file only grew, ingest resumes at the stored offset,
parsing nothing twice; if it does not (the cache compacts superseded lines
in place, a sink was reset), that journal's rows are dropped and re-ingested
from byte zero.  Either way the result is identical to a fresh rebuild --
"sync then sync again" is a provable no-op, which the tests assert.

*Last-wins* mirrors the journals' own load semantics: records upsert on the
same key the loaders deduplicate by -- ``(hash, simulator, schema)`` for
cache records, ``(key, simulator, schema)`` for sink records -- in journal
order, so the later line wins exactly as in
:meth:`~repro.campaign.cache.ResultCache._load` and
:meth:`~repro.scenarios.sink.ResultSink.load`.

*Parity* (:func:`parity_check`) recomputes the journals' last-wins view
(complete, parseable lines only -- a half-written tail is invisible to both
sides) and compares it bit-for-bit against the warehouse rows via their
canonical JSON.  ``repro warehouse rebuild`` runs it by default.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.campaign.cache import CACHE_FILE_NAME, default_cache_dir
from repro.campaign.journal import iter_journal_entries
from repro.campaign.result import JobResult
from repro.scenarios.sink import default_sink_dir
from repro.telemetry.journal import (
    default_telemetry_dir,
    is_current_telemetry_record,
)
from repro.warehouse.schema import (
    KIND_CACHE,
    KIND_SINK,
    KIND_TELEMETRY,
    RECORD_TABLES,
)
from repro.warehouse.store import ResultStore

#: Rows buffered per executemany flush during ingest.
BATCH_SIZE = 1000

JournalSpec = Tuple[Path, str]   # (path, KIND_CACHE | KIND_SINK | KIND_TELEMETRY)


def journal_id(path: Union[str, Path]) -> str:
    """The canonical warehouse key of one journal file."""
    return str(Path(path).expanduser().resolve())


def discover_journals(cache_dir: Optional[Union[str, Path]] = None,
                      scenario_dir: Optional[Union[str, Path]] = None,
                      telemetry_dir: Optional[Union[str, Path]] = None,
                      ) -> List[JournalSpec]:
    """Every journal the warehouse should track: cache, sinks, telemetry.

    ``cache_dir``/``scenario_dir``/``telemetry_dir`` default to the same
    resolution the cache, sink and telemetry journal use themselves
    (``REPRO_CACHE_DIR``, ``REPRO_SCENARIO_DIR``, ``REPRO_TELEMETRY_DIR``),
    so `repro warehouse sync` with no flags tracks exactly what `repro
    campaign`/`repro scenario` wrote.
    """
    def _absolute(base: Path) -> Path:
        # Journals are tracked by absolute path (journal_id resolves); a
        # CWD-relative base here would track different files than the
        # writers -- which resolve their paths at creation time -- wrote.
        return base if base.is_absolute() else Path.cwd() / base

    cache_base = _absolute(
        Path(cache_dir).expanduser() if cache_dir else default_cache_dir())
    sink_base = _absolute(
        Path(scenario_dir).expanduser() if scenario_dir else default_sink_dir())
    telemetry_base = _absolute(
        Path(telemetry_dir).expanduser() if telemetry_dir
        else default_telemetry_dir())
    journals: List[JournalSpec] = [(cache_base / CACHE_FILE_NAME, KIND_CACHE)]
    if sink_base.is_dir():
        journals.extend((path, KIND_SINK)
                        for path in sorted(sink_base.glob("*.jsonl")))
    if telemetry_base.is_dir():
        journals.extend((path, KIND_TELEMETRY)
                        for path in sorted(telemetry_base.glob("*.jsonl")))
    return journals


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JournalSyncResult:
    """Accounting for one journal in one sync pass."""

    journal: str
    kind: str
    ingested: int              # rows upserted by this pass
    skipped: int               # unusable lines seen by this pass
    offset: int                # byte offset now ingested up to
    resynced: bool             # journal was rewritten -> rows rebuilt from 0

    def render(self) -> str:
        origin = "resync" if self.resynced else "incremental"
        return (f"{self.journal} [{self.kind}]: +{self.ingested} row(s), "
                f"{self.skipped} skipped, offset {self.offset} ({origin})")


@dataclass(frozen=True)
class SyncReport:
    """Accounting for one :func:`sync` call."""

    journals: Tuple[JournalSyncResult, ...]

    @property
    def ingested(self) -> int:
        return sum(j.ingested for j in self.journals)

    def render(self) -> str:
        if not self.journals:
            return "no journals found to sync"
        lines = [j.render() for j in self.journals]
        lines.append(f"{self.ingested} row(s) ingested across "
                     f"{len(self.journals)} journal(s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _prefix_hash(path: Path, length: int) -> str:
    """SHA-256 of the first ``length`` bytes (streamed, constant memory)."""
    digest = hashlib.sha256()
    remaining = length
    with path.open("rb") as handle:
        while remaining > 0:
            chunk = handle.read(min(1 << 20, remaining))
            if not chunk:
                break
            digest.update(chunk)
            remaining -= len(chunk)
    return digest.hexdigest()


def _canonical(record: Dict) -> str:
    """The canonical JSON a record is stored and compared as."""
    return json.dumps(record, sort_keys=True)


def _versions(record: Dict) -> Optional[Tuple[str, int]]:
    """``(simulator, schema)`` when both stamps are present and well-formed."""
    try:
        return str(record["simulator"]), int(record["schema"])
    except (KeyError, TypeError, ValueError):
        return None


def _job_row(jid: str, record: Dict) -> Optional[Tuple[tuple, tuple, List[tuple]]]:
    """One cache record -> ``(slot_key, jobs row, counters rows)`` or None."""
    versions = _versions(record)
    if versions is None or "hash" not in record:
        return None
    simulator, schema = versions
    try:
        result = JobResult.from_dict(record["result"])
    except (KeyError, TypeError, ValueError):
        return None
    job_hash = str(record["hash"])
    slot = (jid, job_hash, simulator, schema)
    row = slot + (
        result.problem, result.category, result.config_name,
        result.hardware_parallelism, result.global_size, result.local_size,
        result.num_workgroups, result.num_calls, result.cycles,
        result.sim_cycles, result.overhead_cycles, int(result.extrapolated),
        result.lane_utilization, result.elapsed_seconds, _canonical(record),
    )
    counters = [slot + (name, float(value))
                for name, value in result.counters.items()]
    return (jid, job_hash, simulator, schema), row, counters


def _int_or_none(value) -> Optional[int]:
    try:
        return None if value is None else int(value)
    except (TypeError, ValueError):
        return None


def _run_row(jid: str, record: Dict) -> Optional[Tuple[tuple, tuple, List[tuple]]]:
    """One sink record -> ``(slot_key, scenario_runs row, counters rows)``."""
    versions = _versions(record)
    if versions is None:
        return None
    simulator, schema = versions
    try:
        key = str(record["key"])
        job_hash = str(record["hash"])
        scenario = str(record["scenario"])
        result = JobResult.from_dict(record["result"])
    except (KeyError, TypeError, ValueError):
        return None
    meta = record.get("meta") or {}
    slot = (jid, key, simulator, schema)
    engine = meta.get("engine")
    row = slot + (
        scenario, job_hash, result.problem, result.category,
        result.config_name,
        str(meta["strategy"]) if "strategy" in meta else None,
        None if engine is None else str(engine),
        _int_or_none(meta.get("seed")),
        str(meta["scale"]) if "scale" in meta else None,
        _int_or_none(meta.get("gws")),
        result.local_size, result.cycles, result.lane_utilization,
        result.elapsed_seconds, _canonical(meta), _canonical(record),
    )
    counters = [slot + (name, float(value))
                for name, value in result.counters.items()]
    return (jid, key, simulator, schema), row, counters


_JOBS_SQL = ("INSERT OR REPLACE INTO jobs VALUES (" + ",".join("?" * 19) + ")")
_RUNS_SQL = ("INSERT OR REPLACE INTO scenario_runs VALUES ("
             + ",".join("?" * 20) + ")")
_COUNTER_DEL_SQL = ("DELETE FROM counters WHERE journal = ? AND key = ? "
                    "AND simulator = ? AND schema_version = ?")
_COUNTER_SQL = "INSERT OR REPLACE INTO counters VALUES (?,?,?,?,?,?)"
_SPANS_SQL = ("INSERT OR REPLACE INTO spans VALUES ("
              + ",".join("?" * 11) + ")")
_METRICS_SQL = ("INSERT OR REPLACE INTO metrics VALUES ("
                + ",".join("?" * 11) + ")")


def _telemetry_row(jid: str, record: Dict, end: int) -> Optional[Tuple[str, tuple]]:
    """One telemetry record -> ``(insert_sql, row)`` or None.

    Telemetry rows are keyed by ``(journal, end_offset)``: the journal is
    append-only and never compacted, so a line's end offset is a stable
    identity that makes incremental sync a pure append.
    """
    if not is_current_telemetry_record(record):
        return None
    run = str(record.get("run", ""))
    pid = _int_or_none(record.get("pid")) or 0
    try:
        if record["kind"] == "span":
            return _SPANS_SQL, (
                jid, end, run, pid, int(record["id"]),
                _int_or_none(record.get("parent")), str(record["name"]),
                float(record["start"]), float(record["duration"]),
                _canonical(record.get("tags") or {}), _canonical(record))
        metric_type = str(record["type"])
        if metric_type == "histogram":
            return _METRICS_SQL, (
                jid, end, run, pid, metric_type, str(record["name"]),
                None, float(record["sum"]), int(record["count"]),
                _canonical(list(record["buckets"])), _canonical(record))
        if metric_type not in ("counter", "gauge"):
            return None
        return _METRICS_SQL, (
            jid, end, run, pid, metric_type, str(record["name"]),
            float(record["value"]), None, None, None, _canonical(record))
    except (KeyError, TypeError, ValueError):
        return None


def _delete_journal_rows(store: ResultStore, jid: str) -> None:
    for table in RECORD_TABLES:
        store.execute(f"DELETE FROM {table} WHERE journal = ?", (jid,))


def _sync_journal(store: ResultStore, path: Path, kind: str,
                  full: bool) -> JournalSyncResult:
    jid = journal_id(path)
    state = store.query(
        "SELECT offset, head_len, head_hash, rows, skipped FROM journals "
        "WHERE journal = ?", (jid,)).rows
    if not path.exists():
        # A journal the warehouse knew about disappeared (cache cleared,
        # sink reset): its derived rows must go too.
        _delete_journal_rows(store, jid)
        store.execute("DELETE FROM journals WHERE journal = ?", (jid,))
        store.commit()
        return JournalSyncResult(journal=jid, kind=kind, ingested=0,
                                 skipped=0, offset=0, resynced=bool(state))

    size = path.stat().st_size
    offset, head_len, head_hash, rows_total, skipped_total = (
        state[0] if state else (0, 0, "", 0, 0))
    resync = full or not state
    if not resync and (size < offset
                       or _prefix_hash(path, head_len) != head_hash):
        # The ingested prefix changed under us: the cache compacted
        # superseded lines in place, or the journal was replaced wholesale.
        resync = True
    if resync:
        _delete_journal_rows(store, jid)
        offset = rows_total = skipped_total = 0

    ingested = skipped = 0
    if kind == KIND_TELEMETRY:
        # Telemetry rows target two tables (spans + metrics) and carry no
        # counters; they batch per destination statement.
        span_rows: List[tuple] = []
        metric_rows: List[tuple] = []

        def flush() -> None:
            if span_rows:
                store.executemany(_SPANS_SQL, span_rows)
                span_rows.clear()
            if metric_rows:
                store.executemany(_METRICS_SQL, metric_rows)
                metric_rows.clear()

        for record, end in iter_journal_entries(path, offset,
                                                complete_only=True):
            built = None if record is None else _telemetry_row(jid, record, end)
            if built is None:
                skipped += 1
            else:
                sql, row = built
                (span_rows if sql is _SPANS_SQL else metric_rows).append(row)
                ingested += 1
                if len(span_rows) + len(metric_rows) >= BATCH_SIZE:
                    flush()
            offset = end
        flush()
    else:
        row_builder = _job_row if kind == KIND_CACHE else _run_row
        insert_sql = _JOBS_SQL if kind == KIND_CACHE else _RUNS_SQL
        rows: List[tuple] = []
        counter_slots: List[tuple] = []
        counter_rows: List[tuple] = []

        def flush() -> None:
            if not rows:
                return
            store.executemany(insert_sql, rows)
            store.executemany(_COUNTER_DEL_SQL, counter_slots)
            store.executemany(_COUNTER_SQL, counter_rows)
            rows.clear()
            counter_slots.clear()
            counter_rows.clear()

        for record, end in iter_journal_entries(path, offset,
                                                complete_only=True):
            built = None if record is None else row_builder(jid, record)
            if built is None:
                skipped += 1
            else:
                slot, row, counters = built
                rows.append(row)
                counter_slots.append(slot)
                counter_rows.extend(counters)
                ingested += 1
                if len(rows) >= BATCH_SIZE:
                    flush()
            offset = end
        flush()

    store.execute(
        "INSERT OR REPLACE INTO journals VALUES (?,?,?,?,?,?,?,?)",
        (jid, kind, offset, offset, _prefix_hash(path, offset),
         rows_total + ingested, skipped_total + skipped, time.time()))
    store.commit()
    return JournalSyncResult(journal=jid, kind=kind, ingested=ingested,
                             skipped=skipped, offset=offset, resynced=resync)


# ----------------------------------------------------------------------
def sync(store: ResultStore,
         cache_dir: Optional[Union[str, Path]] = None,
         scenario_dir: Optional[Union[str, Path]] = None,
         telemetry_dir: Optional[Union[str, Path]] = None,
         journals: Optional[Iterable[JournalSpec]] = None,
         full: bool = False) -> SyncReport:
    """Bring the warehouse up to date with the journals (incrementally).

    ``journals`` overrides discovery for callers that track an explicit set;
    everyone else gets the cache journal plus every sink in the scenario
    directory plus every telemetry journal.  ``full=True`` forces a
    from-zero resync of every journal without touching other journals' rows.
    """
    specs = list(journals) if journals is not None else discover_journals(
        cache_dir, scenario_dir, telemetry_dir)
    with_span = _ingest_span(store)
    results = tuple(_sync_journal(store, Path(path), kind, full)
                    for path, kind in specs)
    with_span(sum(j.ingested for j in results))
    return SyncReport(journals=results)


def _ingest_span(store: ResultStore):
    """Start timing one warehouse sync; returns a ``finish(rows)`` callback."""
    from repro.telemetry.recorder import RECORDER
    if not RECORDER.enabled:
        return lambda rows: None
    start_wall = time.time()
    start_perf = time.perf_counter()

    def finish(rows: int) -> None:
        RECORDER.record_span("warehouse.sync", start_wall,
                             time.perf_counter() - start_perf,
                             backend=store.backend, rows=rows)
        RECORDER.count("warehouse.rows_ingested", rows)

    return finish


def rebuild(store: ResultStore,
            cache_dir: Optional[Union[str, Path]] = None,
            scenario_dir: Optional[Union[str, Path]] = None,
            telemetry_dir: Optional[Union[str, Path]] = None,
            journals: Optional[Iterable[JournalSpec]] = None) -> SyncReport:
    """Drop every derived row and re-ingest all journals from byte zero.

    Idempotent by construction: the warehouse after ``rebuild`` is a pure
    function of the journals' bytes, so rebuilding twice -- or rebuilding
    after any sequence of incremental syncs -- lands on identical contents
    (:func:`parity_check` proves it against the journals themselves).
    """
    for table in RECORD_TABLES:
        store.execute(f"DELETE FROM {table}")
    store.execute("DELETE FROM journals")
    store.commit()
    return sync(store, cache_dir=cache_dir, scenario_dir=scenario_dir,
                telemetry_dir=telemetry_dir, journals=journals, full=True)


# ----------------------------------------------------------------------
def _journal_view(path: Path, kind: str) -> Dict[tuple, str]:
    """The journal's last-wins view: slot key -> canonical record JSON.

    Complete, parseable, version-stamped lines only -- the same records
    ingest accepts -- folded last-wins on the same slot key ingest upserts
    on.  This is recomputed straight from the journal bytes, sharing no
    code path with the warehouse contents it is compared against.
    """
    jid = journal_id(path)
    row_builder = _job_row if kind == KIND_CACHE else _run_row
    view: Dict[tuple, str] = {}
    for record, _ in iter_journal_entries(path, 0, complete_only=True):
        built = None if record is None else row_builder(jid, record)
        if built is not None:
            slot, row, _counters = built
            view[slot] = row[-1]          # the canonical JSON column
    return view


def _telemetry_view(path: Path) -> Dict[int, str]:
    """The telemetry journal's view: line end offset -> canonical JSON.

    The journal is append-only (no last-wins fold): every complete, usable
    line is exactly one warehouse row, identified by its end offset.
    """
    view: Dict[int, str] = {}
    for record, end in iter_journal_entries(path, 0, complete_only=True):
        if record is not None and is_current_telemetry_record(record):
            view[end] = _canonical(record)
    return view


def _telemetry_parity(store: ResultStore, path: Path,
                      mismatches: List[str]) -> None:
    """Compare one telemetry journal against its spans + metrics rows."""
    jid = journal_id(path)
    expected = _telemetry_view(path) if path.exists() else {}
    got: Dict[int, str] = {}
    for table in ("spans", "metrics"):
        for offset, raw in store.query(
                f"SELECT offset, raw FROM {table} WHERE journal = ?",
                (jid,)).rows:
            got[int(offset)] = raw
    for offset in expected.keys() - got.keys():
        mismatches.append(f"{jid}: missing telemetry row @ offset {offset}")
    for offset in got.keys() - expected.keys():
        mismatches.append(f"{jid}: phantom telemetry row @ offset {offset}")
    for offset in expected.keys() & got.keys():
        if expected[offset] != got[offset]:
            mismatches.append(f"{jid}: telemetry row @ offset {offset} "
                              f"differs from the journal line")


def parity_check(store: ResultStore,
                 cache_dir: Optional[Union[str, Path]] = None,
                 scenario_dir: Optional[Union[str, Path]] = None,
                 telemetry_dir: Optional[Union[str, Path]] = None,
                 journals: Optional[Iterable[JournalSpec]] = None) -> List[str]:
    """Prove warehouse rows bit-equal to the journals' last-wins view.

    Returns a list of human-readable mismatches (empty = parity holds):
    missing rows, phantom rows, rows whose canonical JSON differs, and
    counter rows whose count disagrees with the journal's records.
    Telemetry journals compare per line (offset-keyed, no last-wins fold).
    """
    specs = list(journals) if journals is not None else discover_journals(
        cache_dir, scenario_dir, telemetry_dir)
    mismatches: List[str] = []
    for path, kind in specs:
        path = Path(path)
        jid = journal_id(path)
        if kind == KIND_TELEMETRY:
            _telemetry_parity(store, path, mismatches)
            continue
        expected = _journal_view(path, kind) if path.exists() else {}
        table = "jobs" if kind == KIND_CACHE else "scenario_runs"
        key_col = "hash" if kind == KIND_CACHE else "key"
        got = {
            (jid, row[0], row[1], int(row[2])): row[3]
            for row in store.query(
                f"SELECT {key_col}, simulator, schema_version, raw "
                f"FROM {table} WHERE journal = ?", (jid,)).rows
        }
        for slot in expected.keys() - got.keys():
            mismatches.append(f"{jid}: missing {table} row {slot[1]}")
        for slot in got.keys() - expected.keys():
            mismatches.append(f"{jid}: phantom {table} row {slot[1]}")
        for slot in expected.keys() & got.keys():
            if expected[slot] != got[slot]:
                mismatches.append(f"{jid}: {table} row {slot[1]} differs "
                                  f"from the journal's last-wins record")
        expected_counters = sum(
            len(json.loads(raw)["result"].get("counters", {}))
            for raw in expected.values())
        counted = store.query(
            "SELECT COUNT(*) FROM counters WHERE journal = ?", (jid,)).rows[0][0]
        if counted != expected_counters:
            mismatches.append(
                f"{jid}: {counted} counter row(s) vs {expected_counters} "
                f"in the journal view")
    return mismatches
