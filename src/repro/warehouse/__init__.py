"""Queryable results warehouse: SQL analytics over every result ever journaled.

The campaign cache and the scenario sinks journal every completed job as
append-only JSONL -- write-optimised, crash-safe, and unqueryable at scale:
any cross-campaign question means re-parsing whole files.  This subsystem
derives a *second, relational tier* from those journals without demoting
them: the JSONL stays the source of truth, the warehouse is a rebuildable
projection of it (the same ledger/projection split the Engram-style designs
use, and S2RDF's move of translating a log-structured model into relational
tables to make analytics tractable).

* :mod:`~repro.warehouse.store` -- the :class:`ResultStore` protocol and
  :func:`open_store`: a stdlib ``sqlite3`` backend always available, an
  optional DuckDB backend behind ``REPRO_WAREHOUSE_BACKEND=duckdb``
  (import-guarded; explicitly errors when requested but missing).
* :mod:`~repro.warehouse.schema` -- the normalized tables: ``jobs``,
  ``scenario_runs``, ``counters``, the telemetry projection (``spans`` +
  ``metrics``), plus per-journal sync state.
* :mod:`~repro.warehouse.ingest` -- streaming journal ingest: incremental
  :func:`sync` via per-journal byte offsets (rewrites detected by prefix
  hash), idempotent full :func:`rebuild`, and :func:`parity_check` proving
  warehouse rows bit-equal to the journals' last-wins view.
* :mod:`~repro.warehouse.queries` -- canned analytics (``best-lws``,
  ``speedup``, ``cache-trends``, ``scenarios``), guarded raw SQL, status
  rendering, and the warehouse-backed sink view ``scenario report`` serves
  from.

Quick start::

    from repro.warehouse import open_store, sync, run_canned

    store = open_store()                       # ~/.cache/repro/warehouse.sqlite
    print(sync(store).render())                # ingest cache + sink journals
    print(run_canned(store, "best-lws").render())

CLI: ``repro warehouse sync | rebuild | status | query | report``.
"""

from repro.warehouse.ingest import (
    JournalSyncResult,
    SyncReport,
    discover_journals,
    journal_id,
    parity_check,
    rebuild,
    sync,
)
from repro.warehouse.queries import (
    CANNED,
    CannedQuery,
    WarehouseSinkView,
    journal_synced,
    render_status,
    run_canned,
    run_sql,
    sink_records,
    status_payload,
    table_counts,
)
from repro.warehouse.schema import (
    KIND_CACHE,
    KIND_SINK,
    KIND_TELEMETRY,
    WAREHOUSE_SCHEMA_VERSION,
)
from repro.warehouse.store import (
    BACKEND_ENV,
    BACKENDS,
    DEFAULT_BACKEND,
    PATH_ENV,
    BackendUnavailableError,
    QueryResult,
    ResultStore,
    WarehouseError,
    default_warehouse_path,
    open_store,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "BackendUnavailableError",
    "CANNED",
    "CannedQuery",
    "DEFAULT_BACKEND",
    "JournalSyncResult",
    "KIND_CACHE",
    "KIND_SINK",
    "KIND_TELEMETRY",
    "PATH_ENV",
    "QueryResult",
    "ResultStore",
    "SyncReport",
    "WAREHOUSE_SCHEMA_VERSION",
    "WarehouseError",
    "WarehouseSinkView",
    "default_warehouse_path",
    "discover_journals",
    "journal_id",
    "journal_synced",
    "open_store",
    "parity_check",
    "rebuild",
    "render_status",
    "resolve_backend",
    "run_canned",
    "run_sql",
    "sink_records",
    "status_payload",
    "sync",
    "table_counts",
]
