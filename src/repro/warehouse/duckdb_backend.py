"""The optional DuckDB warehouse backend (columnar, vectorised analytics).

DuckDB is deliberately *not* a dependency of the repository: this module
imports it lazily and degrades to an explicit
:class:`~repro.warehouse.store.BackendUnavailableError` when the package is
missing.  Selecting the backend (``REPRO_WAREHOUSE_BACKEND=duckdb`` or
``--backend duckdb``) on a machine without it must fail loudly -- silently
serving sqlite instead would misreport every benchmark comparison between
the two.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.warehouse.store import (
    BackendUnavailableError,
    QueryResult,
    WarehouseError,
)

try:
    import duckdb
except ImportError:                                    # pragma: no cover
    duckdb = None


class DuckDBStore:
    """:class:`~repro.warehouse.store.ResultStore` over DuckDB.

    The SQL surface the warehouse uses (qmark parameters, ``INSERT OR
    REPLACE``, ``CREATE TABLE IF NOT EXISTS``) is native DuckDB, so this
    backend is connection plumbing only.
    """

    backend = "duckdb"

    def __init__(self, path: Path, read_only: bool = False):
        if duckdb is None:
            raise BackendUnavailableError(
                "the 'duckdb' backend was requested but the duckdb package "
                "is not installed; install duckdb or use the default sqlite "
                "backend (REPRO_WAREHOUSE_BACKEND=sqlite)")
        self.path = Path(path)
        self.read_only = read_only
        if read_only and not self.path.exists():
            raise WarehouseError(
                f"no warehouse at {self.path}; run `repro warehouse sync` first")
        if not read_only:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = duckdb.connect(str(self.path), read_only=read_only)

    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence = ()) -> None:
        self._conn.execute(sql, list(params))

    def executemany(self, sql: str, rows: Sequence[Sequence]) -> None:
        if rows:
            self._conn.executemany(sql, [list(row) for row in rows])

    def query(self, sql: str, params: Sequence = ()) -> QueryResult:
        try:
            cursor = self._conn.execute(sql, list(params))
        except Exception as error:      # duckdb raises its own hierarchy
            raise WarehouseError(f"duckdb query failed: {error}") from error
        columns = tuple(d[0] for d in cursor.description) if cursor.description else ()
        return QueryResult(columns=columns, rows=[tuple(r) for r in cursor.fetchall()])

    def commit(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "DuckDBStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
