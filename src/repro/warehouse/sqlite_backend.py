"""The always-available stdlib :mod:`sqlite3` warehouse backend."""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Sequence

from repro.warehouse.store import QueryResult, WarehouseError


class SqliteStore:
    """:class:`~repro.warehouse.store.ResultStore` over stdlib sqlite3.

    ``read_only=True`` opens the database through a ``mode=ro`` URI, so raw
    user SQL physically cannot write -- the read-only guarantee does not
    depend on parsing the statement.
    """

    backend = "sqlite"

    def __init__(self, path: Path, read_only: bool = False):
        self.path = Path(path)
        self.read_only = read_only
        if read_only:
            if not self.path.exists():
                raise WarehouseError(
                    f"no warehouse at {self.path}; run `repro warehouse sync` first")
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(self.path)
            # The warehouse is derived data: throughput over durability.
            self._conn.execute("PRAGMA synchronous = OFF")
            self._conn.execute("PRAGMA journal_mode = MEMORY")

    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence = ()) -> None:
        self._conn.execute(sql, tuple(params))

    def executemany(self, sql: str, rows: Sequence[Sequence]) -> None:
        self._conn.executemany(sql, [tuple(row) for row in rows])

    def query(self, sql: str, params: Sequence = ()) -> QueryResult:
        try:
            cursor = self._conn.execute(sql, tuple(params))
        except sqlite3.Error as error:
            raise WarehouseError(f"sqlite query failed: {error}") from error
        columns = tuple(d[0] for d in cursor.description) if cursor.description else ()
        return QueryResult(columns=columns, rows=cursor.fetchall())

    def commit(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self.read_only:
            self._conn.commit()
        self.close()
