"""The warehouse's relational schema, shared by every backend.

The JSONL journals stay the append-only source of truth; the warehouse is a
*derived* store the journals are synced (or fully rebuilt) into, so the DDL
below is deliberately written in the dialect subset that both stdlib
``sqlite3`` and DuckDB accept verbatim -- plain ``CREATE TABLE IF NOT
EXISTS``, qmark parameters, ``INSERT OR REPLACE`` upserts.

Tables
------
``jobs``
    One row per cache-journal record, last-wins per ``(journal, hash,
    simulator, schema_version)`` -- exactly the key the cache itself keeps
    when it loads and compacts.  Columns flatten the
    :class:`~repro.campaign.result.JobResult` summary; ``raw`` preserves the
    canonical journal line so rebuild parity is provable bit-for-bit and a
    record can always be reconstructed.
``scenario_runs``
    One row per scenario-sink record, last-wins per ``(journal, key,
    simulator, schema_version)``.  Planner meta tags (strategy, engine,
    seed, ...) are flattened into columns so cross-scenario SQL never parses
    JSON; the full meta dict and the canonical line ride along as text.
``counters``
    The normalized performance-counter rows of both record kinds: one
    ``(journal, key, name, value)`` row per counter, keyed alongside the
    owning record's version columns.
``spans`` / ``metrics``
    The telemetry journal's two record kinds, keyed by ``(journal, byte
    offset)`` -- the journal is append-only and never compacted, so the
    offset is a stable identity and incremental sync appends naturally.
    ``spans`` flattens one finished span per row (id/parent/name/start/
    duration, tags as JSON); ``metrics`` holds counter and gauge values
    plus histogram sums/counts/buckets.  Both keep the canonical line in
    ``raw`` so telemetry shares the same bit-equal parity proof as results.
``journals``
    Per-journal sync state: the byte offset ingested so far, a hash of the
    journal's head (so an in-place compaction/rewrite is detected and
    triggers a clean resync of that journal), and row accounting.
``meta``
    The warehouse's own schema version; a bump drops and recreates
    everything on next open (the journals rebuild it).
"""

from __future__ import annotations

#: Bump when the warehouse table layout changes; mismatched stores are
#: dropped and rebuilt from the journals on next open.
#: v2: added the telemetry projection (``spans`` + ``metrics`` tables).
WAREHOUSE_SCHEMA_VERSION = 2

#: Journal kinds (the ``journals.kind`` column).
KIND_CACHE = "cache"
KIND_SINK = "sink"
KIND_TELEMETRY = "telemetry"

TABLES = ("meta", "journals", "jobs", "scenario_runs", "counters",
          "spans", "metrics")

#: Tables holding journal-derived rows (cleared per-journal on resync).
RECORD_TABLES = ("jobs", "scenario_runs", "counters", "spans", "metrics")

DDL = [
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS journals (
        journal   TEXT PRIMARY KEY,
        kind      TEXT NOT NULL,
        offset    BIGINT NOT NULL,
        head_len  BIGINT NOT NULL,
        head_hash TEXT NOT NULL,
        rows      BIGINT NOT NULL,
        skipped   BIGINT NOT NULL,
        synced_at DOUBLE NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS jobs (
        journal              TEXT NOT NULL,
        hash                 TEXT NOT NULL,
        simulator            TEXT NOT NULL,
        schema_version       INTEGER NOT NULL,
        problem              TEXT NOT NULL,
        category             TEXT NOT NULL,
        config_name          TEXT NOT NULL,
        hardware_parallelism INTEGER NOT NULL,
        global_size          INTEGER NOT NULL,
        local_size           INTEGER NOT NULL,
        num_workgroups       INTEGER NOT NULL,
        num_calls            INTEGER NOT NULL,
        cycles               BIGINT NOT NULL,
        sim_cycles           BIGINT NOT NULL,
        overhead_cycles      BIGINT NOT NULL,
        extrapolated         INTEGER NOT NULL,
        lane_utilization     DOUBLE NOT NULL,
        elapsed_seconds      DOUBLE NOT NULL,
        raw                  TEXT NOT NULL,
        PRIMARY KEY (journal, hash, simulator, schema_version)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS scenario_runs (
        journal          TEXT NOT NULL,
        key              TEXT NOT NULL,
        simulator        TEXT NOT NULL,
        schema_version   INTEGER NOT NULL,
        scenario         TEXT NOT NULL,
        hash             TEXT NOT NULL,
        problem          TEXT,
        category         TEXT,
        config_name      TEXT,
        strategy         TEXT,
        engine           TEXT,
        seed             INTEGER,
        scale            TEXT,
        gws              INTEGER,
        local_size       INTEGER,
        cycles           BIGINT NOT NULL,
        lane_utilization DOUBLE NOT NULL,
        elapsed_seconds  DOUBLE NOT NULL,
        meta             TEXT NOT NULL,
        raw              TEXT NOT NULL,
        PRIMARY KEY (journal, key, simulator, schema_version)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS counters (
        journal        TEXT NOT NULL,
        key            TEXT NOT NULL,
        simulator      TEXT NOT NULL,
        schema_version INTEGER NOT NULL,
        name           TEXT NOT NULL,
        value          DOUBLE NOT NULL,
        PRIMARY KEY (journal, key, simulator, schema_version, name)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS spans (
        journal  TEXT NOT NULL,
        offset   BIGINT NOT NULL,
        run      TEXT NOT NULL,
        pid      BIGINT NOT NULL,
        span_id  BIGINT NOT NULL,
        parent   BIGINT,
        name     TEXT NOT NULL,
        start    DOUBLE NOT NULL,
        duration DOUBLE NOT NULL,
        tags     TEXT NOT NULL,
        raw      TEXT NOT NULL,
        PRIMARY KEY (journal, offset)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS metrics (
        journal      TEXT NOT NULL,
        offset       BIGINT NOT NULL,
        run          TEXT NOT NULL,
        pid          BIGINT NOT NULL,
        metric_type  TEXT NOT NULL,
        name         TEXT NOT NULL,
        value        DOUBLE,
        value_sum    DOUBLE,
        observations BIGINT,
        buckets      TEXT,
        raw          TEXT NOT NULL,
        PRIMARY KEY (journal, offset)
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_jobs_problem ON jobs (problem, config_name)",
    "CREATE INDEX IF NOT EXISTS idx_runs_scenario ON scenario_runs (scenario)",
    "CREATE INDEX IF NOT EXISTS idx_counters_name ON counters (name)",
    "CREATE INDEX IF NOT EXISTS idx_spans_name ON spans (name)",
    "CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name)",
]
