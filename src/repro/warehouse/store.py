"""The ``ResultStore`` protocol and the backend selection front door.

The warehouse follows the SWORD dual-backend pattern: one protocol, several
interchangeable SQL engines behind it, the active one selected by an
environment variable.  The stdlib :mod:`sqlite3` backend is always available
and is the default; the DuckDB backend is optional and import-guarded --
requesting it on a machine without the ``duckdb`` package is an *explicit*
:class:`BackendUnavailableError`, never a silent fallback to sqlite (a
silently substituted backend would make "it worked on my machine" debugging
hell).

Selection order for :func:`open_store`:

1. an explicit ``backend=`` argument,
2. the ``REPRO_WAREHOUSE_BACKEND`` environment variable (``sqlite`` |
   ``duckdb``),
3. ``sqlite``.

The database file defaults to ``<cache dir>/warehouse.<backend>`` (the
cache directory already honours ``REPRO_CACHE_DIR``/XDG), overridable with
``REPRO_WAREHOUSE_PATH`` or an explicit ``path=``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Protocol, Sequence, Tuple, Union

from repro.campaign.cache import default_cache_dir
from repro.warehouse.schema import DDL, WAREHOUSE_SCHEMA_VERSION

#: Environment variable selecting the warehouse backend.
BACKEND_ENV = "REPRO_WAREHOUSE_BACKEND"
#: Environment variable overriding the warehouse database path.
PATH_ENV = "REPRO_WAREHOUSE_PATH"
#: Known backends, in preference order.
BACKENDS = ("sqlite", "duckdb")
DEFAULT_BACKEND = "sqlite"


class WarehouseError(RuntimeError):
    """Any warehouse-level failure (bad backend, bad query, parity breach)."""


class BackendUnavailableError(WarehouseError):
    """A backend was explicitly requested but its driver is not importable."""


@dataclass(frozen=True)
class QueryResult:
    """One query's column names and rows, backend-agnostic."""

    columns: Tuple[str, ...]
    rows: List[tuple]

    def render(self) -> str:
        """Markdown/ASCII table (same renderer as every other repro table)."""
        from repro.experiments.report import render_table

        formatted = [["" if cell is None else
                      (f"{cell:.4g}" if isinstance(cell, float) else str(cell))
                      for cell in row] for row in self.rows]
        return render_table(list(self.columns), formatted)


class ResultStore(Protocol):
    """What every warehouse backend provides.

    Implementations are thin: connection management plus qmark-style
    ``execute``/``executemany``/``query``.  All SQL the warehouse runs is
    written in the sqlite-and-DuckDB-common dialect, so backends never
    translate statements.
    """

    backend: str
    path: Path

    def execute(self, sql: str, params: Sequence = ()) -> None: ...

    def executemany(self, sql: str, rows: Sequence[Sequence]) -> None: ...

    def query(self, sql: str, params: Sequence = ()) -> QueryResult: ...

    def commit(self) -> None: ...

    def close(self) -> None: ...


def resolve_backend(backend: Optional[str] = None) -> str:
    """The backend name after argument/environment/default resolution."""
    name = backend if backend else os.environ.get(BACKEND_ENV, DEFAULT_BACKEND)
    name = name.strip().lower()
    if name not in BACKENDS:
        raise WarehouseError(
            f"unknown warehouse backend {name!r}; expected one of "
            f"{', '.join(BACKENDS)} (via argument or ${BACKEND_ENV})")
    return name


def default_warehouse_path(backend: str) -> Path:
    """Where the warehouse database lives by default for ``backend``."""
    override = os.environ.get(PATH_ENV)
    if override:
        return Path(override).expanduser()
    return default_cache_dir() / f"warehouse.{backend}"


def open_store(path: Optional[Union[str, Path]] = None,
               backend: Optional[str] = None,
               read_only: bool = False) -> ResultStore:
    """Open (creating if needed) the warehouse under the resolved backend.

    The schema is created on first open; a store written under a different
    ``WAREHOUSE_SCHEMA_VERSION`` is dropped and recreated empty -- the
    journals are the source of truth, so a schema bump costs one rebuild,
    never data.
    """
    name = resolve_backend(backend)
    db_path = Path(path).expanduser() if path is not None else default_warehouse_path(name)
    if name == "duckdb":
        from repro.warehouse.duckdb_backend import DuckDBStore

        store: ResultStore = DuckDBStore(db_path, read_only=read_only)
    else:
        from repro.warehouse.sqlite_backend import SqliteStore

        store = SqliteStore(db_path, read_only=read_only)
    if not read_only:
        _ensure_schema(store)
    return store


def _ensure_schema(store: ResultStore) -> None:
    """Create the tables; reset the store on a warehouse-schema mismatch."""
    for statement in DDL:
        store.execute(statement)
    current = str(WAREHOUSE_SCHEMA_VERSION)
    rows = store.query("SELECT value FROM meta WHERE key = 'schema_version'").rows
    if rows and rows[0][0] == current:
        return
    if rows:
        # Stale layout: drop everything and recreate; callers re-sync.
        from repro.warehouse.schema import TABLES

        for table in TABLES:
            store.execute(f"DROP TABLE IF EXISTS {table}")
        for statement in DDL:
            store.execute(statement)
    store.execute("INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                  ("schema_version", current))
    store.commit()
