"""The warehouse's query surface: canned analytics + guarded raw SQL.

Canned queries answer the cross-campaign questions the JSONL journals never
could without re-parsing every file -- "best lws per kernel across all
history", "how much simulation time has the cache banked", "what did each
scenario cover".  They are plain SQL in the sqlite-and-DuckDB-common
dialect, filtered to the *current* simulator version by default (mixing
cycle models in one aggregate would be silently wrong; ``cache-trends``
deliberately spans versions, that being its point).

Raw SQL (``repro warehouse query``) is read-only twice over: the statement
must be a single SELECT/WITH, *and* the CLI opens the store in read-only
mode, so the guarantee does not rest on string inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.campaign.spec import CACHE_SCHEMA_VERSION, simulator_version
from repro.scenarios.sink import SinkRecord
from repro.warehouse.ingest import journal_id
from repro.warehouse.schema import RECORD_TABLES
from repro.warehouse.store import QueryResult, ResultStore, WarehouseError


@dataclass(frozen=True)
class CannedQuery:
    """One named analytics query."""

    name: str
    description: str
    sql: str
    params: Callable[[], tuple] = tuple


def _current() -> tuple:
    return (simulator_version(), CACHE_SCHEMA_VERSION)


CANNED: Dict[str, CannedQuery] = {q.name: q for q in (
    CannedQuery(
        name="best-lws",
        description="per (kernel, machine): the lws with the fewest cycles "
                    "across every campaign ever cached",
        sql="""
            SELECT j.problem, j.config_name,
                   MIN(j.local_size) AS best_lws, j.cycles AS best_cycles
            FROM jobs j
            JOIN (SELECT problem, config_name, MIN(cycles) AS best_cycles
                  FROM jobs WHERE simulator = ? AND schema_version = ?
                  GROUP BY problem, config_name) m
              ON m.problem = j.problem AND m.config_name = j.config_name
             AND m.best_cycles = j.cycles
            WHERE j.simulator = ? AND j.schema_version = ?
            GROUP BY j.problem, j.config_name, j.cycles
            ORDER BY j.problem, j.config_name
        """,
        params=lambda: _current() * 2,
    ),
    CannedQuery(
        name="speedup",
        description="per (kernel, baseline strategy): average and worst "
                    "baseline/ours cycle ratio over every scenario run",
        sql="""
            SELECT o.problem, b.strategy AS baseline, COUNT(*) AS points,
                   AVG(1.0 * b.cycles / o.cycles) AS avg_ratio,
                   MIN(1.0 * b.cycles / o.cycles) AS worst_ratio
            FROM scenario_runs o
            JOIN scenario_runs b
              ON b.journal = o.journal AND b.scenario = o.scenario
             AND b.problem = o.problem AND b.config_name = o.config_name
             AND b.seed = o.seed AND b.scale = o.scale
             AND b.simulator = o.simulator
             AND b.schema_version = o.schema_version
             AND COALESCE(b.gws, -1) = COALESCE(o.gws, -1)
             AND COALESCE(b.engine, '') = COALESCE(o.engine, '')
            WHERE o.strategy IN ('ours', 'runtime')
              AND b.strategy NOT IN ('ours', 'runtime')
              AND o.simulator = ? AND o.schema_version = ?
            GROUP BY o.problem, b.strategy
            ORDER BY o.problem, b.strategy
        """,
        params=_current,
    ),
    CannedQuery(
        name="cache-trends",
        description="per simulator version: cached entries, kernels covered "
                    "and banked simulation seconds (what warm hits save)",
        sql="""
            SELECT simulator, COUNT(*) AS entries,
                   COUNT(DISTINCT problem) AS problems,
                   COUNT(DISTINCT config_name) AS configs,
                   SUM(elapsed_seconds) AS banked_seconds
            FROM jobs
            GROUP BY simulator
            ORDER BY simulator
        """,
    ),
    CannedQuery(
        name="span-times",
        description="per telemetry span name: count, total/avg/max seconds "
                    "across every ingested telemetry journal",
        sql="""
            SELECT name, COUNT(*) AS spans,
                   SUM(duration) AS total_seconds,
                   AVG(duration) AS avg_seconds,
                   MAX(duration) AS max_seconds
            FROM spans
            GROUP BY name
            ORDER BY total_seconds DESC
        """,
    ),
    CannedQuery(
        name="scenarios",
        description="per scenario: recorded points, grid coverage and "
                    "cycle range across every sink ever synced",
        sql="""
            SELECT scenario, COUNT(*) AS points,
                   COUNT(DISTINCT problem) AS problems,
                   COUNT(DISTINCT config_name) AS configs,
                   COUNT(DISTINCT strategy) AS strategies,
                   MIN(cycles) AS min_cycles, MAX(cycles) AS max_cycles
            FROM scenario_runs
            WHERE simulator = ? AND schema_version = ?
            GROUP BY scenario
            ORDER BY scenario
        """,
        params=_current,
    ),
)}


def run_canned(store: ResultStore, name: str) -> QueryResult:
    """Execute one canned query by name."""
    if name not in CANNED:
        known = ", ".join(sorted(CANNED))
        raise WarehouseError(f"unknown canned query {name!r}; expected one "
                             f"of: {known}")
    canned = CANNED[name]
    return store.query(canned.sql, canned.params())


def run_sql(store: ResultStore, sql: str) -> QueryResult:
    """Execute one raw read-only statement (SELECT/WITH only)."""
    statement = sql.strip().rstrip(";").strip()
    if not statement:
        raise WarehouseError("empty query")
    if ";" in statement:
        raise WarehouseError("one statement per query")
    head = statement.split(None, 1)[0].lower()
    if head not in ("select", "with"):
        raise WarehouseError(
            f"read-only surface: statements must start with SELECT or WITH, "
            f"got {head!r}")
    return store.query(statement)


# ----------------------------------------------------------------------
def table_counts(store: ResultStore) -> Dict[str, int]:
    """Row count per derived table."""
    return {table: store.query(f"SELECT COUNT(*) FROM {table}").rows[0][0]
            for table in RECORD_TABLES}


def render_status(store: ResultStore) -> str:
    """Human-readable warehouse state: backend, tables, per-journal sync.

    This is what ``repro warehouse status`` and ``repro campaign status
    --source warehouse`` print: per-table row counts plus each journal's
    last-sync offset, instead of the journal-side lines/KiB accounting.
    """
    size = store.path.stat().st_size if store.path.exists() else 0
    lines = [
        f"warehouse       : {store.path} ({store.backend} backend, "
        f"{size / 1024:.1f} KiB)",
    ]
    for table, count in table_counts(store).items():
        lines.append(f"{table:<16}: {count} row(s)")
    journals = store.query(
        "SELECT journal, kind, offset, rows, skipped FROM journals "
        "ORDER BY journal").rows
    if not journals:
        lines.append("no journals synced yet (run `repro warehouse sync`)")
    for journal, kind, offset, rows, skipped in journals:
        path = Path(journal)
        behind = ""
        if path.exists():
            delta = path.stat().st_size - offset
            behind = " (synced)" if delta == 0 else f" ({delta} byte(s) behind)"
        lines.append(f"journal [{kind:<5}] : {journal} -- offset {offset}, "
                     f"{rows} row(s), {skipped} skipped{behind}")
    return "\n".join(lines)


def status_payload(store: ResultStore) -> Dict[str, object]:
    """The warehouse state as JSON-ready data (``--json`` surfaces).

    Same facts as :func:`render_status`: backend, per-table row counts and
    per-journal sync offsets.
    """
    size = store.path.stat().st_size if store.path.exists() else 0
    journals = []
    for journal, kind, offset, rows, skipped in store.query(
            "SELECT journal, kind, offset, rows, skipped FROM journals "
            "ORDER BY journal").rows:
        path = Path(journal)
        behind = path.stat().st_size - offset if path.exists() else None
        journals.append({
            "journal": journal,
            "kind": kind,
            "offset": offset,
            "rows": rows,
            "skipped": skipped,
            "bytes_behind": behind,
            "synced": behind == 0,
        })
    return {
        "warehouse": str(store.path),
        "backend": store.backend,
        "size_bytes": size,
        "tables": table_counts(store),
        "journals": journals,
    }


# ----------------------------------------------------------------------
def journal_synced(store: ResultStore, path: Union[str, Path]) -> bool:
    """True when ``path`` is fully ingested (offset covers the whole file)."""
    target = Path(path)
    if not target.exists():
        return False
    rows = store.query("SELECT offset FROM journals WHERE journal = ?",
                       (journal_id(target),)).rows
    return bool(rows) and rows[0][0] == target.stat().st_size


def sink_records(store: ResultStore, path: Union[str, Path]) -> Dict[str, SinkRecord]:
    """Reconstruct a sink's ``{key: SinkRecord}`` view from warehouse rows.

    The current-version slice of ``scenario_runs`` for that journal, rebuilt
    from the canonical JSON -- bit-equal to ``ResultSink(path).load()`` once
    the journal is synced (that is exactly what the parity check proves), so
    ``repro scenario report --source warehouse`` renders the identical
    report without touching the JSONL file.
    """
    rows = store.query(
        "SELECT key, raw FROM scenario_runs "
        "WHERE journal = ? AND simulator = ? AND schema_version = ?",
        (journal_id(path),) + _current()).rows
    return {key: SinkRecord.from_dict(json.loads(raw)) for key, raw in rows}


class WarehouseSinkView:
    """A read-only stand-in for :class:`~repro.scenarios.sink.ResultSink`.

    Quacks like a sink as far as ``Planner.load`` cares (``load()`` and
    ``path``), but serves the records from warehouse rows -- million-row
    reports become one indexed SQL scan instead of a full JSONL re-parse.
    """

    def __init__(self, store: ResultStore, path: Union[str, Path]):
        self.store = store
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> Dict[str, SinkRecord]:
        return sink_records(self.store, self.path)
