"""repro: reproduction of "Optimising GPGPU Execution Through Runtime
Micro-Architecture Parameter Analysis" (IISWC 2023).

The package contains a Vortex-like SIMT GPGPU cycle-level simulator, a
mini-POCL host runtime, a kernel DSL with the paper's nine workloads, trace
tooling, the paper's hardware-aware runtime mapping technique (Equation 1)
with its baselines, and the experiment harness that regenerates the paper's
figures and claims.

Quick start::

    import repro

    device = repro.Device("4c8w8t")                 # 4 cores, 8 warps, 8 threads
    problem = repro.make_problem("vecadd", scale="bench")
    result = device.launch(problem.kernel, problem.arguments, problem.global_size)
    print(result.summary())                          # lws chosen at runtime (Eq. 1)
"""

from repro.campaign import (
    Campaign,
    CampaignOutcome,
    CampaignRunner,
    JobFailure,
    JobResult,
    JobSpec,
    ResultCache,
)
from repro.core import (
    FixedMapping,
    HardwareAwareMapping,
    MappingAnalyzer,
    MappingStrategy,
    NaiveMapping,
    TuningAdvisor,
    exhaustive_search,
    hardware_parallelism,
    optimal_local_size,
)
from repro.kernels import Kernel, KernelBuilder, available_kernels, get_kernel
from repro.runtime import CommandQueue, Context, Device, LaunchResult, NDRange, launch_kernel
from repro.sim import ArchConfig, Gpu, PerfCounters
from repro.trace import Tracer, analyze_trace, render_issue_timeline
from repro.workloads import Problem, available_problems, make_problem

__version__ = "1.0.0"

__all__ = [
    "ArchConfig",
    "Campaign",
    "CampaignOutcome",
    "CampaignRunner",
    "CommandQueue",
    "Context",
    "Device",
    "FixedMapping",
    "Gpu",
    "HardwareAwareMapping",
    "JobFailure",
    "JobResult",
    "JobSpec",
    "Kernel",
    "KernelBuilder",
    "LaunchResult",
    "ResultCache",
    "MappingAnalyzer",
    "MappingStrategy",
    "NDRange",
    "NaiveMapping",
    "PerfCounters",
    "Problem",
    "Tracer",
    "TuningAdvisor",
    "__version__",
    "analyze_trace",
    "available_kernels",
    "available_problems",
    "exhaustive_search",
    "get_kernel",
    "hardware_parallelism",
    "launch_kernel",
    "make_problem",
    "optimal_local_size",
    "render_issue_timeline",
]
