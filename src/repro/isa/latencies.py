"""Per-opcode timing model.

The cycle-level simulator charges every issued instruction an execution
latency (cycles until its result is available for dependent instructions) and
an initiation interval (cycles before the owning functional unit can accept
another instruction).  The defaults below follow the latencies of simple
in-order GPU cores such as Vortex: single-cycle integer ALU, short pipelined
floating point, long unpipelined divides/square roots, and memory operations
whose latency is decided by the cache hierarchy rather than this table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.isa.opcodes import OpClass, Opcode, op_class


class FunctionalUnit(enum.Enum):
    """Execution resources an instruction can occupy."""

    ALU = "alu"
    FPU = "fpu"
    SFU = "sfu"
    LSU = "lsu"
    CONTROL = "control"


@dataclass(frozen=True)
class OpTiming:
    """Timing of one opcode.

    ``latency`` is the number of cycles from issue to writeback;
    ``initiation_interval`` is the number of cycles the functional unit stays
    busy (1 for fully pipelined units).  Memory operations carry a latency of
    ``None``: the memory hierarchy supplies it per access.
    """

    unit: FunctionalUnit
    latency: Optional[int]
    initiation_interval: int = 1


_CLASS_UNIT: Dict[OpClass, FunctionalUnit] = {
    OpClass.INT_ALU: FunctionalUnit.ALU,
    OpClass.INT_MUL: FunctionalUnit.ALU,
    OpClass.FLOAT: FunctionalUnit.FPU,
    OpClass.SFU: FunctionalUnit.SFU,
    OpClass.MEMORY: FunctionalUnit.LSU,
    OpClass.CONTROL: FunctionalUnit.CONTROL,
    OpClass.SIMT: FunctionalUnit.CONTROL,
    OpClass.PSEUDO: FunctionalUnit.CONTROL,
}


def _default_table() -> Dict[Opcode, OpTiming]:
    table: Dict[Opcode, OpTiming] = {}
    for opcode in Opcode:
        cls = op_class(opcode)
        unit = _CLASS_UNIT[cls]
        if cls is OpClass.INT_ALU:
            timing = OpTiming(unit, latency=1)
        elif cls is OpClass.INT_MUL:
            timing = OpTiming(unit, latency=3)
        elif cls is OpClass.FLOAT:
            timing = OpTiming(unit, latency=4)
        elif cls is OpClass.SFU:
            timing = OpTiming(unit, latency=16, initiation_interval=8)
        elif cls is OpClass.MEMORY:
            timing = OpTiming(unit, latency=None)
        else:  # control / SIMT / pseudo
            timing = OpTiming(unit, latency=1)
        table[opcode] = timing
    # A few refinements over the class defaults.
    table[Opcode.FMA] = OpTiming(FunctionalUnit.FPU, latency=4)
    table[Opcode.FDIV] = OpTiming(FunctionalUnit.SFU, latency=24, initiation_interval=12)
    table[Opcode.FSQRT] = OpTiming(FunctionalUnit.SFU, latency=24, initiation_interval=12)
    table[Opcode.FEXP] = OpTiming(FunctionalUnit.SFU, latency=20, initiation_interval=10)
    table[Opcode.FLOG] = OpTiming(FunctionalUnit.SFU, latency=20, initiation_interval=10)
    table[Opcode.BAR] = OpTiming(FunctionalUnit.CONTROL, latency=1)
    return table


#: Default per-opcode timing used by :class:`repro.sim.config.ArchConfig`.
DEFAULT_LATENCIES: Mapping[Opcode, OpTiming] = _default_table()


def timing_for(opcode: Opcode, overrides: Optional[Mapping[Opcode, OpTiming]] = None) -> OpTiming:
    """Return the :class:`OpTiming` for ``opcode``.

    ``overrides`` takes precedence over :data:`DEFAULT_LATENCIES`, letting an
    :class:`~repro.sim.config.ArchConfig` customise individual opcodes without
    replacing the whole table.
    """
    if overrides and opcode in overrides:
        return overrides[opcode]
    return DEFAULT_LATENCIES[opcode]
