"""Opcode definitions for the SIMT ISA.

Opcodes are grouped into classes (:class:`OpClass`) which the simulator uses
to route instructions to functional units and the trace analyser uses to
classify cycles as compute, memory or control work.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Coarse grouping of opcodes, used for issue routing and trace analysis."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FLOAT = "float"
    SFU = "sfu"          # special function unit: divides, square roots, exp/log
    MEMORY = "memory"
    CONTROL = "control"
    SIMT = "simt"        # thread-mask / barrier / CSR instructions
    PSEUDO = "pseudo"    # no hardware cost (labels resolved away, HALT)


class Opcode(enum.Enum):
    """Every instruction the simulator can execute."""

    # --- integer ALU -----------------------------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"          # set if less-than (signed)
    SLE = "sle"          # set if less-or-equal
    SEQ = "seq"          # set if equal
    SNE = "sne"          # set if not equal
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    # --- immediates / moves ----------------------------------------------
    LI = "li"            # load immediate
    MOV = "mov"          # register move
    # --- floating point ---------------------------------------------------
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FMA = "fma"          # dst = src0 * src1 + src2
    FMIN = "fmin"
    FMAX = "fmax"
    FABS = "fabs"
    FNEG = "fneg"
    FEXP = "fexp"
    FLOG = "flog"
    FLT = "flt"          # float compare: set if less-than
    FLE = "fle"
    FEQ = "feq"
    I2F = "i2f"
    F2I = "f2i"          # truncating conversion
    # --- memory -----------------------------------------------------------
    LOAD = "load"        # dst = mem[src0 + imm]
    STORE = "store"      # mem[src1 + imm] = src0
    # --- control flow -----------------------------------------------------
    JMP = "jmp"          # unconditional jump to target
    SPLIT = "split"      # structured divergence: branch on src0, per-lane
    JOIN = "join"        # reconverge with the matching SPLIT
    LOOP_BEGIN = "loop_begin"  # push loop reconvergence mask
    LOOP_END = "loop_end"      # backward branch while any lane wants another trip
    # --- SIMT / system ----------------------------------------------------
    CSRR = "csrr"        # read a control/status register (per-lane value)
    BAR = "bar"          # warp barrier within a core
    TMC = "tmc"          # set thread mask to the low `imm` lanes (Vortex tmc)
    NOP = "nop"
    HALT = "halt"


#: Opcode -> OpClass routing table.
OP_CLASS: dict[Opcode, OpClass] = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.DIV: OpClass.SFU,
    Opcode.REM: OpClass.SFU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SHL: OpClass.INT_ALU,
    Opcode.SHR: OpClass.INT_ALU,
    Opcode.SLT: OpClass.INT_ALU,
    Opcode.SLE: OpClass.INT_ALU,
    Opcode.SEQ: OpClass.INT_ALU,
    Opcode.SNE: OpClass.INT_ALU,
    Opcode.MIN: OpClass.INT_ALU,
    Opcode.MAX: OpClass.INT_ALU,
    Opcode.ABS: OpClass.INT_ALU,
    Opcode.NEG: OpClass.INT_ALU,
    Opcode.LI: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.FADD: OpClass.FLOAT,
    Opcode.FSUB: OpClass.FLOAT,
    Opcode.FMUL: OpClass.FLOAT,
    Opcode.FDIV: OpClass.SFU,
    Opcode.FSQRT: OpClass.SFU,
    Opcode.FMA: OpClass.FLOAT,
    Opcode.FMIN: OpClass.FLOAT,
    Opcode.FMAX: OpClass.FLOAT,
    Opcode.FABS: OpClass.FLOAT,
    Opcode.FNEG: OpClass.FLOAT,
    Opcode.FEXP: OpClass.SFU,
    Opcode.FLOG: OpClass.SFU,
    Opcode.FLT: OpClass.FLOAT,
    Opcode.FLE: OpClass.FLOAT,
    Opcode.FEQ: OpClass.FLOAT,
    Opcode.I2F: OpClass.FLOAT,
    Opcode.F2I: OpClass.FLOAT,
    Opcode.LOAD: OpClass.MEMORY,
    Opcode.STORE: OpClass.MEMORY,
    Opcode.JMP: OpClass.CONTROL,
    Opcode.SPLIT: OpClass.CONTROL,
    Opcode.JOIN: OpClass.CONTROL,
    Opcode.LOOP_BEGIN: OpClass.CONTROL,
    Opcode.LOOP_END: OpClass.CONTROL,
    Opcode.CSRR: OpClass.SIMT,
    Opcode.BAR: OpClass.SIMT,
    Opcode.TMC: OpClass.SIMT,
    Opcode.NOP: OpClass.PSEUDO,
    Opcode.HALT: OpClass.PSEUDO,
}

#: Opcodes that read or write memory.
MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE})

#: Opcodes that may change the program counter of a warp.
CONTROL_OPS = frozenset(
    {Opcode.JMP, Opcode.SPLIT, Opcode.JOIN, Opcode.LOOP_BEGIN, Opcode.LOOP_END, Opcode.HALT}
)

#: Opcodes that write a destination register.
WRITEBACK_OPS = frozenset(
    op
    for op, cls in OP_CLASS.items()
    if cls in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FLOAT, OpClass.SFU)
) | {Opcode.LOAD, Opcode.CSRR}


def op_class(opcode: Opcode) -> OpClass:
    """Return the :class:`OpClass` of ``opcode``."""
    return OP_CLASS[opcode]


def is_memory(opcode: Opcode) -> bool:
    """True when ``opcode`` accesses the memory hierarchy."""
    return opcode in MEMORY_OPS


def is_control(opcode: Opcode) -> bool:
    """True when ``opcode`` may redirect a warp's program counter."""
    return opcode in CONTROL_OPS


def writes_register(opcode: Opcode) -> bool:
    """True when ``opcode`` produces a destination-register result."""
    return opcode in WRITEBACK_OPS
