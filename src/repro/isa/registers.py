"""Control and status registers (CSRs).

The Vortex GPGPU exposes the machine shape and the per-thread work assignment
to kernels through CSRs; the POCL runtime reads them to resolve
``get_global_id`` and friends.  The simulator mirrors that: the launcher
populates per-lane CSR values before a kernel call starts and kernels read
them with :data:`~repro.isa.opcodes.Opcode.CSRR`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class Csr(enum.IntEnum):
    """CSR numbers readable from kernels.

    Hardware-shape CSRs are uniform across lanes; assignment CSRs
    (``WORKGROUP_ID``, ``LOCAL_COUNT``) are per-lane values written by the
    dispatcher for every kernel call.
    """

    # hardware identification
    THREAD_ID = 0x20      # lane index within the warp
    WARP_ID = 0x21        # warp index within the core
    CORE_ID = 0x22        # core index within the device
    NUM_THREADS = 0x23    # lanes per warp
    NUM_WARPS = 0x24      # warps per core
    NUM_CORES = 0x25      # cores in the device
    # kernel-call work assignment (written by the dispatcher)
    WORKGROUP_ID = 0x30   # flattened workgroup index assigned to this lane
    LOCAL_COUNT = 0x31    # number of work-items this lane must iterate over
    LOCAL_SIZE = 0x32     # the local_work_size (lws) of the launch
    GLOBAL_SIZE = 0x33    # the flattened global work size (gws)
    NUM_GROUPS = 0x34     # total number of workgroups in the launch
    CALL_INDEX = 0x35     # index of the current kernel call (0-based)
    # user scalar-argument window (kernel scalar args are passed via CSRs,
    # mirroring Vortex's argument buffer)
    ARG_BASE = 0x40


#: Number of scalar-argument CSR slots available to kernels.
NUM_ARG_SLOTS = 32


@dataclass
class CsrFile:
    """Per-lane CSR values for one warp.

    The dispatcher builds one :class:`CsrFile` per warp per kernel call.
    Hardware-shape values are scalars; assignment values are per-lane lists.
    """

    num_threads: int
    num_warps: int
    num_cores: int
    warp_id: int = 0
    core_id: int = 0
    workgroup_ids: list = field(default_factory=list)
    local_counts: list = field(default_factory=list)
    local_size: int = 1
    global_size: int = 1
    num_groups: int = 1
    call_index: int = 0
    args: Dict[int, float] = field(default_factory=dict)

    def read(self, csr: int, lane: int) -> float:
        """Return the value of ``csr`` as seen by ``lane``."""
        if csr == Csr.THREAD_ID:
            return lane
        if csr == Csr.WARP_ID:
            return self.warp_id
        if csr == Csr.CORE_ID:
            return self.core_id
        if csr == Csr.NUM_THREADS:
            return self.num_threads
        if csr == Csr.NUM_WARPS:
            return self.num_warps
        if csr == Csr.NUM_CORES:
            return self.num_cores
        if csr == Csr.WORKGROUP_ID:
            return self.workgroup_ids[lane] if lane < len(self.workgroup_ids) else 0
        if csr == Csr.LOCAL_COUNT:
            return self.local_counts[lane] if lane < len(self.local_counts) else 0
        if csr == Csr.LOCAL_SIZE:
            return self.local_size
        if csr == Csr.GLOBAL_SIZE:
            return self.global_size
        if csr == Csr.NUM_GROUPS:
            return self.num_groups
        if csr == Csr.CALL_INDEX:
            return self.call_index
        if Csr.ARG_BASE <= csr < Csr.ARG_BASE + NUM_ARG_SLOTS:
            return self.args.get(csr - Csr.ARG_BASE, 0.0)
        raise KeyError(f"unknown CSR 0x{csr:x}")
