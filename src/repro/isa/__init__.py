"""SIMT instruction set used by the Vortex-like GPGPU simulator.

The ISA is a small RISC-V-flavoured scalar instruction set extended with the
SIMT control instructions the Vortex GPGPU exposes (thread-mask manipulation
through structured split/join, warp barriers and CSR reads for the
core/warp/thread identifiers the runtime publishes to kernels).

The public surface is:

* :class:`~repro.isa.opcodes.Opcode` -- every instruction kind.
* :class:`~repro.isa.instruction.Instruction` -- a single decoded instruction.
* :class:`~repro.isa.program.Program` -- an executable program (instruction
  list + resolved labels + register count + section map).
* :class:`~repro.isa.registers.Csr` -- the control/status registers a kernel
  may read at runtime (hardware shape, workgroup assignment, sizes).
* :data:`~repro.isa.latencies.DEFAULT_LATENCIES` -- per-opcode timing used by
  the cycle-level simulator.
"""

from repro.isa.instruction import Instruction
from repro.isa.latencies import DEFAULT_LATENCIES, FunctionalUnit, OpTiming, timing_for
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.program import Program, ProgramError
from repro.isa.registers import Csr

__all__ = [
    "Csr",
    "DEFAULT_LATENCIES",
    "FunctionalUnit",
    "Instruction",
    "OpClass",
    "Opcode",
    "OpTiming",
    "Program",
    "ProgramError",
    "timing_for",
]
