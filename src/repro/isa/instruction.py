"""Instruction representation.

An :class:`Instruction` is a fully decoded operation: opcode, destination
register, source registers, an optional immediate, an optional control-flow
target (label name before linking, program-counter index afterwards) and a
semantic *section* tag.  Section tags are the mechanism the paper's Figure 1
uses to annotate traces ("init", "index", "body", "loop", ...): every issued
instruction carries its section so the trace analyser can reconstruct the
wavefront plots without re-parsing the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.isa.opcodes import Opcode, op_class, writes_register


@dataclass(frozen=True)
class Instruction:
    """A single SIMT instruction.

    Parameters
    ----------
    opcode:
        The operation to perform.
    dst:
        Destination register index, or ``None`` for instructions without a
        register result (stores, branches, barriers...).
    srcs:
        Source register indices, in operand order.
    imm:
        Optional immediate operand.  For :data:`Opcode.LI` it is the value to
        load; for memory operations it is the word offset added to the address
        register; for :data:`Opcode.CSRR` it is the CSR number; for
        :data:`Opcode.TMC` it is the number of lanes to keep active.
    target:
        Control-flow target.  Before linking this is a label string; the
        :class:`~repro.isa.program.Program` linker rewrites it to an integer
        program-counter index.
    target2:
        Secondary control-flow target used by :data:`Opcode.SPLIT` (the join
        point; ``target`` is the else/exit point).
    section:
        Semantic section tag used by the tracer (e.g. ``"body"``).
    comment:
        Free-form annotation kept only for disassembly readability.
    """

    opcode: Opcode
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: Optional[float] = None
    target: Optional[object] = None
    target2: Optional[object] = None
    section: str = "body"
    comment: str = ""

    def __post_init__(self) -> None:
        if self.dst is None and writes_register(self.opcode):
            raise ValueError(f"{self.opcode.name} requires a destination register")
        if self.dst is not None and not writes_register(self.opcode):
            raise ValueError(f"{self.opcode.name} does not write a register (dst={self.dst})")

    @property
    def op_class(self):
        """The :class:`~repro.isa.opcodes.OpClass` this instruction belongs to."""
        return op_class(self.opcode)

    def with_section(self, section: str) -> "Instruction":
        """Return a copy tagged with ``section``."""
        return replace(self, section=section)

    def with_targets(self, target: Optional[int], target2: Optional[int]) -> "Instruction":
        """Return a copy with resolved (integer) control-flow targets."""
        return replace(self, target=target, target2=target2)

    def reads(self) -> Tuple[int, ...]:
        """Registers read by this instruction."""
        return self.srcs

    def writes(self) -> Tuple[int, ...]:
        """Registers written by this instruction (empty or a single register)."""
        return (self.dst,) if self.dst is not None else ()

    def disassemble(self) -> str:
        """Human readable rendering, e.g. ``fma r5, r1, r2, r5``."""
        parts = [self.opcode.value]
        operands = []
        if self.dst is not None:
            operands.append(f"r{self.dst}")
        operands.extend(f"r{s}" for s in self.srcs)
        if self.imm is not None:
            operands.append(_format_imm(self.imm))
        if self.target is not None:
            operands.append(f"@{self.target}")
        if self.target2 is not None:
            operands.append(f"@{self.target2}")
        text = parts[0]
        if operands:
            text += " " + ", ".join(operands)
        if self.comment:
            text += f"    ; {self.comment}"
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.disassemble()


def _format_imm(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:g}"
