"""Executable programs.

A :class:`Program` is the linked form of a kernel: a flat instruction list in
which every control-flow target has been resolved from a label string to an
integer program-counter index.  Programs also carry the number of virtual
registers they use and a map from program counter to semantic section tag
(used by the tracer to reproduce the paper's Figure-1 annotations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class ProgramError(ValueError):
    """Raised when a program is malformed (unknown label, missing HALT, ...)."""


@dataclass(frozen=True)
class Program:
    """A linked, executable instruction sequence.

    Instances are immutable; use :meth:`link` (or the kernel builder) to
    create them.
    """

    name: str
    instructions: Tuple[Instruction, ...]
    num_registers: int
    labels: Mapping[str, int] = field(default_factory=dict)
    metadata: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ API
    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def __iter__(self):
        return iter(self.instructions)

    @property
    def sections(self) -> Tuple[str, ...]:
        """Section tag of every instruction, indexed by program counter."""
        return tuple(instr.section for instr in self.instructions)

    def section_ranges(self) -> Dict[str, List[Tuple[int, int]]]:
        """Contiguous ``[start, end)`` PC ranges per section tag."""
        ranges: Dict[str, List[Tuple[int, int]]] = {}
        if not self.instructions:
            return ranges
        start = 0
        current = self.instructions[0].section
        for pc, instr in enumerate(self.instructions[1:], start=1):
            if instr.section != current:
                ranges.setdefault(current, []).append((start, pc))
                start = pc
                current = instr.section
        ranges.setdefault(current, []).append((start, len(self.instructions)))
        return ranges

    def count_by_opcode(self) -> Dict[Opcode, int]:
        """Static instruction count per opcode."""
        counts: Dict[Opcode, int] = {}
        for instr in self.instructions:
            counts[instr.opcode] = counts.get(instr.opcode, 0) + 1
        return counts

    def disassemble(self) -> str:
        """Multi-line human readable listing with PC, section and labels."""
        label_at: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            label_at.setdefault(pc, []).append(label)
        lines: List[str] = [f"; program {self.name}: {len(self.instructions)} instructions,"
                            f" {self.num_registers} registers"]
        for pc, instr in enumerate(self.instructions):
            for label in label_at.get(pc, []):
                lines.append(f"{label}:")
            lines.append(f"  {pc:4d}  [{instr.section:<8s}] {instr.disassemble()}")
        return "\n".join(lines)

    # ------------------------------------------------------------ construction
    @classmethod
    def link(
        cls,
        name: str,
        instructions: Sequence[Instruction],
        labels: Mapping[str, int],
        num_registers: int,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> "Program":
        """Resolve label targets and validate the result.

        Raises :class:`ProgramError` on unknown labels, out-of-range register
        indices or a program that cannot terminate (no ``HALT``).
        """
        resolved: List[Instruction] = []
        for pc, instr in enumerate(instructions):
            target = _resolve(instr.target, labels, pc, instr)
            target2 = _resolve(instr.target2, labels, pc, instr)
            resolved.append(instr.with_targets(target, target2))
        program = cls(
            name=name,
            instructions=tuple(resolved),
            num_registers=num_registers,
            labels=dict(labels),
            metadata=dict(metadata or {}),
        )
        program.validate()
        return program

    def validate(self) -> None:
        """Check structural invariants; raise :class:`ProgramError` otherwise."""
        if not self.instructions:
            raise ProgramError(f"program {self.name!r} is empty")
        if not any(i.opcode is Opcode.HALT for i in self.instructions):
            raise ProgramError(f"program {self.name!r} has no HALT instruction")
        n = len(self.instructions)
        for pc, instr in enumerate(self.instructions):
            for reg in (*instr.srcs, *((instr.dst,) if instr.dst is not None else ())):
                if not (0 <= reg < self.num_registers):
                    raise ProgramError(
                        f"{self.name}@{pc}: register r{reg} out of range "
                        f"(program declares {self.num_registers})"
                    )
            for tgt in (instr.target, instr.target2):
                if tgt is None:
                    continue
                if not isinstance(tgt, int):
                    raise ProgramError(f"{self.name}@{pc}: unresolved label {tgt!r}")
                if not (0 <= tgt < n):
                    raise ProgramError(f"{self.name}@{pc}: branch target {tgt} out of range")
            if instr.opcode is Opcode.SPLIT and (instr.target is None or instr.target2 is None):
                raise ProgramError(f"{self.name}@{pc}: SPLIT needs else and join targets")
            if instr.opcode in (Opcode.JMP, Opcode.LOOP_END) and instr.target is None:
                raise ProgramError(f"{self.name}@{pc}: {instr.opcode.name} needs a target")


def _resolve(target, labels: Mapping[str, int], pc: int, instr: Instruction):
    if target is None or isinstance(target, int):
        return target
    if target not in labels:
        raise ProgramError(f"@{pc} {instr.opcode.name}: unknown label {target!r}")
    return labels[target]
