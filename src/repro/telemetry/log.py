"""Structured stderr logging for the CLI and library internals.

Replaces the ad-hoc ``print(..., file=sys.stderr)`` calls that used to dot
``repro.cli``: every diagnostic, progress note and error goes through one
stdlib-``logging`` logger writing to **stderr**, leaving stdout reserved for
machine-readable command output (tables, JSON, Prometheus text) that can be
piped without log noise.

The level comes from ``$REPRO_LOG_LEVEL`` (default ``INFO``); structured
context rides as ``key=value`` pairs appended to the message::

    log.info("scenario run complete", scenario="scaling", jobs=6)
    # stderr: repro: scenario run complete scenario=scaling jobs=6

which keeps lines greppable in CI logs without pulling in a JSON-logging
dependency.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment variable selecting the log level (DEBUG/INFO/WARNING/ERROR).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_ROOT_NAME = "repro"
_configured = False


def _level_from_env() -> int:
    name = os.environ.get(LOG_LEVEL_ENV, "INFO").strip().upper()
    return getattr(logging, name, logging.INFO)


class _StderrHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stderr`` at *emit* time.

    A plain ``StreamHandler(sys.stderr)`` captures the stream object once,
    which silently detaches the log from redirected stderr (pytest's capsys,
    ``contextlib.redirect_stderr``).  Looking the stream up per record keeps
    the log wherever stderr currently points.
    """

    def __init__(self, level: int = logging.NOTSET):
        logging.Handler.__init__(self, level)

    @property
    def stream(self):
        return sys.stderr


def _configure() -> None:
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if not _configured:
        handler = _StderrHandler()
        handler.setFormatter(logging.Formatter("repro: %(message)s"))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(_level_from_env())


def configure_from_env() -> None:
    """(Re-)apply ``$REPRO_LOG_LEVEL`` -- the CLI calls this on every run."""
    _configure()


class _Logger:
    """Thin wrapper adding ``key=value`` structured suffixes."""

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @staticmethod
    def _format(message: str, fields: dict) -> str:
        if not fields:
            return message
        suffix = " ".join(f"{key}={value}" for key, value in fields.items())
        return f"{message} {suffix}"

    def debug(self, message: str, **fields) -> None:
        self._logger.debug(self._format(message, fields))

    def info(self, message: str, **fields) -> None:
        self._logger.info(self._format(message, fields))

    def warning(self, message: str, **fields) -> None:
        self._logger.warning(self._format(message, fields))

    def error(self, message: str, **fields) -> None:
        self._logger.error(self._format(message, fields))


def get_logger(name: Optional[str] = None) -> _Logger:
    """A structured logger below the ``repro`` root (stderr, env-levelled)."""
    _configure()
    full = _ROOT_NAME if not name else f"{_ROOT_NAME}.{name}"
    return _Logger(logging.getLogger(full))
