"""The live ``--progress`` line for campaign and scenario runs.

One :class:`ProgressLine` instance sits behind ``repro campaign run
--progress`` and ``repro scenario run --progress``, fed from the same
progress callbacks the runner and planner already fire.  It renders::

    scaling 4/6 (67%) | hit 50% | 2.1 jobs/s | ETA 1s

On a TTY the line rewrites itself in place (``\\r``, stderr); on a pipe --
CI -- it degrades to one full line roughly every 10% of completion plus the
final line, so build logs stay greppable without per-job spam.

The hit-rate comes from the recorder's ``campaign.cache.hits`` /
``campaign.cache.misses`` counters when telemetry is enabled, and from the
callback's outcome stream otherwise -- progress works with telemetry off.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressLine:
    """Renders a one-line live progress display onto stderr."""

    def __init__(self, total: int, label: str = "progress",
                 stream: Optional[TextIO] = None):
        self.total = max(total, 0)
        self.label = label
        self.stream = sys.stderr if stream is None else stream
        self.done = 0
        self.hits = 0
        self.started = time.perf_counter()
        self._last_bucket = -1
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._open_line = False

    # ------------------------------------------------------------------
    def update(self, done: Optional[int] = None, hit: bool = False) -> None:
        """Advance the display by one completion (or to ``done``)."""
        self.done = self.done + 1 if done is None else done
        if hit:
            self.hits += 1
        if self._is_tty:
            self._render(end="")
            return
        # Non-TTY: one full line per ~10% bucket, always including the last.
        bucket = (self.done * 10 // self.total) if self.total else 10
        if bucket != self._last_bucket or self.done == self.total:
            self._last_bucket = bucket
            self._render(end="\n")

    def finish(self) -> None:
        """Terminate the in-place line so later output starts clean."""
        if self._is_tty and self._open_line:
            self.stream.write("\n")
            self.stream.flush()
        self._open_line = False

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """The current progress line (exposed for tests)."""
        elapsed = max(time.perf_counter() - self.started, 1e-9)
        rate = self.done / elapsed
        pct = (100 * self.done // self.total) if self.total else 100
        hit_pct = (100 * self.hits // self.done) if self.done else 0
        remaining = self.total - self.done
        eta = f"{remaining / rate:.0f}s" if rate > 0 and remaining else "0s"
        return (f"{self.label} {self.done}/{self.total} ({pct}%) | "
                f"hit {hit_pct}% | {rate:.1f} jobs/s | ETA {eta}")

    def _render(self, end: str) -> None:
        prefix = "\r" if self._is_tty else ""
        self.stream.write(f"{prefix}{self.render_text()}{end}")
        self.stream.flush()
        self._open_line = end == ""
