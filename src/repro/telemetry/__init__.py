"""End-to-end telemetry: spans, metrics, structured logs and progress.

The observability substrate for the whole campaign pipeline.  Four pieces:

* :mod:`repro.telemetry.recorder` -- the process-wide :data:`RECORDER`
  (counters/gauges/histograms + nested spans), no-op unless
  ``$REPRO_TELEMETRY`` (or ``--telemetry``) turns it on; multiprocessing
  handled by scope push/pop + payload merge, never shared state.
* :mod:`repro.telemetry.journal` -- spans and metrics as an append-only
  JSONL journal with the campaign journals' tail-repair, ingested by the
  warehouse into ``spans``/``metrics`` tables.
* :mod:`repro.telemetry.export` -- summary aggregation, Prometheus text
  exposition and Chrome ``chrome://tracing`` JSON.
* :mod:`repro.telemetry.log` / :mod:`repro.telemetry.progress` -- the
  structured stderr logger (``$REPRO_LOG_LEVEL``) and the live
  ``--progress`` line.
"""

from repro.telemetry.export import (
    from_chrome_trace,
    lint_prometheus,
    render_summary,
    summarize,
    to_chrome_trace,
    to_json,
    to_prometheus,
)
from repro.telemetry.journal import (
    TELEMETRY_DIR_ENV,
    TELEMETRY_SCHEMA_VERSION,
    default_journal_path,
    default_telemetry_dir,
    flush,
    is_current_telemetry_record,
    iter_telemetry_records,
    new_run_id,
    payload_records,
)
from repro.telemetry.log import LOG_LEVEL_ENV, get_logger
from repro.telemetry.progress import ProgressLine
from repro.telemetry.recorder import (
    DEFAULT_BUCKETS,
    RECORDER,
    TELEMETRY_ENV,
    Recorder,
    env_enabled,
    get_recorder,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "LOG_LEVEL_ENV",
    "ProgressLine",
    "RECORDER",
    "Recorder",
    "TELEMETRY_DIR_ENV",
    "TELEMETRY_ENV",
    "TELEMETRY_SCHEMA_VERSION",
    "default_journal_path",
    "default_telemetry_dir",
    "env_enabled",
    "flush",
    "from_chrome_trace",
    "get_logger",
    "get_recorder",
    "is_current_telemetry_record",
    "iter_telemetry_records",
    "lint_prometheus",
    "new_run_id",
    "payload_records",
    "render_summary",
    "summarize",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
]
