"""Telemetry exports: summary aggregation, Prometheus text, Chrome tracing.

Everything here reads the telemetry journal (or a live recorder payload) and
re-shapes it; nothing writes.  Three surfaces:

* :func:`summarize` -- the aggregate view behind ``repro telemetry summary``:
  per-span-name count/total/mean/max, plus folded counters, gauges and
  histograms (JSON-ready, so ``--json`` is the same dict).
* :func:`to_prometheus` -- Prometheus text exposition format 0.0.4.  Metric
  names are sanitised (``repro_`` prefix, dots to underscores) and
  histograms render the cumulative ``_bucket{le=...}`` / ``_sum`` /
  ``_count`` family.  :func:`lint_prometheus` re-checks the output against
  the exposition-format grammar (a ``promtool check metrics``-shaped regex
  pass) so CI can gate on it without promtool installed.
* :func:`to_chrome_trace` -- ``chrome://tracing`` / Perfetto JSON: every
  span becomes one complete ``"ph": "X"`` event with microsecond
  timestamps, one row per pid, so a campaign's execution timeline is
  load-and-look.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional

from repro.telemetry.recorder import DEFAULT_BUCKETS

#: Prefix for every exported Prometheus metric name.
PROMETHEUS_PREFIX = "repro"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABELS = r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
_SAMPLE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*" + _LABELS +
                     r" [-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN)$")
_HELP = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
                   r"(counter|gauge|histogram|summary|untyped)$")


def metric_name(name: str) -> str:
    """A recorder metric name -> a legal, prefixed Prometheus name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    return f"{PROMETHEUS_PREFIX}_{cleaned}"


# ----------------------------------------------------------------------
def summarize(records: Iterable[Dict]) -> Dict[str, object]:
    """Fold journal records into the summary dict behind ``telemetry summary``.

    Spans aggregate per name (count, total/mean/max duration); counters sum
    across processes and flushes; gauges keep the last write; histograms
    merge bucket-wise.  ``runs``/``pids`` report how many flushes and
    processes contributed, and ``spans_total`` the raw span count.
    """
    span_stats: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict] = {}
    runs, pids = set(), set()
    spans_total = 0
    for record in records:
        runs.add(record.get("run"))
        pids.add(record.get("pid"))
        if record.get("kind") == "span":
            spans_total += 1
            stats = span_stats.setdefault(record["name"], {
                "count": 0, "total_seconds": 0.0, "max_seconds": 0.0})
            duration = float(record.get("duration", 0.0))
            stats["count"] += 1
            stats["total_seconds"] += duration
            stats["max_seconds"] = max(stats["max_seconds"], duration)
        elif record.get("kind") == "metric":
            name = record["name"]
            metric_type = record.get("type")
            if metric_type == "counter":
                counters[name] = counters.get(name, 0.0) + float(record["value"])
            elif metric_type == "gauge":
                gauges[name] = float(record["value"])
            elif metric_type == "histogram":
                into = histograms.get(name)
                buckets = list(record.get("buckets", ()))
                if into is None:
                    histograms[name] = {"sum": float(record.get("sum", 0.0)),
                                        "count": int(record.get("count", 0)),
                                        "buckets": buckets}
                else:
                    into["sum"] += float(record.get("sum", 0.0))
                    into["count"] += int(record.get("count", 0))
                    into["buckets"] = [a + b for a, b in
                                       zip(into["buckets"], buckets)]
    for stats in span_stats.values():
        stats["mean_seconds"] = (stats["total_seconds"] / stats["count"]
                                 if stats["count"] else 0.0)
    return {
        "runs": len(runs),
        "pids": len(pids),
        "spans_total": spans_total,
        "spans": {name: span_stats[name] for name in sorted(span_stats)},
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }


def render_summary(summary: Dict[str, object]) -> str:
    """The human-readable form of :func:`summarize`'s dict."""
    lines = [f"telemetry: {summary['spans_total']} span(s) across "
             f"{summary['runs']} run(s), {summary['pids']} process(es)"]
    if summary["spans"]:
        lines.append("spans (name: count, total, mean, max):")
        for name, stats in summary["spans"].items():
            lines.append(
                f"  {name:<28} {stats['count']:>6}  "
                f"{stats['total_seconds']:>9.3f}s  "
                f"{stats['mean_seconds'] * 1000:>9.3f}ms  "
                f"{stats['max_seconds'] * 1000:>9.3f}ms")
    if summary["counters"]:
        lines.append("counters:")
        for name, value in summary["counters"].items():
            rendered = f"{value:g}"
            lines.append(f"  {name:<28} {rendered:>12}")
    if summary["gauges"]:
        lines.append("gauges:")
        for name, value in summary["gauges"].items():
            lines.append(f"  {name:<28} {value:>12g}")
    if summary["histograms"]:
        lines.append("histograms (name: count, sum, mean):")
        for name, histogram in summary["histograms"].items():
            count = histogram["count"]
            mean = histogram["sum"] / count if count else 0.0
            lines.append(f"  {name:<28} {count:>6}  "
                         f"{histogram['sum']:>9.3f}s  {mean * 1000:>9.3f}ms")
    if summary["spans_total"] == 0 and not summary["counters"]:
        lines.append("no telemetry recorded yet (enable with --telemetry or "
                     "REPRO_TELEMETRY=1)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
def to_prometheus(summary: Dict[str, object]) -> str:
    """A summary dict -> Prometheus text exposition format (0.0.4).

    Span aggregates export as ``<name>_seconds_total`` + ``<name>_count``
    counters; histograms as the full cumulative bucket family.
    """
    lines: List[str] = []

    def emit(name: str, metric_type: str, help_text: str,
             samples: List[str]) -> None:
        assert _NAME_OK.match(name), name
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {metric_type}")
        lines.extend(samples)

    for name, value in summary.get("counters", {}).items():
        exported = metric_name(name)
        emit(exported, "counter", f"repro counter {name}",
             [f"{exported} {value:g}"])
    for name, value in summary.get("gauges", {}).items():
        exported = metric_name(name)
        emit(exported, "gauge", f"repro gauge {name}",
             [f"{exported} {value:g}"])
    for name, histogram in summary.get("histograms", {}).items():
        exported = metric_name(name)
        samples, cumulative = [], 0
        for bound, count in zip(DEFAULT_BUCKETS, histogram["buckets"]):
            cumulative += count
            samples.append(f'{exported}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += histogram["buckets"][len(DEFAULT_BUCKETS)]
        samples.append(f'{exported}_bucket{{le="+Inf"}} {cumulative}')
        samples.append(f"{exported}_sum {histogram['sum']:g}")
        samples.append(f"{exported}_count {histogram['count']}")
        emit(exported, "histogram", f"repro histogram {name}", samples)
    for name, stats in summary.get("spans", {}).items():
        exported = metric_name(f"span.{name}")
        emit(f"{exported}_seconds_total", "counter",
             f"total seconds in span {name}",
             [f"{exported}_seconds_total {stats['total_seconds']:g}"])
        emit(f"{exported}_count", "counter",
             f"completed spans named {name}",
             [f"{exported}_count {stats['count']}"])
    return "\n".join(lines) + "\n" if lines else ""


def lint_prometheus(text: str) -> List[str]:
    """Exposition-format violations in ``text`` (empty list == clean).

    A promtool-shaped check: every line must be a HELP/TYPE comment or a
    well-formed sample; TYPE must precede its samples; histogram ``+Inf``
    bucket must equal ``_count``.
    """
    violations: List[str] = []
    typed: Dict[str, str] = {}
    inf_buckets: Dict[str, float] = {}
    counts: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            violations.append(f"line {lineno}: blank line")
            continue
        if line.startswith("# HELP "):
            if not _HELP.match(line):
                violations.append(f"line {lineno}: malformed HELP")
            continue
        if line.startswith("# TYPE "):
            if not _TYPE.match(line):
                violations.append(f"line {lineno}: malformed TYPE")
            else:
                _, _, name, metric_type = line.split(" ", 3)
                typed[name] = metric_type
            continue
        if line.startswith("#"):
            violations.append(f"line {lineno}: unknown comment form")
            continue
        if not _SAMPLE.match(line):
            violations.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = re.split(r"[{ ]", line, 1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            violations.append(f"line {lineno}: sample {name!r} has no TYPE")
        if name.endswith("_bucket") and 'le="+Inf"' in line:
            inf_buckets[base] = float(line.rsplit(" ", 1)[1])
        if name.endswith("_count") and typed.get(base) == "histogram":
            counts[base] = float(line.rsplit(" ", 1)[1])
    for base, count in counts.items():
        if base in inf_buckets and inf_buckets[base] != count:
            violations.append(f"histogram {base}: +Inf bucket "
                              f"{inf_buckets[base]:g} != count {count:g}")
    return violations


# ----------------------------------------------------------------------
def to_chrome_trace(records: Iterable[Dict]) -> Dict[str, object]:
    """Span records -> ``chrome://tracing`` JSON (complete ``X`` events).

    Timestamps are microseconds since the earliest span's wall-clock start,
    so the trace opens at t=0; each pid gets its own row.
    """
    spans = [record for record in records if record.get("kind") == "span"]
    epoch = min((span["start"] for span in spans), default=0.0)
    events = []
    for span in spans:
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": (span["start"] - epoch) * 1e6,
            "dur": span["duration"] * 1e6,
            "pid": span.get("pid", 0),
            "tid": span.get("pid", 0),
            "args": dict(span.get("tags", {}) or {},
                         span_id=span.get("id"), parent=span.get("parent")),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def from_chrome_trace(trace: Dict[str, object]) -> List[Dict]:
    """Inverse of :func:`to_chrome_trace` (modulo the epoch shift).

    Used by the round-trip tests: every exported event maps back to a span
    record with the same name/duration/tags.
    """
    spans = []
    for event in trace.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        spans.append({
            "kind": "span",
            "id": args.pop("span_id", None),
            "parent": args.pop("parent", None),
            "name": event["name"],
            "start": event["ts"] / 1e6,
            "duration": event["dur"] / 1e6,
            "pid": event.get("pid", 0),
            "tags": args,
        })
    return spans


def to_json(summary: Dict[str, object]) -> str:
    """The summary as stable, sorted JSON text."""
    return json.dumps(summary, sort_keys=True, indent=2)
