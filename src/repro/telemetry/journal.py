"""The telemetry journal: spans and metrics as append-only JSONL.

Telemetry persists exactly like results do -- one JSON object per line in an
append-only journal, written only by the parent CLI process (workers buffer
in their recorder scope and ship payloads back on the job result).  The file
shares the campaign journal's tail-repair semantics via
:func:`~repro.campaign.journal.terminate_partial_tail`, so a killed run
cannot corrupt the next append, and the warehouse ingests it incrementally
by byte offset just like the cache and sink journals.

Two record kinds share the file:

* ``kind="span"``   -- one finished span (id/parent/name/start/duration/tags),
* ``kind="metric"`` -- one counter, gauge or histogram snapshot.

Every record is stamped with the telemetry schema version, the simulator
version, a per-flush ``run`` id and the writing ``pid``; flushing *drains*
the recorder's base scope, so repeated flushes append deltas rather than
re-writing history.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

# NOTE: repro.campaign.{journal,spec} are imported lazily inside the
# functions that need them.  The campaign layer (via repro.sim) imports the
# telemetry recorder at module scope; a module-level import here would close
# that loop into a circular import.  Flush/iterate are cold paths, so the
# deferred import costs nothing that matters.
from repro.telemetry.recorder import RECORDER, Recorder

#: Version stamp for telemetry journal lines (bump on layout change).
TELEMETRY_SCHEMA_VERSION = 1

#: Environment variable overriding the telemetry journal directory.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"
#: Default directory (relative to the working directory) for telemetry.
DEFAULT_TELEMETRY_DIR = "telemetry"
#: Journal file name inside the telemetry directory.
JOURNAL_NAME = "telemetry.jsonl"


def default_telemetry_dir() -> Path:
    """The telemetry directory (``$REPRO_TELEMETRY_DIR`` aware)."""
    override = os.environ.get(TELEMETRY_DIR_ENV)
    return Path(override).expanduser() if override else Path(DEFAULT_TELEMETRY_DIR)


def default_journal_path() -> Path:
    """Where the telemetry journal lives by default."""
    return default_telemetry_dir() / JOURNAL_NAME


def new_run_id() -> str:
    """A unique-enough id tying one flush's records together."""
    return f"{int(time.time() * 1000):x}-{os.getpid():x}"


def payload_records(payload: Dict[str, object], run: str,
                    pid: Optional[int] = None) -> List[Dict[str, object]]:
    """A recorder payload -> the journal lines that represent it."""
    from repro.campaign.spec import simulator_version

    pid = os.getpid() if pid is None else pid
    stamp = {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "simulator": simulator_version(),
        "run": run,
        "pid": pid,
    }
    records: List[Dict[str, object]] = []
    for span in payload.get("spans", ()):
        records.append({**stamp, "kind": "span", "id": span["id"],
                        "parent": span.get("parent"), "name": span["name"],
                        "start": span["start"], "duration": span["duration"],
                        "tags": span.get("tags", {})})
    for name, value in payload.get("counters", {}).items():
        records.append({**stamp, "kind": "metric", "type": "counter",
                        "name": name, "value": value})
    for name, value in payload.get("gauges", {}).items():
        records.append({**stamp, "kind": "metric", "type": "gauge",
                        "name": name, "value": value})
    for name, histogram in payload.get("histograms", {}).items():
        records.append({**stamp, "kind": "metric", "type": "histogram",
                        "name": name, "sum": histogram["sum"],
                        "count": histogram["count"],
                        "buckets": list(histogram["buckets"])})
    return records


def is_current_telemetry_record(record: Dict) -> bool:
    """True when ``record`` was written under this telemetry schema."""
    return (record.get("schema") == TELEMETRY_SCHEMA_VERSION
            and record.get("kind") in ("span", "metric"))


def flush(recorder: Optional[Recorder] = None,
          path: Optional[Union[str, Path]] = None,
          run: Optional[str] = None) -> int:
    """Drain the recorder's active scope into the journal.

    Returns the number of lines appended (0 when nothing was recorded --
    the journal file is then not even created).  The scope restarts empty,
    so back-to-back flushes journal deltas, never duplicates.
    """
    from repro.campaign.journal import terminate_partial_tail

    recorder = RECORDER if recorder is None else recorder
    payload = recorder.drain()
    records = payload_records(payload, run or new_run_id())
    if not records:
        return 0
    target = Path(path).expanduser() if path else default_journal_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    terminate_partial_tail(target)
    with target.open("a") as journal:
        for record in records:
            journal.write(json.dumps(record, sort_keys=True) + "\n")
        journal.flush()
        os.fsync(journal.fileno())
    return len(records)


def iter_telemetry_records(path: Optional[Union[str, Path]] = None,
                           ) -> Iterator[Dict]:
    """Stream every usable telemetry record from the journal."""
    from repro.campaign.journal import iter_journal_lines

    target = Path(path).expanduser() if path else default_journal_path()
    for record in iter_journal_lines(target):
        if record is None or not is_current_telemetry_record(record):
            continue
        yield record
