"""The process-wide telemetry recorder: metrics registry + span tracing.

One :class:`Recorder` instance (:data:`RECORDER`) exists per process.  It is
**disabled by default** and every recording call is a no-op behind a single
``self.enabled`` check, so an un-instrumented-feeling fast path survives in
instrumented code -- the hot sites in the simulation engines guard with
``if RECORDER.enabled:`` before even reading a clock, and
``benchmarks/bench_telemetry.py`` gates that disabled-path cost at <= 2% of a
launch.  Enabling happens through the ``REPRO_TELEMETRY`` environment
variable (any of ``1/true/on/yes``) or the CLI's ``--telemetry`` flag, which
sets the variable so campaign worker processes inherit it.

Three metric kinds live in the registry:

* **counters** -- monotonically accumulated floats (``count``),
* **gauges**   -- last-write-wins values (``gauge``),
* **histograms** -- fixed-bucket distributions (``observe``), Prometheus
  cumulative-``le`` style, so exports never re-bin.

Spans (``with RECORDER.span("campaign.run", jobs=42):``) capture wall-clock
start (epoch, comparable across processes) and a monotonic duration; they
nest through a per-scope stack and serialise as plain dicts.

Multiprocessing is handled by *scopes*, not shared state: a campaign worker
pushes a fresh scope before executing a job, records freely, pops the scope
into a picklable payload that rides back on the job result, and the parent
:meth:`merge`s it -- span ids are remapped and the worker's root spans are
re-parented under the parent's currently open span, so a merged trace reads
as one tree.  No locks, no shared memory, no divergence between the
``workers=1`` in-process path and the pool path.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

#: Environment variable enabling telemetry (``1``/``true``/``on``/``yes``).
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Truthy spellings accepted in :data:`TELEMETRY_ENV`.
_TRUTHY = ("1", "true", "on", "yes")

#: Fixed histogram bucket upper bounds, in seconds (Prometheus ``le`` style);
#: every histogram shares them so merges and exports never re-bin.  The last
#: implicit bucket is +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


def env_enabled() -> bool:
    """Whether ``$REPRO_TELEMETRY`` asks for telemetry."""
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() in _TRUTHY


def _new_histogram() -> Dict[str, object]:
    return {"buckets": [0] * (len(DEFAULT_BUCKETS) + 1), "sum": 0.0, "count": 0}


class _Scope:
    """One recording scope: metric stores, span log and the open-span stack."""

    __slots__ = ("spans", "counters", "gauges", "histograms", "stack")

    def __init__(self):
        self.spans: List[Dict] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict] = {}
        self.stack: List[int] = []


class _NullSpan:
    """The disabled path's span handle: enters and exits for free."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """An open span; appended to its scope as a plain dict on exit."""

    __slots__ = ("recorder", "span_id", "name", "tags", "start_wall", "_start_perf")

    def __init__(self, recorder: "Recorder", name: str, tags: Dict):
        self.recorder = recorder
        self.name = name
        self.tags = tags
        self.span_id = recorder._next_span_id()
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()

    def __enter__(self):
        self.recorder._top().stack.append(self.span_id)
        return self

    def __exit__(self, *exc_info):
        duration = time.perf_counter() - self._start_perf
        scope = self.recorder._top()
        if scope.stack and scope.stack[-1] == self.span_id:
            scope.stack.pop()
        parent = scope.stack[-1] if scope.stack else None
        scope.spans.append({
            "id": self.span_id,
            "parent": parent,
            "name": self.name,
            "start": self.start_wall,
            "duration": duration,
            "tags": self.tags,
        })
        return False


class Recorder:
    """Process-wide metrics registry and span collector (no-op when disabled)."""

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = env_enabled() if enabled is None else enabled
        self._scopes: List[_Scope] = [_Scope()]
        self._next_id = 1

    # ------------------------------------------------------------------
    def configure_from_env(self) -> bool:
        """Re-read ``$REPRO_TELEMETRY`` (the CLI sets it before dispatching)."""
        self.enabled = env_enabled()
        return self.enabled

    def reset(self) -> None:
        """Drop every recorded value and scope (tests, fresh sessions)."""
        self._scopes = [_Scope()]
        self._next_id = 1

    def _top(self) -> _Scope:
        return self._scopes[-1]

    def _next_span_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    # ------------------------------------------------------------------ spans
    def span(self, name: str, **tags):
        """Context manager timing one named span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, tags)

    def record_span(self, name: str, start_wall: float, duration: float,
                    **tags) -> None:
        """Append one already-measured span (e.g. a cache hit's lookup)."""
        if not self.enabled:
            return
        scope = self._top()
        scope.spans.append({
            "id": self._next_span_id(),
            "parent": scope.stack[-1] if scope.stack else None,
            "name": name,
            "start": start_wall,
            "duration": duration,
            "tags": tags,
        })

    # ------------------------------------------------------------------ metrics
    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` onto counter ``name``."""
        if not self.enabled:
            return
        counters = self._top().counters
        counters[name] = counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        self._top().gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name`` (fixed buckets)."""
        if not self.enabled:
            return
        histogram = self._top().histograms.get(name)
        if histogram is None:
            histogram = self._top().histograms[name] = _new_histogram()
        for index, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                histogram["buckets"][index] += 1
                break
        else:
            histogram["buckets"][-1] += 1
        histogram["sum"] += value
        histogram["count"] += 1

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name`` in the active scope."""
        return self._top().counters.get(name, default)

    # ------------------------------------------------------------------ scopes
    def push_scope(self) -> None:
        """Start a fresh recording scope (a worker's per-job buffer)."""
        self._scopes.append(_Scope())

    def pop_scope(self) -> Dict[str, object]:
        """Close the top scope and return its picklable payload."""
        if len(self._scopes) <= 1:
            raise RuntimeError("cannot pop the recorder's base scope")
        scope = self._scopes.pop()
        return {
            "spans": scope.spans,
            "counters": scope.counters,
            "gauges": scope.gauges,
            "histograms": scope.histograms,
        }

    def snapshot(self) -> Dict[str, object]:
        """The active scope's current payload (shared references, read-only)."""
        scope = self._top()
        return {
            "spans": scope.spans,
            "counters": scope.counters,
            "gauges": scope.gauges,
            "histograms": scope.histograms,
        }

    def drain(self) -> Dict[str, object]:
        """The active scope's payload, detached; the scope restarts empty."""
        scope = self._top()
        payload = {
            "spans": scope.spans,
            "counters": scope.counters,
            "gauges": scope.gauges,
            "histograms": scope.histograms,
        }
        self._scopes[-1] = _Scope()
        return payload

    def merge(self, payload: Dict[str, object]) -> None:
        """Fold a popped/returned payload into the active scope.

        Span ids are remapped onto this recorder's id sequence and the
        payload's *root* spans are re-parented under the currently open span
        (if any), so a worker's ``job.execute`` tree hangs off the parent's
        ``campaign.run``.  Counters add, gauges last-write-win, histograms
        merge bucket-wise (same fixed buckets everywhere).
        """
        if not self.enabled or not payload:
            return
        scope = self._top()
        remap: Dict[int, int] = {}
        attach_to = scope.stack[-1] if scope.stack else None
        for span in payload.get("spans", ()):
            remap[span["id"]] = self._next_span_id()
        for span in payload.get("spans", ()):
            parent = span.get("parent")
            scope.spans.append({
                **span,
                "id": remap[span["id"]],
                "parent": remap.get(parent, attach_to) if parent is not None
                          else attach_to,
            })
        for name, value in payload.get("counters", {}).items():
            scope.counters[name] = scope.counters.get(name, 0.0) + value
        for name, value in payload.get("gauges", {}).items():
            scope.gauges[name] = value
        for name, histogram in payload.get("histograms", {}).items():
            into = scope.histograms.get(name)
            if into is None:
                scope.histograms[name] = {
                    "buckets": list(histogram["buckets"]),
                    "sum": histogram["sum"],
                    "count": histogram["count"],
                }
                continue
            into["buckets"] = [a + b for a, b in
                               zip(into["buckets"], histogram["buckets"])]
            into["sum"] += histogram["sum"]
            into["count"] += histogram["count"]


#: The per-process recorder every instrumentation site talks to.  A stable
#: object (its identity never changes), so hot paths may bind it at import
#: time and still observe later ``enable``/``configure_from_env`` flips.
RECORDER = Recorder()


def get_recorder() -> Recorder:
    """The process-wide :class:`Recorder`."""
    return RECORDER
