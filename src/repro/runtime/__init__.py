"""Host runtime (mini-POCL) for the simulated Vortex-like GPGPU.

This package mirrors the software stack the paper analyses: an OpenCL-style
host API on top of a runtime that decomposes an ND-range into workgroups,
maps workgroups onto the machine's cores/warps/threads (threads first, then
warps, split equally across cores -- the Vortex rule), issues as many
sequential kernel calls as needed, and accounts for the launch overhead every
call pays.

* :class:`~repro.runtime.device.Device` -- owns the simulated GPU and device
  memory; answers the hardware-parallelism query the paper's Eq. 1 needs.
* :class:`~repro.runtime.ndrange.NDRange` -- global/local work size handling.
* :class:`~repro.runtime.dispatcher.DispatchPlan` -- the workgroup placement
  for every kernel call of a launch.
* :func:`~repro.runtime.launcher.launch_kernel` -- run a kernel end to end and
  return cycles + performance counters.
* :class:`~repro.runtime.api.Context` / :class:`~repro.runtime.api.CommandQueue`
  -- the OpenCL-flavoured host API used by the examples.
"""

from repro.runtime.buffers import Buffer, BufferAllocator
from repro.runtime.device import Device
from repro.runtime.dispatcher import CallPlan, DispatchPlan, build_dispatch_plan
from repro.runtime.errors import AllocationError, LaunchError
from repro.runtime.launcher import LaunchResult, launch_kernel
from repro.runtime.ndrange import NDRange
from repro.runtime.api import CommandQueue, Context

__all__ = [
    "AllocationError",
    "Buffer",
    "BufferAllocator",
    "CallPlan",
    "CommandQueue",
    "Context",
    "Device",
    "DispatchPlan",
    "LaunchError",
    "LaunchResult",
    "NDRange",
    "build_dispatch_plan",
    "launch_kernel",
]
