"""OpenCL-flavoured host API.

A thin convenience layer over :class:`~repro.runtime.device.Device` and
:func:`~repro.runtime.launcher.launch_kernel` mirroring the host-side objects
OpenCL programs use (context, command queue, ND-range enqueue).  The crucial
difference to stock OpenCL -- and the point of the paper -- is that
``enqueue_nd_range`` may be called *without* a local work size: the runtime
then derives it from the device's micro-architecture parameters (Equation 1)
instead of forcing the programmer to guess one.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

import numpy as np

from repro.kernels.kernel import Kernel
from repro.kernels.registry import get_kernel
from repro.runtime.buffers import Buffer
from repro.runtime.device import Device
from repro.runtime.launcher import LaunchResult, launch_kernel
from repro.sim.config import ArchConfig


class Context:
    """Owns a device and its buffers (the OpenCL ``cl_context`` analogue)."""

    def __init__(self, config: Union[ArchConfig, str, Device]):
        self.device = config if isinstance(config, Device) else Device(config)

    def buffer(self, data: np.ndarray, name: str = "buffer") -> Buffer:
        """Upload ``data`` and return the device buffer."""
        return self.device.upload(data, name=name)

    def empty_buffer(self, size_words: int, name: str = "buffer") -> Buffer:
        """Allocate an uninitialised device buffer."""
        return self.device.allocate(size_words, name=name)

    def queue(self) -> "CommandQueue":
        """Create a command queue on this context's device."""
        return CommandQueue(self)


class CommandQueue:
    """Submits kernel launches to a context's device (``cl_command_queue`` analogue)."""

    def __init__(self, context: Context):
        self.context = context
        self.history: list[LaunchResult] = []

    @property
    def device(self) -> Device:
        """The device this queue submits to."""
        return self.context.device

    def enqueue_nd_range(self, kernel: Union[Kernel, str], arguments: Mapping[str, object],
                         global_size, local_size: Optional[int] = None,
                         **kwargs) -> LaunchResult:
        """Launch a kernel over ``global_size`` work-items.

        ``local_size=None`` (the default) lets the runtime choose the
        hardware-aware mapping; passing an integer reproduces the
        hardware-agnostic behaviour of a conventional OpenCL host program.
        """
        if isinstance(kernel, str):
            kernel = get_kernel(kernel)
        result = launch_kernel(self.device, kernel, arguments, global_size,
                               local_size=local_size, **kwargs)
        self.history.append(result)
        return result

    def last_result(self) -> Optional[LaunchResult]:
        """The most recent launch result, if any."""
        return self.history[-1] if self.history else None
