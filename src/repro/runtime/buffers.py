"""Device buffers and the bump allocator.

Buffers live in the simulated GPU's word-addressed memory.  The allocator is
a simple cache-line-aligned bump allocator -- launches in this project are
short-lived experiment runs, so freeing is wholesale (``reset``) rather than
per-buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.runtime.errors import AllocationError
from repro.sim.memory.mainmem import MainMemory


@dataclass(frozen=True)
class Buffer:
    """A contiguous region of device memory."""

    name: str
    address: int          # first word
    size_words: int

    @property
    def end(self) -> int:
        """One past the last word."""
        return self.address + self.size_words


class BufferAllocator:
    """Cache-line-aligned bump allocator over a :class:`MainMemory`."""

    def __init__(self, memory: MainMemory, alignment_words: int = 16):
        if alignment_words < 1:
            raise ValueError("alignment must be positive")
        self._memory = memory
        self._alignment = alignment_words
        self._next_free = 0
        self._allocations: list[Buffer] = []

    # ------------------------------------------------------------------
    @property
    def allocated_words(self) -> int:
        """Words handed out so far (including alignment padding)."""
        return self._next_free

    @property
    def capacity_words(self) -> int:
        """Total device memory capacity."""
        return self._memory.size_words

    @property
    def allocations(self) -> tuple:
        """Snapshot of every live allocation."""
        return tuple(self._allocations)

    def reset(self) -> None:
        """Free every buffer (the memory contents are left untouched)."""
        self._next_free = 0
        self._allocations.clear()

    # ------------------------------------------------------------------
    def allocate(self, size_words: int, name: str = "buffer") -> Buffer:
        """Reserve ``size_words`` words; raises :class:`AllocationError` when full."""
        if size_words <= 0:
            raise AllocationError(f"cannot allocate {size_words} words for {name!r}")
        aligned = -(-self._next_free // self._alignment) * self._alignment
        if aligned + size_words > self._memory.size_words:
            raise AllocationError(
                f"device memory exhausted: need {size_words} words for {name!r}, "
                f"{self._memory.size_words - aligned} available"
            )
        buffer = Buffer(name=name, address=aligned, size_words=size_words)
        self._next_free = aligned + size_words
        self._allocations.append(buffer)
        return buffer

    def upload(self, data: np.ndarray, name: str = "buffer") -> Buffer:
        """Allocate a buffer sized for ``data`` and copy it to the device.

        Empty arrays are legal (e.g. the edge list of a graph with no edges):
        they receive a one-word placeholder allocation so the kernel still has
        a valid base address.
        """
        flat = np.asarray(data, dtype=np.float64).ravel()
        buffer = self.allocate(max(1, len(flat)), name=name)
        if len(flat):
            self._memory.write_block(buffer.address, flat)
        return buffer

    def download(self, buffer: Buffer, shape: Optional[tuple] = None) -> np.ndarray:
        """Copy a buffer back to the host, optionally reshaping it."""
        data = self._memory.read_block(buffer.address, buffer.size_words)
        if shape is not None:
            data = data.reshape(shape)
        return data

    def zero(self, buffer: Buffer) -> None:
        """Clear a buffer's contents."""
        self._memory.fill(buffer.address, buffer.size_words, 0.0)
