"""Workgroup dispatch: the Vortex mapping rule.

The Vortex runtime "maps the workload equally across cores; within each core,
the kernel iterations are further distributed among threads first and then
warps" (paper, Section 2).  The dispatcher reproduces that placement and the
paper's three regimes fall out of it:

* more workgroups than hardware lanes -> several sequential *kernel calls*,
  each paying the launch overhead (the ``lws < gws/hp`` regime);
* exactly as many workgroups as lanes -> one fully utilised call
  (``lws = gws/hp``, the paper's optimum);
* fewer workgroups than lanes -> one call that leaves lanes, warps and whole
  cores idle (``lws > gws/hp``).

The resulting :class:`DispatchPlan` lists, for every call, the
:class:`~repro.sim.gpu.WarpLaunch` records the GPU model consumes, plus
utilisation metrics used by the analysis and the reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.isa.registers import CsrFile
from repro.sim.config import ArchConfig
from repro.sim.gpu import WarpLaunch
from repro.runtime.errors import LaunchError
from repro.runtime.ndrange import NDRange


@dataclass(frozen=True)
class CallPlan:
    """Placement of one kernel call."""

    call_index: int
    workgroups: Tuple[int, ...]          # flattened workgroup ids handled by this call
    launches: Tuple[WarpLaunch, ...]     # one record per spawned warp
    active_lanes: int                    # lanes that received a workgroup
    total_lanes: int                     # lanes available in the machine (hp)

    @property
    def lane_utilization(self) -> float:
        """Fraction of hardware lanes doing useful work during this call."""
        return self.active_lanes / self.total_lanes if self.total_lanes else 0.0

    @property
    def warps_spawned(self) -> int:
        """Number of warps started for this call."""
        return len(self.launches)

    @property
    def cores_used(self) -> int:
        """Number of cores that received at least one warp."""
        return len({launch.core_id for launch in self.launches})


@dataclass(frozen=True)
class DispatchPlan:
    """Complete mapping of a launch: every kernel call and its placement."""

    ndrange: NDRange
    config_name: str
    hardware_parallelism: int
    calls: Tuple[CallPlan, ...]

    @property
    def num_calls(self) -> int:
        """Sequential kernel calls needed for the launch."""
        return len(self.calls)

    @property
    def num_workgroups(self) -> int:
        """Total workgroups across all calls."""
        return self.ndrange.num_workgroups

    @property
    def total_warps_spawned(self) -> int:
        """Warps spawned across every call (drives the spawn overhead)."""
        return sum(call.warps_spawned for call in self.calls)

    @property
    def average_lane_utilization(self) -> float:
        """Mean lane utilisation over all calls."""
        if not self.calls:
            return 0.0
        return sum(call.lane_utilization for call in self.calls) / len(self.calls)

    def regime(self) -> str:
        """The paper's regime classification for this (gws, lws, hp) triple."""
        gws = self.ndrange.global_size
        lws = self.ndrange.local_size
        hp = self.hardware_parallelism
        boundary = gws / hp
        if lws < boundary:
            return "multiple-calls"       # lws < gws/hp
        if self.num_workgroups == min(hp, gws):
            return "balanced"             # lws == ceil(gws/hp): single, fully used call
        return "under-utilised"           # lws > gws/hp

    def describe(self) -> str:
        """Short human-readable summary used by reports and examples."""
        return (
            f"{self.config_name}: gws={self.ndrange.global_size} lws={self.ndrange.local_size} "
            f"-> {self.num_workgroups} workgroups, {self.num_calls} call(s), "
            f"avg lane utilisation {self.average_lane_utilization:.1%} [{self.regime()}]"
        )


def build_dispatch_plan(ndrange: NDRange, config: ArchConfig,
                        argument_values: Mapping[int, float]) -> DispatchPlan:
    """Place every workgroup of ``ndrange`` on ``config`` following the Vortex rule.

    ``argument_values`` maps argument-CSR slots to their scalar values (buffer
    base addresses and scalar kernel arguments); they are replicated into
    every warp's CSR file.
    """
    gws = ndrange.global_size
    lws = ndrange.local_size
    num_workgroups = ndrange.num_workgroups
    hp = config.hardware_parallelism
    lanes_per_core = config.warps_per_core * config.threads_per_warp
    num_calls = math.ceil(num_workgroups / hp)

    calls: List[CallPlan] = []
    for call_index in range(num_calls):
        first = call_index * hp
        last = min(first + hp, num_workgroups)
        workgroups = tuple(range(first, last))
        count = len(workgroups)

        # Split the call's workgroups equally across cores (Vortex rule).
        per_core = math.ceil(count / config.cores)
        launches: List[WarpLaunch] = []
        active_lanes = 0
        for core_id in range(config.cores):
            core_first = core_id * per_core
            core_last = min(core_first + per_core, count)
            if core_first >= core_last:
                break
            core_workgroups = workgroups[core_first:core_last]
            launches.extend(
                _core_launches(core_id, core_workgroups, ndrange, config,
                               argument_values, call_index, num_workgroups)
            )
            active_lanes += len(core_workgroups)

        calls.append(CallPlan(
            call_index=call_index,
            workgroups=workgroups,
            launches=tuple(launches),
            active_lanes=active_lanes,
            total_lanes=hp,
        ))

    return DispatchPlan(
        ndrange=ndrange,
        config_name=config.name,
        hardware_parallelism=hp,
        calls=tuple(calls),
    )


def _core_launches(core_id: int, workgroups: Sequence[int], ndrange: NDRange,
                   config: ArchConfig, argument_values: Mapping[int, float],
                   call_index: int, num_workgroups: int) -> List[WarpLaunch]:
    """Fill one core's warps: threads first, then warps (the Vortex order)."""
    threads = config.threads_per_warp
    launches: List[WarpLaunch] = []
    for warp_id in range(config.warps_per_core):
        warp_first = warp_id * threads
        if warp_first >= len(workgroups):
            break
        warp_workgroups = workgroups[warp_first:warp_first + threads]
        workgroup_ids = [float(wg) for wg in warp_workgroups]
        local_counts = [float(ndrange.workgroup_size(wg)) for wg in warp_workgroups]
        csr = CsrFile(
            num_threads=threads,
            num_warps=config.warps_per_core,
            num_cores=config.cores,
            warp_id=warp_id,
            core_id=core_id,
            workgroup_ids=workgroup_ids,
            local_counts=local_counts,
            local_size=ndrange.local_size,
            global_size=ndrange.global_size,
            num_groups=num_workgroups,
            call_index=call_index,
            args=dict(argument_values),
        )
        launches.append(WarpLaunch(
            core_id=core_id,
            warp_id=warp_id,
            csr=csr,
            active_lanes=len(warp_workgroups),
        ))
    if len(workgroups) > config.warps_per_core * threads:
        raise LaunchError(
            f"core {core_id} was assigned {len(workgroups)} workgroups but only has "
            f"{config.warps_per_core * threads} lanes"
        )
    return launches
