"""Device abstraction.

A :class:`Device` bundles the simulated GPU, its memory allocator and the
hardware-property queries the paper's runtime technique relies on
(``hardware_parallelism`` in particular).  It is the object host code talks
to: allocate buffers, upload data, launch kernels, read results back.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

import numpy as np

from repro.runtime.buffers import Buffer, BufferAllocator
from repro.sim.config import ArchConfig
from repro.sim.gpu import DEFAULT_MEMORY_WORDS, Gpu


class Device:
    """A simulated Vortex-like GPGPU plus its host-side bookkeeping."""

    def __init__(self, config: Union[ArchConfig, str], memory_words: int = DEFAULT_MEMORY_WORDS,
                 tracer=None, engine: Optional[str] = None):
        if isinstance(config, str):
            config = ArchConfig.from_name(config)
        self.config = config
        self.gpu = Gpu(config, memory_words=memory_words, tracer=tracer, engine=engine)
        self.allocator = BufferAllocator(self.gpu.memory, alignment_words=config.l1_line_words)

    # ------------------------------------------------------------------ hardware queries
    @property
    def engine(self) -> str:
        """Simulation engine driving this device (``"reference"``, ``"fast"``
        or ``"batch"``).

        All engines produce bit-identical results (cycles, counters, output
        buffers); ``fast`` and ``batch`` are simply quicker.  See
        :mod:`repro.sim.engine`.
        """
        return self.gpu.engine

    @property
    def hardware_parallelism(self) -> int:
        """``hp = cores * warps * threads`` -- the runtime query behind Eq. 1."""
        return self.config.hardware_parallelism

    @property
    def name(self) -> str:
        """Configuration name in the paper's ``<c>c<w>w<t>t`` scheme."""
        return self.config.name

    def describe(self) -> str:
        """Multi-line description of the device."""
        return self.config.describe()

    # ------------------------------------------------------------------ memory management
    def allocate(self, size_words: int, name: str = "buffer") -> Buffer:
        """Reserve uninitialised device memory."""
        return self.allocator.allocate(size_words, name=name)

    def upload(self, data: np.ndarray, name: str = "buffer") -> Buffer:
        """Copy a host array to a fresh device buffer."""
        return self.allocator.upload(data, name=name)

    def download(self, buffer: Buffer, shape: Optional[tuple] = None) -> np.ndarray:
        """Copy a device buffer back to the host."""
        return self.allocator.download(buffer, shape=shape)

    def reset_memory(self) -> None:
        """Release every allocation and invalidate the caches."""
        self.allocator.reset()
        self.gpu.reset_memory_system()

    # ------------------------------------------------------------------ execution
    def launch(self, kernel, arguments: Mapping[str, object], global_size,
               local_size: Optional[int] = None, **kwargs):
        """Launch ``kernel``; see :func:`repro.runtime.launcher.launch_kernel`.

        ``local_size=None`` selects the paper's hardware-aware mapping at
        runtime (Equation 1).
        """
        from repro.runtime.launcher import launch_kernel  # deferred to avoid import cycle
        return launch_kernel(self, kernel, arguments, global_size,
                             local_size=local_size, **kwargs)

    def set_tracer(self, tracer) -> None:
        """Attach (or detach with ``None``) an instruction-issue tracer."""
        self.gpu.tracer = tracer

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Device({self.name}, hp={self.hardware_parallelism})"
