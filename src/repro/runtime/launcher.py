"""Kernel launcher: upload arguments, dispatch, simulate, collect results.

``launch_kernel`` is the end-to-end path a host program takes: it validates
the arguments against the kernel signature, moves host arrays to the device,
builds the Vortex-style dispatch plan for the requested (or runtime-chosen)
``lws``, simulates every kernel call, charges the per-call launch overhead and
returns cycles, counters and the output buffers.

For very small ``lws`` the number of sequential calls can reach into the
thousands; since all full-size calls execute the same instruction schedule on
different data, the launcher can optionally simulate only a sample of them and
extrapolate the rest (``call_simulation_limit``).  Experiments use this for the
450-configuration sweep; tests always run exact simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.kernels.kernel import Kernel
from repro.kernels.signature import BufferParam, ScalarParam
from repro.kernels.wrapper import build_workgroup_program
from repro.runtime.buffers import Buffer
from repro.runtime.device import Device
from repro.runtime.dispatcher import DispatchPlan, build_dispatch_plan
from repro.runtime.errors import LaunchError
from repro.runtime.ndrange import NDRange
from repro.sim.stats import PerfCounters


@dataclass
class LaunchResult:
    """Everything measured and produced by one kernel launch."""

    kernel_name: str
    config_name: str
    global_size: int
    local_size: int
    num_workgroups: int
    num_calls: int
    cycles: int                       # total, including launch overheads
    sim_cycles: int                   # simulated compute cycles only
    overhead_cycles: int              # kernel-call + warp-spawn overhead
    counters: PerfCounters
    call_cycles: List[int] = field(default_factory=list)
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    buffers: Dict[str, Buffer] = field(default_factory=dict)
    dispatch: Optional[DispatchPlan] = None
    extrapolated: bool = False

    @property
    def cycles_per_workitem(self) -> float:
        """Average cycles per work-item (latency / throughput hybrid metric)."""
        return self.cycles / self.global_size if self.global_size else 0.0

    def summary(self) -> str:
        """One-line result summary for reports and examples."""
        return (
            f"{self.kernel_name} on {self.config_name}: lws={self.local_size} "
            f"-> {self.cycles} cycles ({self.num_calls} call(s), "
            f"{self.overhead_cycles} overhead)"
        )


def launch_kernel(device: Device, kernel: Kernel, arguments: Mapping[str, object],
                  global_size, local_size: Optional[int] = None,
                  call_simulation_limit: Optional[int] = None,
                  keep_buffers: bool = False,
                  reset_memory: bool = True,
                  max_cycles_per_call: Optional[int] = None) -> LaunchResult:
    """Run ``kernel`` on ``device`` and return a :class:`LaunchResult`.

    Parameters
    ----------
    arguments:
        Mapping from parameter name to a numpy array (uploaded automatically),
        an already-uploaded :class:`~repro.runtime.buffers.Buffer`, or a scalar.
    global_size:
        Flattened or multi-dimensional global work size.
    local_size:
        The lws to use.  ``None`` selects the paper's hardware-aware runtime
        mapping (Equation 1) -- the programmer never has to pick a value.
    call_simulation_limit:
        When a launch needs more sequential kernel calls than this limit, only
        a sample is simulated and the remaining full-size calls are
        extrapolated from the measured ones.  ``None`` simulates every call.
    keep_buffers:
        Keep the uploaded buffers allocated (useful when the caller wants to
        relaunch with the same data); by default the allocator is reset.
    reset_memory:
        Reset allocator and caches before the launch (cold-start semantics).
    """
    kernel.check_arguments(arguments)
    if local_size is None:
        from repro.core.optimizer import optimal_local_size  # deferred import (layering)
        ndrange_probe = NDRange(global_size, 1)
        local_size = optimal_local_size(ndrange_probe.global_size, device.config)
    ndrange = NDRange(global_size, local_size)

    if reset_memory:
        device.reset_memory()
    device.gpu.reset_memory_system()

    buffers, argument_values = _prepare_arguments(device, kernel, arguments)
    program = build_workgroup_program(kernel)
    plan = build_dispatch_plan(ndrange, device.config, argument_values)

    call_cycles, counters, extrapolated = _simulate_calls(
        device, program, plan, call_simulation_limit, max_cycles_per_call)

    config = device.config
    overhead = sum(
        config.kernel_launch_overhead + config.warp_spawn_cost * call.warps_spawned
        for call in plan.calls
    )
    sim_cycles = sum(call_cycles)
    total = sim_cycles + overhead
    counters.kernel_calls = plan.num_calls
    counters.warps_launched = plan.total_warps_spawned
    counters.launch_overhead_cycles = overhead
    counters.cycles = total

    outputs = _collect_outputs(device, kernel, buffers)
    result = LaunchResult(
        kernel_name=kernel.name,
        config_name=config.name,
        global_size=ndrange.global_size,
        local_size=ndrange.local_size,
        num_workgroups=ndrange.num_workgroups,
        num_calls=plan.num_calls,
        cycles=total,
        sim_cycles=sim_cycles,
        overhead_cycles=overhead,
        counters=counters,
        call_cycles=call_cycles,
        outputs=outputs,
        buffers=buffers if keep_buffers else {},
        dispatch=plan,
        extrapolated=extrapolated,
    )
    if not keep_buffers:
        device.allocator.reset()
    return result


# ----------------------------------------------------------------------
def _prepare_arguments(device: Device, kernel: Kernel,
                       arguments: Mapping[str, object]):
    """Upload array arguments and build the argument-CSR value map."""
    buffers: Dict[str, Buffer] = {}
    argument_values: Dict[int, float] = {}
    for slot, param in enumerate(kernel.params):
        value = arguments[param.name]
        if isinstance(param, BufferParam):
            if isinstance(value, Buffer):
                buffer = value
            elif isinstance(value, np.ndarray):
                buffer = device.upload(value, name=f"{kernel.name}.{param.name}")
            else:
                raise LaunchError(
                    f"argument {param.name!r} of kernel {kernel.name!r} must be a numpy "
                    f"array or a device Buffer, got {type(value).__name__}"
                )
            buffers[param.name] = buffer
            argument_values[slot] = float(buffer.address)
        elif isinstance(param, ScalarParam):
            if isinstance(value, (Buffer, np.ndarray)):
                raise LaunchError(
                    f"argument {param.name!r} of kernel {kernel.name!r} is scalar but got "
                    f"{type(value).__name__}"
                )
            argument_values[slot] = float(value)
        else:  # pragma: no cover - defensive, no other param kinds exist
            raise LaunchError(f"unsupported parameter type {type(param).__name__}")
    return buffers, argument_values


def _simulate_calls(device: Device, program, plan: DispatchPlan,
                    call_simulation_limit: Optional[int],
                    max_cycles_per_call: Optional[int]):
    """Simulate the plan's kernel calls, optionally extrapolating the middle ones."""
    counters = PerfCounters()
    call_cycles: List[int] = []
    calls = plan.calls
    extrapolated = False

    tracer = device.gpu.tracer
    launch_gap = device.config.kernel_launch_overhead
    elapsed = 0
    simulate_all = (call_simulation_limit is None
                    or len(calls) <= max(2, call_simulation_limit))
    if simulate_all:
        for call in calls:
            if tracer is not None:
                # Each call pays its launch overhead before issuing; advancing
                # the offset keeps the multi-call trace on one global timeline.
                elapsed += launch_gap + device.config.warp_spawn_cost * call.warps_spawned
                tracer.begin_call(call.call_index, elapsed)
            result = device.gpu.run_call(program, call.launches, max_cycles=max_cycles_per_call)
            call_cycles.append(result.cycles)
            counters.merge(result.counters)
            elapsed += result.cycles
        return call_cycles, counters, extrapolated

    # Sampled simulation: the first calls capture cold-cache behaviour, the
    # last call captures the (possibly partial) tail; every skipped call is a
    # clone of the last fully simulated full-size call.
    extrapolated = True
    sample = max(2, call_simulation_limit)
    head = calls[:sample - 1]
    tail = calls[-1]
    simulated: Dict[int, int] = {}
    head_counters: List[PerfCounters] = []
    for call in head:
        result = device.gpu.run_call(program, call.launches, max_cycles=max_cycles_per_call)
        simulated[call.call_index] = result.cycles
        head_counters.append(result.counters)
        counters.merge(result.counters)
    tail_result = device.gpu.run_call(program, tail.launches, max_cycles=max_cycles_per_call)
    counters.merge(tail_result.counters)

    steady_state = simulated[head[-1].call_index]
    skipped = len(calls) - len(head) - 1
    for call in calls:
        if call.call_index in simulated:
            call_cycles.append(simulated[call.call_index])
        elif call.call_index == tail.call_index:
            call_cycles.append(tail_result.cycles)
        else:
            call_cycles.append(steady_state)
    # Scale the counters so instruction/memory totals reflect the whole launch
    # (the skipped calls behave like the last fully simulated full-size call).
    if skipped > 0:
        steady_counters = head_counters[-1].as_dict()
        counters.merge(PerfCounters.from_dict(
            {name: value * skipped for name, value in steady_counters.items()}))
    return call_cycles, counters, extrapolated


def _collect_outputs(device: Device, kernel: Kernel, buffers: Mapping[str, Buffer]):
    """Download every writable buffer so callers can check results."""
    outputs: Dict[str, np.ndarray] = {}
    for param in kernel.buffer_params:
        if param.writable and param.name in buffers:
            outputs[param.name] = device.download(buffers[param.name])
    return outputs
