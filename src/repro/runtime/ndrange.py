"""ND-range decomposition.

OpenCL kernels are launched over an N-dimensional index space (the *global
work size*, ``gws``) subdivided into workgroups of *local work size* ``lws``.
On Vortex the runtime flattens the space and hands each hardware thread one
workgroup, which it iterates over sequentially; the paper's technique chooses
the flattened ``lws``.  :class:`NDRange` performs the flattening, validation
and workgroup bookkeeping used by the dispatcher.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

from repro.runtime.errors import LaunchError

SizeLike = Union[int, Sequence[int]]


def _as_tuple(size: SizeLike) -> Tuple[int, ...]:
    if isinstance(size, int):
        dims: Tuple[int, ...] = (size,)
    else:
        dims = tuple(int(d) for d in size)
    if not dims or len(dims) > 3:
        raise LaunchError(f"work size must have 1 to 3 dimensions, got {dims!r}")
    if any(d < 1 for d in dims):
        raise LaunchError(f"work-size dimensions must be positive, got {dims!r}")
    return dims


@dataclass(frozen=True)
class NDRange:
    """A validated launch geometry.

    ``global_size`` may be 1-, 2- or 3-dimensional (it is flattened row-major
    for dispatch); ``local_size`` is the flattened workgroup size -- the lws
    parameter the paper optimises.
    """

    global_dims: Tuple[int, ...]
    local_size: int

    def __init__(self, global_size: SizeLike, local_size: int):
        dims = _as_tuple(global_size)
        local = int(local_size)
        if local < 1:
            raise LaunchError(f"local_size must be >= 1, got {local_size!r}")
        total = math.prod(dims)
        if local > total:
            # A workgroup larger than the whole index space behaves like one
            # group containing everything (OpenCL would reject it; the Vortex
            # runtime clamps, and clamping keeps sweeps simple).
            local = total
        object.__setattr__(self, "global_dims", dims)
        object.__setattr__(self, "local_size", local)
        # Dispatch queries these once per workgroup; precompute them.
        object.__setattr__(self, "_total", total)
        object.__setattr__(self, "_num_wg", math.ceil(total / local))

    # ------------------------------------------------------------------
    @property
    def global_size(self) -> int:
        """Flattened global work size (``gws``)."""
        return self._total

    @property
    def num_workgroups(self) -> int:
        """Number of workgroups the launch decomposes into."""
        return self._num_wg

    def workgroup_size(self, workgroup_id: int) -> int:
        """Number of work-items in ``workgroup_id`` (the last group may be partial)."""
        if not (0 <= workgroup_id < self.num_workgroups):
            raise LaunchError(
                f"workgroup {workgroup_id} out of range (launch has {self.num_workgroups})"
            )
        if workgroup_id < self.num_workgroups - 1:
            return self.local_size
        return self.global_size - self.local_size * (self.num_workgroups - 1)

    def with_local_size(self, local_size: int) -> "NDRange":
        """Same global size with a different lws."""
        return NDRange(self.global_dims, local_size)

    def unflatten(self, gid: int) -> Tuple[int, ...]:
        """Convert a flattened global id back to N-dimensional coordinates (row-major)."""
        if not (0 <= gid < self.global_size):
            raise LaunchError(f"global id {gid} outside global size {self.global_size}")
        coords = []
        remainder = gid
        for dim in reversed(self.global_dims[1:]):
            coords.append(remainder % dim)
            remainder //= dim
        coords.append(remainder)
        return tuple(reversed(coords))

    def __str__(self) -> str:  # pragma: no cover - convenience
        dims = "x".join(str(d) for d in self.global_dims)
        return f"NDRange(gws={dims} ({self.global_size}), lws={self.local_size})"
