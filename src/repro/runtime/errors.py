"""Runtime error types."""

from __future__ import annotations


class RuntimeLayerError(RuntimeError):
    """Base class for host-runtime errors."""


class AllocationError(RuntimeLayerError):
    """Raised when device memory cannot satisfy an allocation request."""


class LaunchError(RuntimeLayerError):
    """Raised when a kernel launch is malformed (bad arguments, sizes, ...)."""
