"""Micro-architecture configuration.

An :class:`ArchConfig` bundles every parameter of the simulated GPU: the
hardware-parallelism triple (cores, warps per core, threads per warp) that the
paper's Equation 1 consumes, the memory-hierarchy geometry, functional-unit
latencies and the launch overheads of the runtime.  Configurations use the
paper's ``<c>c<w>w<t>t`` naming scheme (e.g. ``1c2w4t`` is the Figure-1
machine, ``64c32w32t`` the largest Figure-2 machine).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.isa.latencies import OpTiming
from repro.isa.opcodes import Opcode


class ConfigError(ValueError):
    """Raised for invalid architecture configurations."""


_NAME_RE = re.compile(r"^(\d+)c(\d+)w(\d+)t$")


@dataclass(frozen=True)
class ArchConfig:
    """Parameters of one simulated GPU configuration.

    The defaults model a small Vortex-like device; the memory system sizes are
    in 4-byte words (the simulator is word-addressed).
    """

    # hardware parallelism (the parameters of the paper's Eq. 1)
    cores: int = 1
    warps_per_core: int = 2
    threads_per_warp: int = 4

    # pipeline
    issue_width: int = 1
    warp_scheduler: str = "rr"     # "rr" (round-robin, Vortex default) or "gto"

    # L1 data cache (per core)
    l1_size_words: int = 4096
    l1_line_words: int = 16
    l1_ways: int = 4
    l1_hit_latency: int = 2

    # shared L2
    l2_size_words: int = 32768
    l2_line_words: int = 16
    l2_ways: int = 8
    l2_hit_latency: int = 20

    # DRAM
    dram_latency: int = 100
    dram_lines_per_cycle: float = 2.0

    # runtime / launch costs.  The launch overhead is the driver + spawn cost
    # every sequential kernel call pays; 32 cycles keeps the lws=1 penalty in
    # the same range the paper reports for Vortex (see EXPERIMENTS.md).
    kernel_launch_overhead: int = 32
    warp_spawn_cost: int = 1
    barrier_latency: int = 2

    # per-opcode timing overrides (opcode -> OpTiming)
    timing_overrides: Mapping[Opcode, OpTiming] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def __post_init__(self):
        for name in ("cores", "warps_per_core", "threads_per_warp", "issue_width"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(f"{name} must be a positive integer, got {value!r}")
        if self.l1_line_words < 1 or self.l2_line_words < 1:
            raise ConfigError("cache line sizes must be positive")
        if self.l1_size_words % (self.l1_line_words * self.l1_ways) != 0:
            raise ConfigError("l1_size_words must be a multiple of line size * ways")
        if self.l2_size_words % (self.l2_line_words * self.l2_ways) != 0:
            raise ConfigError("l2_size_words must be a multiple of line size * ways")
        if self.dram_lines_per_cycle <= 0:
            raise ConfigError("dram_lines_per_cycle must be positive")
        if self.kernel_launch_overhead < 0 or self.warp_spawn_cost < 0:
            raise ConfigError("launch overheads cannot be negative")
        from repro.sim.scheduler import available_policies  # deferred: avoids an import cycle
        if self.warp_scheduler not in available_policies():
            raise ConfigError(
                f"unknown warp scheduler {self.warp_scheduler!r}; "
                f"expected one of {list(available_policies())}"
            )

    # ------------------------------------------------------------------
    @property
    def hardware_parallelism(self) -> int:
        """``hp = cores * warps * threads`` -- the denominator of Eq. 1."""
        return self.cores * self.warps_per_core * self.threads_per_warp

    @property
    def name(self) -> str:
        """The paper's naming scheme, e.g. ``"8c4w16t"``."""
        return f"{self.cores}c{self.warps_per_core}w{self.threads_per_warp}t"

    @classmethod
    def from_name(cls, name: str, **overrides) -> "ArchConfig":
        """Parse a ``<c>c<w>w<t>t`` name into a configuration.

        Additional keyword arguments override non-shape parameters, e.g.
        ``ArchConfig.from_name("4c8w8t", dram_latency=200)``.
        """
        match = _NAME_RE.match(name.strip())
        if not match:
            raise ConfigError(f"cannot parse configuration name {name!r} (expected like '4c8w8t')")
        cores, warps, threads = (int(g) for g in match.groups())
        return cls(cores=cores, warps_per_core=warps, threads_per_warp=threads, **overrides)

    def with_shape(self, cores: int, warps_per_core: int, threads_per_warp: int) -> "ArchConfig":
        """Return a copy with a different hardware-parallelism triple."""
        return replace(self, cores=cores, warps_per_core=warps_per_core,
                       threads_per_warp=threads_per_warp)

    def scaled_memory(self, factor: float) -> "ArchConfig":
        """Return a copy with cache capacities scaled by ``factor`` (rounded to lines)."""
        def _scale(size: int, line: int, ways: int) -> int:
            unit = line * ways
            return max(unit, int(size * factor) // unit * unit)
        return replace(
            self,
            l1_size_words=_scale(self.l1_size_words, self.l1_line_words, self.l1_ways),
            l2_size_words=_scale(self.l2_size_words, self.l2_line_words, self.l2_ways),
        )

    def describe(self) -> str:
        """Multi-line human readable summary used by reports and examples."""
        return "\n".join([
            f"configuration {self.name}",
            f"  cores x warps x threads : {self.cores} x {self.warps_per_core} x "
            f"{self.threads_per_warp}  (hp = {self.hardware_parallelism})",
            f"  L1D per core            : {self.l1_size_words * 4 // 1024} KiB, "
            f"{self.l1_ways}-way, {self.l1_line_words * 4}B lines, {self.l1_hit_latency} cyc",
            f"  shared L2               : {self.l2_size_words * 4 // 1024} KiB, "
            f"{self.l2_ways}-way, {self.l2_hit_latency} cyc",
            f"  DRAM                    : {self.dram_latency} cyc latency, "
            f"{self.dram_lines_per_cycle} lines/cyc",
            f"  kernel launch overhead  : {self.kernel_launch_overhead} cyc "
            f"(+{self.warp_spawn_cost}/warp)",
        ])


#: The Figure-1 machine of the paper.
FIGURE1_CONFIG = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=4)

#: The smallest and largest machines of the Figure-2 sweep.
SMALLEST_CONFIG = ArchConfig(cores=1, warps_per_core=2, threads_per_warp=2)
LARGEST_CONFIG = ArchConfig(cores=64, warps_per_core=32, threads_per_warp=32)
