"""Simulation-engine selection.

The simulator ships three engines that produce **bit-identical** results:

* ``"reference"`` -- the original, straight-line cycle model in
  :mod:`repro.sim.core`.  Easy to read, easy to audit, and the oracle the
  differential test layer checks the other engines against.
* ``"fast"`` -- the optimised engine in :mod:`repro.sim.fastcore`.  It
  event-skips (a core whose every warp is stalled is not re-scanned until its
  ``next_event_hint`` cycle) and vectorises per-lane execution with numpy
  (ALU/FPU lanes, load/store address generation and coalescing are batched
  per warp instead of per lane).
* ``"batch"`` -- the trace-compiled engine in :mod:`repro.sim.batchcore` /
  :mod:`repro.sim.compile`.  A one-time compile pass per (program, config)
  classifies every PC and segments straight-line blocks; at run time whole
  *rounds* of warps execute each PC as a single 2-D numpy operation across
  all resident warps of a core (one gather/scatter per PC per core instead
  of per warp), with cross-warp masking for divergence.  Any state the
  compiler cannot prove schedule-exact falls back to the ``fast`` engine's
  issue loop, so equivalence holds by construction.

Because the engines are equivalent by construction *and by test*
(``tests/test_engine_differential.py``, ``tests/test_engine_fuzz.py``), the
engine choice deliberately never enters a campaign job's content hash: a
result cached under one engine is valid under the others.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

#: Engine names accepted everywhere an engine can be chosen.
ENGINES: Tuple[str, ...] = ("reference", "fast", "batch")

#: Engine used when none is requested (and the environment does not override).
DEFAULT_ENGINE = "reference"

#: Environment variable consulted when no engine is passed explicitly, so whole
#: test/benchmark runs can be flipped without touching call sites.
ENGINE_ENV = "REPRO_ENGINE"


class EngineError(ValueError):
    """Raised for unknown engine names."""


def resolve_engine(engine: Optional[str] = None) -> str:
    """Return a validated engine name.

    ``None`` falls back to ``$REPRO_ENGINE`` and then :data:`DEFAULT_ENGINE`.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise EngineError(
            f"unknown simulation engine {engine!r}; expected one of {list(ENGINES)}"
        )
    return engine
