"""Warp-scheduling policies.

The paper's conclusion notes that "other factors still impact the runtime
kernel execution in Vortex" beyond the workgroup mapping; the warp scheduler
is the most prominent one inside a core.  Two classic policies are provided:

* **round-robin** (``"rr"``, the default and the Vortex baseline): rotate the
  issue priority one warp forward after every issue, giving every warp an even
  share of the issue slot.
* **greedy-then-oldest** (``"gto"``): keep issuing from the same warp until it
  stalls, then switch to the least-recently issued warp.  GTO tends to improve
  cache locality for kernels whose consecutive iterations touch neighbouring
  lines, at the cost of fairness.

The policy only decides the *order in which runnable warps are considered*;
all hazard checks stay in the core model.
"""

from __future__ import annotations

from typing import List, Sequence


class WarpScheduler:
    """Base class: yields warp indices in issue-priority order."""

    name = "base"

    def __init__(self, num_warps: int):
        if num_warps < 1:
            raise ValueError("a scheduler needs at least one warp slot")
        self.num_warps = num_warps

    def priority_order(self) -> List[int]:
        """Warp indices, highest priority first (length ``num_warps``)."""
        raise NotImplementedError

    def issued(self, warp_index: int) -> None:
        """Notify the policy that ``warp_index`` issued this cycle."""
        raise NotImplementedError


class RoundRobinScheduler(WarpScheduler):
    """Rotate priority one position past the last issuing warp (Vortex default)."""

    name = "rr"

    def __init__(self, num_warps: int):
        super().__init__(num_warps)
        self._next = 0

    def priority_order(self) -> List[int]:
        return [(self._next + offset) % self.num_warps for offset in range(self.num_warps)]

    def issued(self, warp_index: int) -> None:
        self._next = (warp_index + 1) % self.num_warps


class GreedyThenOldestScheduler(WarpScheduler):
    """Keep issuing from the current warp; fall back to the least recently issued."""

    name = "gto"

    def __init__(self, num_warps: int):
        super().__init__(num_warps)
        self._current = 0
        # lower = issued longer ago; ties broken by warp index
        self._last_issue_tick = [0] * num_warps
        self._tick = 0

    def priority_order(self) -> List[int]:
        others = sorted((w for w in range(self.num_warps) if w != self._current),
                        key=lambda w: (self._last_issue_tick[w], w))
        return [self._current] + others

    def issued(self, warp_index: int) -> None:
        self._tick += 1
        self._last_issue_tick[warp_index] = self._tick
        self._current = warp_index


_POLICIES = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    GreedyThenOldestScheduler.name: GreedyThenOldestScheduler,
}


def make_scheduler(policy: str, num_warps: int) -> WarpScheduler:
    """Instantiate the scheduler named ``policy`` (``"rr"`` or ``"gto"``)."""
    try:
        cls = _POLICIES[policy]
    except KeyError:
        raise ValueError(f"unknown warp-scheduler policy {policy!r}; "
                         f"expected one of {sorted(_POLICIES)}") from None
    return cls(num_warps)


def available_policies() -> Sequence[str]:
    """Names of every scheduling policy."""
    return tuple(sorted(_POLICIES))
